"""Exporters: metrics snapshots as Prometheus text or JSON documents.

Both take the plain-dict output of :meth:`repro.obs.Metrics.snapshot`
(not a live registry), so they also work on snapshots that crossed the
wire in a ``STATS`` reply.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Union

from .metrics import Metrics

SnapshotLike = Union[Metrics, Mapping[str, object]]


def _as_snapshot(source: SnapshotLike) -> Mapping[str, object]:
    if isinstance(source, Metrics):
        return source.snapshot()
    return source


def _prom_name(name: str) -> str:
    """Dotted instrument names as Prometheus-legal metric names."""
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch == "_") else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text or "_"


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == int(value):
        return str(int(value))
    return repr(value)


def prometheus_text(source: SnapshotLike) -> str:
    """A metrics snapshot in the Prometheus text exposition format.

    Counters become ``counter`` series, gauges ``gauge``, histograms the
    standard cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``
    triple with a ``+Inf`` bucket.
    """
    snapshot = _as_snapshot(source)
    lines: List[str] = []
    counters = snapshot.get("counters") or {}
    for name in sorted(counters):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_format_value(counters[name])}")
    gauges = snapshot.get("gauges") or {}
    for name in sorted(gauges):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_format_value(gauges[name])}")
    histograms = snapshot.get("histograms") or {}
    for name in sorted(histograms):
        data = histograms[name]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        bounds = list(data.get("le") or [])
        counts = list(data.get("counts") or [])
        for bound, count in zip(bounds, counts):
            cumulative += count
            lines.append(
                f'{prom}_bucket{{le="{_format_value(float(bound))}"}} '
                f"{cumulative}"
            )
        total = int(data.get("count", 0))
        lines.append(f'{prom}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{prom}_sum {_format_value(float(data.get('sum', 0.0)))}")
        lines.append(f"{prom}_count {total}")
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_json(source: SnapshotLike, *, indent: int = 2) -> str:
    """A metrics snapshot as a stable (sorted-key) JSON document."""
    return json.dumps(_as_snapshot(source), indent=indent, sort_keys=True,
                      default=str)
