"""Property-based tests of f(S): submodularity, monotonicity, and the
combined greedy's ½(1−1/e) approximation bound against brute force."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    APPROXIMATION_GUARANTEE,
    Query,
    SelectionObjective,
    Workload,
    all_subsets,
    clause,
    exact,
    exhaustive_optimum,
    is_submodular_on,
    select_predicates,
)

CLAUSES = [clause(exact(f"c{i}", f"v{i}")) for i in range(6)]


@st.composite
def random_instances(draw):
    """A random workload over ≤6 clauses with random stats and costs."""
    n_clauses = draw(st.integers(min_value=2, max_value=6))
    pool = CLAUSES[:n_clauses]
    n_queries = draw(st.integers(min_value=1, max_value=5))
    queries = []
    for q in range(n_queries):
        member_mask = draw(
            st.integers(min_value=1, max_value=(1 << n_clauses) - 1)
        )
        members = tuple(
            pool[i] for i in range(n_clauses) if member_mask >> i & 1
        )
        frequency = draw(
            st.floats(min_value=0.1, max_value=5.0, allow_nan=False)
        )
        queries.append(Query(members, frequency=frequency, name=f"q{q}"))
    sels = {
        c: draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        for c in pool
    }
    costs = {
        c: draw(st.floats(min_value=0.0, max_value=3.0, allow_nan=False))
        for c in pool
    }
    budget = draw(st.floats(min_value=0.0, max_value=6.0, allow_nan=False))
    return Workload(tuple(queries)), sels, costs, budget


@given(random_instances())
@settings(max_examples=150, deadline=None)
def test_submodular_inequality(instance):
    workload, sels, _, _ = instance
    objective = SelectionObjective(workload, sels)
    assert is_submodular_on(
        objective, all_subsets(workload.candidate_pool)
    )


@given(random_instances())
@settings(max_examples=150, deadline=None)
def test_monotone_nondecreasing(instance):
    workload, sels, _, _ = instance
    objective = SelectionObjective(workload, sels)
    pool = list(workload.candidate_pool)
    selected = frozenset()
    previous = 0.0
    for c in pool:
        selected = selected | {c}
        current = objective.value(selected)
        assert current >= previous - 1e-12
        previous = current


@given(random_instances())
@settings(max_examples=100, deadline=None)
def test_combined_greedy_meets_khuller_bound(instance):
    workload, sels, costs, budget = instance
    objective = SelectionObjective(workload, sels)
    greedy = select_predicates(objective, costs, budget)
    optimum = exhaustive_optimum(objective, costs, budget)
    assert greedy.total_cost <= budget + 1e-9
    assert greedy.objective_value >= (
        APPROXIMATION_GUARANTEE * optimum.objective_value - 1e-9
    )


@given(random_instances())
@settings(max_examples=100, deadline=None)
def test_objective_bounded_by_one(instance):
    workload, sels, _, _ = instance
    objective = SelectionObjective(workload, sels)
    value = objective.value(frozenset(workload.candidate_pool))
    assert -1e-12 <= value <= 1.0 + 1e-12
