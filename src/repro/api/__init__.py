"""The CIAO deployment API: one front door over the whole framework.

This package is the canonical entry point for using the reproduction as a
system (the low-level constructors stay public underneath it):

* :class:`DataSource` / :func:`as_source` — one interface over dataset
  generators, raw-line iterables, and JSONL/CSV files, providing the
  parsed sample (optimizer calibration) and the raw record stream
  (ingest) uniformly;
* :class:`DeploymentConfig` — every deployment knob, one validation
  path, covering serial, sharded, and fleet modes plus transport specs;
* :class:`CiaoSession` — ``plan(budget)`` → ``load(source)`` →
  ``query(sql)``, with :class:`LoadJob` handles (progress, mid-load
  ``snapshot_query`` on sharded deployments) and the unified
  :class:`LoadReport` accounting contract;
* :func:`make_channel` and the composable channel decorators
  (:class:`LossyChannel`, :class:`LatencyChannel`) for declarative,
  replayable transport — including flaky networks — re-exported from
  :mod:`repro.transport`;
* :class:`AsyncSession` — an ``async``/``await`` face over a blocking
  local or remote session (see :mod:`repro.service` for the network
  service itself).

Commonly-needed core symbols (budgets, workload building blocks) are
re-exported so a quickstart needs only ``repro.api`` imports.
"""

from ..core.budgets import Budget
from ..core.cost_model import DEFAULT_COEFFICIENTS, CostCoefficients, CostModel
from ..core.optimizer import CiaoOptimizer, PushdownPlan
from ..core.predicates import (
    Query,
    Workload,
    clause,
    exact,
    key_present,
    key_value,
    prefix,
    substring,
    suffix,
)
from ..fleet.population import ClientPopulation, FleetClientSpec
from ..server.ciao import CiaoServer, ServerConfig
from ..transport import (
    Channel,
    ChannelSpec,
    FileChannel,
    LatencyChannel,
    LinkModel,
    LossyChannel,
    MemoryChannel,
    make_channel,
    per_client_channels,
)
from .aio import AsyncSession
from .config import (
    DEFAULT_N_CLIENTS,
    DEFAULT_N_SHARDS,
    DEPLOYMENT_MODES,
    DeploymentConfig,
)
from .report import LoadReport
from .session import CiaoSession, LoadJob, LoadProgress
from .source import (
    CsvFileSource,
    DataSource,
    GeneratorSource,
    JsonFileSource,
    LimitedSource,
    LineSource,
    as_source,
)

__all__ = [
    "AsyncSession",
    "Budget",
    "Channel",
    "ChannelSpec",
    "CiaoOptimizer",
    "CiaoServer",
    "CiaoSession",
    "ClientPopulation",
    "CostCoefficients",
    "CostModel",
    "CsvFileSource",
    "DEFAULT_COEFFICIENTS",
    "DEFAULT_N_CLIENTS",
    "DEFAULT_N_SHARDS",
    "DEPLOYMENT_MODES",
    "DataSource",
    "DeploymentConfig",
    "FileChannel",
    "FleetClientSpec",
    "GeneratorSource",
    "JsonFileSource",
    "LatencyChannel",
    "LimitedSource",
    "LineSource",
    "LinkModel",
    "LoadJob",
    "LoadProgress",
    "LoadReport",
    "LossyChannel",
    "MemoryChannel",
    "PushdownPlan",
    "Query",
    "ServerConfig",
    "Workload",
    "as_source",
    "clause",
    "exact",
    "key_present",
    "key_value",
    "make_channel",
    "per_client_channels",
    "prefix",
    "substring",
    "suffix",
]
