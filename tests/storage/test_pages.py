"""Unit tests for column-chunk pages (null handling + stats)."""

import pytest

from repro.storage import ColumnType, Encoding, read_page, write_page
from repro.storage.pages import page_encoding


class TestPageRoundtrip:
    @pytest.mark.parametrize(
        "column_type,values",
        [
            (ColumnType.INT64, [1, None, 3, None, 5]),
            (ColumnType.STRING, [None, "a", None, "b"]),
            (ColumnType.BOOL, [True, None, False]),
            (ColumnType.FLOAT64, [None, None, 2.5]),
            (ColumnType.JSON, ['{"x":1}', None]),
        ],
    )
    def test_nulls_roundtrip(self, column_type, values):
        page, _ = write_page(values, column_type)
        assert read_page(page, column_type) == values

    def test_all_null_page(self):
        page, stats = write_page([None, None], ColumnType.INT64)
        assert read_page(page, ColumnType.INT64) == [None, None]
        assert stats.null_count == 2
        assert stats.min_value is None

    def test_forced_encoding(self):
        values = [1] * 50
        page, _ = write_page(values, ColumnType.INT64,
                             encoding=Encoding.PLAIN)
        assert page_encoding(page) is Encoding.PLAIN
        page_rle, _ = write_page(values, ColumnType.INT64,
                                 encoding=Encoding.RLE)
        assert page_encoding(page_rle) is Encoding.RLE
        assert read_page(page_rle, ColumnType.INT64) == values


class TestPageStats:
    def test_min_max_ignore_nulls(self):
        _, stats = write_page([None, 5, 2, None, 9], ColumnType.INT64)
        assert stats.min_value == 2
        assert stats.max_value == 9
        assert stats.null_count == 2
        assert stats.row_count == 5

    def test_json_columns_have_no_min_max(self):
        _, stats = write_page(['{"a":1}'], ColumnType.JSON)
        assert stats.min_value is None and stats.max_value is None

    def test_string_min_max(self):
        _, stats = write_page(["pear", "apple"], ColumnType.STRING)
        assert stats.min_value == "apple"
        assert stats.max_value == "pear"


class TestPageErrors:
    def test_empty_page_rejected(self):
        with pytest.raises(ValueError):
            read_page(b"", ColumnType.INT64)

    def test_unknown_tag_rejected(self):
        page, _ = write_page([1], ColumnType.INT64)
        with pytest.raises(ValueError):
            read_page(b"\xff" + page[1:], ColumnType.INT64)
