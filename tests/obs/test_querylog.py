"""Query log: bounded retention, drain semantics, client attribution."""

import threading

import pytest

from repro.obs import QueryLog, QueryLogRecord, client_scope
from repro.obs.querylog import (
    NULL_QUERY_LOG,
    current_client_id,
    resolve_query_log,
)


def record(i=0, **kwargs):
    defaults = dict(
        fingerprint=f"fp{i}", table="t",
        sql=f"SELECT COUNT(*) FROM t -- {i}",
        predicate_columns=("stars",),
    )
    defaults.update(kwargs)
    return QueryLogRecord(**defaults)


class TestQueryLog:
    def test_append_and_records(self):
        log = QueryLog()
        log.append(record(1))
        log.append(record(2))
        assert [r.fingerprint for r in log.records()] == ["fp1", "fp2"]
        assert len(log) == 2
        assert log.total == 2

    def test_capacity_evicts_oldest_total_keeps_counting(self):
        log = QueryLog(capacity=2)
        for i in range(5):
            log.append(record(i))
        assert [r.fingerprint for r in log.records()] == ["fp3", "fp4"]
        assert log.total == 5

    def test_drain_empties(self):
        log = QueryLog()
        log.append(record())
        assert len(log.drain()) == 1
        assert log.records() == []
        assert log.total == 1

    def test_tail(self):
        log = QueryLog()
        for i in range(4):
            log.append(record(i))
        assert [r.fingerprint for r in log.tail(2)] == ["fp2", "fp3"]
        assert log.tail(0) == []

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            QueryLog(capacity=0)

    def test_to_dict_round_trip_fields(self):
        rec = record(
            7, selectivity=0.25, rows_examined=100, rows_emitted=25,
            row_groups_scanned=3, row_groups_skipped=5,
            snapshot_cache="hit", client_id="c9", trace_id="t-1",
        )
        doc = rec.to_dict()
        assert doc["fingerprint"] == "fp7"
        assert doc["predicate_columns"] == ["stars"]
        assert doc["selectivity"] == 0.25
        assert doc["row_groups_skipped"] == 5
        assert doc["snapshot_cache"] == "hit"
        assert doc["client_id"] == "c9"
        assert doc["trace_id"] == "t-1"

    def test_concurrent_appends_all_counted(self):
        log = QueryLog(capacity=100_000)
        n_threads, n_appends = 8, 500

        def work():
            for i in range(n_appends):
                log.append(record(i))

        threads = [threading.Thread(target=work)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert log.total == n_threads * n_appends
        assert len(log) == n_threads * n_appends


class TestClientScope:
    def test_default_is_local(self):
        assert current_client_id() == "local"

    def test_scope_sets_and_restores(self):
        with client_scope("remote-7"):
            assert current_client_id() == "remote-7"
            with client_scope("inner"):
                assert current_client_id() == "inner"
            assert current_client_id() == "remote-7"
        assert current_client_id() == "local"

    def test_scope_is_per_thread(self):
        seen = {}

        def work():
            seen["other"] = current_client_id()

        with client_scope("main-client"):
            t = threading.Thread(target=work)
            t.start()
            t.join()
        assert seen["other"] == "local"


class TestNullQueryLog:
    def test_drops_everything(self):
        null = QueryLog.null()
        assert null is NULL_QUERY_LOG
        null.append(record())
        assert null.records() == []
        assert null.drain() == []
        assert len(null) == 0
        assert not null.enabled

    def test_resolve_defaults_to_null(self):
        assert resolve_query_log(None) is NULL_QUERY_LOG
        real = QueryLog()
        assert resolve_query_log(real) is real


class TestHotColumns:
    def test_weights_by_fingerprint_frequency(self):
        log = QueryLog()
        for _ in range(3):
            log.append(record(1, predicate_columns=("a",)))
        log.append(record(2, predicate_columns=("b", "c")))
        hot = log.hot_columns(top_n=3)
        assert hot[0] == ("a", 3.0)
        assert {name for name, _ in hot[1:]} == {"b", "c"}

    def test_ties_break_by_name(self):
        log = QueryLog()
        log.append(record(1, predicate_columns=("z", "a")))
        assert log.hot_columns(top_n=2) == [("a", 1.0), ("z", 1.0)]

    def test_top_n_truncates(self):
        log = QueryLog()
        log.append(record(1, predicate_columns=("a", "b", "c")))
        assert len(log.hot_columns(top_n=2)) == 2

    def test_empty_log_has_no_hot_columns(self):
        assert QueryLog().hot_columns() == []

    @pytest.mark.parametrize("log", [QueryLog(), QueryLog.null()])
    def test_nonpositive_top_n_rejected(self, log):
        with pytest.raises(ValueError):
            log.hot_columns(top_n=0)

    def test_null_log_is_never_hot(self):
        null = QueryLog.null()
        null.append(record(1))
        assert null.hot_columns() == []

    def test_row_groups_pruned_serialized(self):
        rec = record(3, row_groups_scanned=4, row_groups_pruned=2)
        assert rec.to_dict()["row_groups_pruned"] == 2
