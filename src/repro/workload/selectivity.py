"""Sample-based selectivity estimation (paper §VII-C).

"We estimate the selectivity for each predicate by evaluating them on
sampled datasets."  Estimates evaluate the clause's *semantic* predicate on
parsed records — the quantity sel(p) in the objective — not the raw-pattern
hit rate, which additionally counts false positives (the raw hit rate is
measured separately during calibration).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Sequence

from ..core.patterns import compile_clause
from ..core.predicates import Clause

#: Lower bound for estimates: a clause that matched nothing in the sample
#: still gets a tiny non-zero selectivity so downstream products and cost
#: ratios stay well-behaved (the sample, not the population, was empty).
MIN_SELECTIVITY = 1e-4


def estimate_selectivity(clause: Clause,
                         sample: Sequence[Mapping[str, Any]]) -> float:
    """Fraction of sampled records satisfying *clause* (floored)."""
    if not sample:
        raise ValueError("cannot estimate selectivity from an empty sample")
    hits = sum(1 for record in sample if clause.evaluate(record))
    return max(MIN_SELECTIVITY, hits / len(sample))


def estimate_selectivities(clauses: Iterable[Clause],
                           sample: Sequence[Mapping[str, Any]],
                           ) -> Dict[Clause, float]:
    """Estimate every clause against one shared sample.

    Evaluation is grouped per record so the sample is traversed once per
    clause set rather than once per clause — the sample can be thousands of
    parsed objects.
    """
    clause_list = list(clauses)
    if not sample:
        raise ValueError("cannot estimate selectivity from an empty sample")
    hits = [0] * len(clause_list)
    for record in sample:
        for i, c in enumerate(clause_list):
            if c.evaluate(record):
                hits[i] += 1
    n = len(sample)
    return {
        c: max(MIN_SELECTIVITY, h / n)
        for c, h in zip(clause_list, hits)
    }


def measure_raw_hit_rates(clauses: Iterable[Clause],
                          raw_records: Sequence[str]) -> Dict[Clause, float]:
    """Raw-pattern hit rate per clause — selectivity *plus* false positives.

    The gap between this and :func:`estimate_selectivities` is exactly the
    false-positive rate of the pattern compilation, which the
    ``bench_ablation_false_positives`` bench reports.
    """
    if not raw_records:
        raise ValueError("need raw records to measure hit rates")
    rates: Dict[Clause, float] = {}
    for c in clauses:
        matcher = compile_clause(c).matcher()
        hits = sum(1 for raw in raw_records if matcher(raw))
        rates[c] = hits / len(raw_records)
    return rates


def false_positive_rates(clauses: Iterable[Clause],
                         sample: Sequence[Mapping[str, Any]],
                         raw_records: Sequence[str],
                         ) -> Dict[Clause, float]:
    """P(raw match | semantic non-match) per clause.

    *sample* must be the parsed form of *raw_records*, index-aligned.
    """
    sample = list(sample)
    raw_records = list(raw_records)
    if len(sample) != len(raw_records):
        raise ValueError("sample and raw_records must be index-aligned")
    rates: Dict[Clause, float] = {}
    for c in clauses:
        matcher = compile_clause(c).matcher()
        spurious = 0
        negatives = 0
        for record, raw in zip(sample, raw_records):
            if c.evaluate(record):
                continue
            negatives += 1
            if matcher(raw):
                spurious += 1
        rates[c] = spurious / negatives if negatives else 0.0
    return rates
