# ciaolint: module-role=service
"""Fixture: bounded retries and exit-bearing poll loops pass RET001."""

import time


def reconnect(dial, policy):
    last = None
    for pause in policy.pauses():
        time.sleep(pause)
        try:
            return dial()
        except OSError as exc:
            last = exc
    raise last


def reconnect_counted(dial):
    attempts = 0
    while True:
        try:
            return dial()
        except OSError:
            attempts += 1
            if attempts >= 5:
                raise
            time.sleep(0.1)


def poll(service, channel):
    while True:
        if service.closed:
            return None
        try:
            payload = channel.receive_wait(0.25)
        except (OSError, ValueError):
            continue
        if payload is not None:
            return payload
