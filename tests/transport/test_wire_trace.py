"""Trace context in wire headers: round-trip and old-peer tolerance."""

import pytest

from repro.transport import wire
from repro.transport.wire import (
    Message,
    attach_trace,
    decode_message,
    encode_message,
    extract_trace,
)


class TestRoundTrip:
    def test_attach_then_extract(self):
        header = {"sql": "SELECT COUNT(*) FROM t"}
        returned = attach_trace(header, "t-1", "s-1")
        assert returned is header  # mutates and returns
        assert extract_trace(header) == ("t-1", "s-1")

    def test_survives_encode_decode(self):
        header = attach_trace({"sql": "q", "snapshot": False},
                              "trace-42", "span-9")
        message = decode_message(
            encode_message(wire.QUERY, header, b"")
        )
        assert message.tag == wire.QUERY
        assert extract_trace(message.header) == ("trace-42", "span-9")
        # The rest of the header is untouched.
        assert message.header["sql"] == "q"

    def test_stats_tag_encodes(self):
        message = decode_message(
            encode_message(wire.STATS, {"query_log_tail": 5}, b"{}")
        )
        assert message.tag == wire.STATS
        assert message.name == "STATS"
        assert message.header["query_log_tail"] == 5


class TestTolerance:
    def test_absent_field_is_none(self):
        assert extract_trace({}) is None
        assert extract_trace({"sql": "q"}) is None

    @pytest.mark.parametrize("garbage", [
        "not-a-dict",
        17,
        None,
        ["trace-1", "span-1"],
        {},
        {"trace_id": "t-1"},                      # parent missing
        {"parent_id": "s-1"},                     # trace missing
        {"trace_id": 5, "parent_id": "s-1"},      # wrong type
        {"trace_id": "t-1", "parent_id": b"s"},   # wrong type
        {"trace_id": "", "parent_id": "s-1"},     # empty id
        {"trace_id": "t-1", "parent_id": ""},     # empty id
    ])
    def test_garbage_trace_values_are_none(self, garbage):
        assert extract_trace({wire.TRACE_FIELD: garbage}) is None

    def test_old_client_message_still_decodes(self):
        """A pre-trace QUERY (no trace field) flows through untouched."""
        payload = encode_message(
            wire.QUERY, {"sql": "SELECT COUNT(*) FROM t",
                         "snapshot": False}, b"",
        )
        message = decode_message(payload)
        assert extract_trace(message.header) is None
        assert message.header["sql"] == "SELECT COUNT(*) FROM t"

    def test_new_header_ignored_by_dict_reads(self):
        """Old peers read headers with .get(); the trace field must be
        plain JSON data that round-trips without special handling."""
        header = attach_trace({}, "t-1", "s-1")
        message = decode_message(encode_message(wire.QUERY, header))
        assert message.header.get("nonexistent") is None
        assert isinstance(message.header[wire.TRACE_FIELD], dict)

    def test_message_dataclass_default_header(self):
        assert extract_trace(Message(wire.QUERY).header) is None
