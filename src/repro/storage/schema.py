"""Schema model and inference for the Parquet-lite columnar format.

CIAO converts loaded JSON objects into a binary columnar layout (the paper
uses Parquet via Arrow C++; we implement the format from scratch).  JSON is
schemaless, so the writer infers a schema from the records it sees:

* scalar types map to typed columns (STRING / INT64 / FLOAT64 / BOOL);
* mixed numeric columns promote INT64 → FLOAT64;
* nested objects/arrays and irreconcilably mixed columns fall back to the
  JSON column type, which stores the value re-serialized as JSON text —
  lossless, queryable after re-parse, exactly how engines handle "schema
  drift" columns;
* every column is nullable (a JSON object may simply omit the key).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..rawjson.writer import dumps


class ColumnType(Enum):
    """Physical column types of Parquet-lite."""

    STRING = "string"
    INT64 = "int64"
    FLOAT64 = "float64"
    BOOL = "bool"
    JSON = "json"


@dataclass(frozen=True)
class Field:
    """One named, typed, always-nullable column."""

    name: str
    type: ColumnType

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("fields need a name")


class SchemaError(ValueError):
    """A record does not fit the schema, or the schema is malformed."""


class Schema:
    """An ordered collection of fields with O(1) name lookup."""

    def __init__(self, fields: Sequence[Field]):
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate column names in schema")
        self._fields = tuple(fields)
        self._index: Dict[str, int] = {
            f.name: i for i, f in enumerate(self._fields)
        }

    @property
    def fields(self) -> Tuple[Field, ...]:
        """The fields in column order."""
        return self._fields

    @property
    def names(self) -> List[str]:
        """Column names in order."""
        return [f.name for f in self._fields]

    def field(self, name: str) -> Field:
        """Field by name."""
        try:
            return self._fields[self._index[name]]
        except KeyError:
            raise SchemaError(f"no column named {name!r}") from None

    def index_of(self, name: str) -> int:
        """Column position by name."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no column named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self):
        return iter(self._fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def __repr__(self) -> str:
        cols = ", ".join(f"{f.name}:{f.type.value}" for f in self._fields)
        return f"Schema({cols})"

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form for the file footer."""
        return {
            "fields": [
                {"name": f.name, "type": f.type.value} for f in self._fields
            ]
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Schema":
        """Inverse of :meth:`to_dict`."""
        fields = [
            Field(entry["name"], ColumnType(entry["type"]))
            for entry in data["fields"]
        ]
        return cls(fields)


def _classify(value: Any) -> Optional[ColumnType]:
    """Column type of a single JSON value; None for nulls."""
    if value is None:
        return None
    if isinstance(value, bool):
        return ColumnType.BOOL
    if isinstance(value, int):
        return ColumnType.INT64
    if isinstance(value, float):
        return ColumnType.FLOAT64
    if isinstance(value, str):
        return ColumnType.STRING
    return ColumnType.JSON


_PROMOTIONS = {
    frozenset({ColumnType.INT64, ColumnType.FLOAT64}): ColumnType.FLOAT64,
}


def infer_schema(records: Iterable[Mapping[str, Any]]) -> Schema:
    """Infer the widest schema covering *records*.

    Column order is first-appearance order, which for generator output is
    the stable writer key order.
    """
    seen: Dict[str, Optional[ColumnType]] = {}
    order: List[str] = []
    for record in records:
        for key, value in record.items():
            if key not in seen:
                seen[key] = None
                order.append(key)
            kind = _classify(value)
            if kind is None:
                continue
            current = seen[key]
            if current is None or current == kind:
                seen[key] = kind
            else:
                seen[key] = _PROMOTIONS.get(
                    frozenset({current, kind}), ColumnType.JSON
                )
    if not order:
        raise SchemaError("cannot infer a schema from zero records")
    return Schema(
        [Field(name, seen[name] or ColumnType.STRING) for name in order]
    )


def schema_covers(current: Schema, needed: Schema) -> bool:
    """Can *current* store every field of *needed* losslessly?

    True when each needed field exists in *current* with the same type, or
    with a wider one (FLOAT64 stores INT64; JSON stores anything).  Used by
    the loader to decide whether an incoming chunk fits the open file or
    the schema must widen (file rotation).
    """
    for field in needed:
        if field.name not in current:
            return False
        have = current.field(field.name).type
        if have == field.type:
            continue
        if have is ColumnType.JSON:
            continue
        if have is ColumnType.FLOAT64 and field.type is ColumnType.INT64:
            continue
        return False
    return True


def merge_schemas(current: Schema, needed: Schema) -> Schema:
    """Widen *current* to additionally cover *needed*.

    Field order: current fields first (stable column ids for existing
    data), then new fields in their needed order.  Conflicting types
    promote INT64/FLOAT64 to FLOAT64 and everything else to JSON.
    """
    fields: List[Field] = []
    for field in current:
        if field.name in needed:
            other = needed.field(field.name).type
            if other == field.type:
                fields.append(field)
            else:
                promoted = _PROMOTIONS.get(
                    frozenset({field.type, other}), ColumnType.JSON
                )
                fields.append(Field(field.name, promoted))
        else:
            fields.append(field)
    for field in needed:
        if field.name not in current:
            fields.append(field)
    return Schema(fields)


def coerce_value(value: Any, column_type: ColumnType) -> Any:
    """Convert *value* to the physical representation of *column_type*.

    Raises :class:`SchemaError` on lossy or impossible conversions — a
    loader bug, not a data property, because the schema was inferred to
    cover the data.
    """
    if value is None:
        return None
    if column_type is ColumnType.JSON:
        return dumps(value)
    if column_type is ColumnType.BOOL:
        if isinstance(value, bool):
            return value
    elif column_type is ColumnType.INT64:
        if isinstance(value, bool):
            raise SchemaError("bool in INT64 column")
        if isinstance(value, int):
            return value
    elif column_type is ColumnType.FLOAT64:
        if isinstance(value, bool):
            raise SchemaError("bool in FLOAT64 column")
        if isinstance(value, (int, float)):
            return float(value)
    elif column_type is ColumnType.STRING:
        if isinstance(value, str):
            return value
    raise SchemaError(
        f"cannot store {type(value).__name__} value in a "
        f"{column_type.value} column"
    )
