"""Compaction: row-group skipping before/after re-clustering + the regret guard.

Two legs:

1. **Merge + re-cluster payoff** — a sharded streaming load with
   ``seal_interval=1`` leaves one small sealed part per chunk, each with
   round-robin values in the hot predicate column (so every zone map
   spans the whole domain and nothing prunes).  After a warm-up workload
   of point filters the compactor merges the parts and re-sorts rows by
   the hot column.  Reported and asserted: the part count drops and the
   row-group skip fraction (skipped + zone-pruned over total groups
   visited) **strictly improves**; query p50 before/after rides along in
   the JSON payload.

2. **Thrash resistance (ski-rental regret guard)** — an adversarial
   workload alternates its filter column every round (``a``, ``b``,
   ``a``, …).  An *eager* policy (cost factor ~0) re-sorts on every
   flip; the *guarded* leg prices a rewrite at two rounds' worth of
   un-pruned scan work (``rewrite_cost_factor = 2 × queries/round``),
   so a column must stay hot across phases before a re-sort pays and
   the flip-flopping workload mostly leaves the layout alone.
   Asserted: the guarded leg performs **strictly fewer rewrites** than
   the eager one, and its query p50 never regresses beyond
   ``REPRO_BENCH_REGRET_BUDGET`` (default +50%) of a never-compact
   baseline.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_compaction.py``
(set ``REPRO_BENCH_SMOKE=1`` for a <60 s smoke configuration).
"""

from __future__ import annotations

import os
import statistics
import time

from conftest import run_once

from repro.bench import emit, emit_json
from repro.compact import CompactionConfig, Compactor
from repro.obs import QueryLog
from repro.rawjson import JsonChunk, dump_record
from repro.server import CiaoServer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
REGRET_BUDGET = float(os.environ.get("REPRO_BENCH_REGRET_BUDGET", "0.5"))

N_SHARDS = 2
DOMAIN = 8
N_CHUNKS = 8 if SMOKE else 24
CHUNK_RECORDS = 120 if SMOKE else 400
WARMUP_QUERIES = 12 if SMOKE else 32
THRASH_ROUNDS = 4 if SMOKE else 8
THRASH_QUERIES = 8 if SMOKE else 20

#: Shared machine-readable payload; both tests write into it so the JSON
#: document accretes whichever legs actually ran.
_PAYLOAD = {"config": {
    "smoke": SMOKE, "n_chunks": N_CHUNKS, "chunk_records": CHUNK_RECORDS,
    "domain": DOMAIN, "regret_budget": REGRET_BUDGET,
}}


def make_chunks():
    """Round-robin hot columns: every seal's zone maps span the domain."""
    chunks = []
    for cid in range(N_CHUNKS):
        records = []
        for i in range(CHUNK_RECORDS):
            n = cid * CHUNK_RECORDS + i
            records.append(dump_record({
                "a": n % DOMAIN,
                "b": (n // DOMAIN) % DOMAIN,
                "v": n,
            }))
        chunks.append(JsonChunk(cid, records))
    return chunks


def streaming_server(path, query_log):
    return CiaoServer(path, n_shards=N_SHARDS, shard_mode="thread",
                      seal_interval=1, query_log=query_log)


def loaded_server(path, query_log):
    server = streaming_server(path, query_log)
    for chunk in make_chunks():
        server.ingest(chunk)
    server.quiesce()
    return server


def timed_queries(server, column, n):
    """Run *n* point filters on *column*; return (p50 seconds, answers)."""
    latencies = []
    answers = []
    for i in range(n):
        sql = f"SELECT COUNT(*) FROM t WHERE {column} = {i % DOMAIN}"
        started = time.perf_counter()
        answers.append(server.query(sql).scalar())
        latencies.append(time.perf_counter() - started)
    return statistics.median(latencies), answers


def skip_fraction(records):
    """Row groups not examined per row group visited, from log records."""
    skipped = sum(r.row_groups_skipped + r.row_groups_pruned
                  for r in records)
    visited = sum(r.row_groups_scanned + r.row_groups_skipped
                  for r in records)
    return skipped / visited if visited else 0.0


def drain_compactor(comp, max_rounds=10):
    """Synchronous rounds until the policy has nothing left to do."""
    rewrites = 0
    for _ in range(max_rounds):
        if comp.run_once() is None:
            break
        rewrites += 1
    return rewrites


def test_recluster_improves_skipping(benchmark, tmp_path, results_dir):
    def experiment():
        qlog = QueryLog(capacity=100_000)
        server = loaded_server(tmp_path / "payoff", qlog)
        parts_before = len(server.sealed_parts())
        p50_before, before_answers = timed_queries(
            server, "a", WARMUP_QUERIES
        )
        fraction_before = skip_fraction(qlog.records())

        # The compactor reads the same log itself (credit + hot
        # columns), so nothing is drained out from under it.
        comp = Compactor(server, config=CompactionConfig(
            min_observations=1,
            row_group_rows=max(CHUNK_RECORDS // 2, 64),
        ), query_log=qlog)
        rewrites = drain_compactor(comp)

        parts_after = len(server.sealed_parts())
        mark = len(qlog.records())
        p50_after, after_answers = timed_queries(
            server, "a", WARMUP_QUERIES
        )
        fraction_after = skip_fraction(qlog.records()[mark:])
        return {
            "parts_before": parts_before,
            "parts_after": parts_after,
            "rewrites": rewrites,
            "p50_before_s": p50_before,
            "p50_after_s": p50_after,
            "skip_fraction_before": fraction_before,
            "skip_fraction_after": fraction_after,
            "answers_unchanged": before_answers == after_answers,
            "compactor": comp.stats(),
        }

    result = run_once(benchmark, experiment)
    _PAYLOAD["recluster_payoff"] = result
    emit(
        "compaction_payoff",
        "compaction payoff: "
        f"parts {result['parts_before']} -> {result['parts_after']}, "
        f"skip fraction {result['skip_fraction_before']:.3f} -> "
        f"{result['skip_fraction_after']:.3f}, "
        f"p50 {result['p50_before_s'] * 1e3:.2f} ms -> "
        f"{result['p50_after_s'] * 1e3:.2f} ms",
        results_dir,
    )
    emit_json("BENCH_compaction", _PAYLOAD, results_dir)

    assert result["answers_unchanged"]
    assert result["parts_after"] < result["parts_before"]
    # The headline claim: re-clustering strictly improves skipping.
    assert result["skip_fraction_after"] > result["skip_fraction_before"]


def test_regret_guard_bounds_thrash(benchmark, tmp_path, results_dir):
    def thrash(server, comp):
        """Alternate the filter column; compact between rounds."""
        latencies = []
        for round_no in range(THRASH_ROUNDS):
            column = "a" if round_no % 2 == 0 else "b"
            for i in range(THRASH_QUERIES):
                sql = (f"SELECT COUNT(*) FROM t "
                       f"WHERE {column} = {i % DOMAIN}")
                started = time.perf_counter()
                server.query(sql)
                latencies.append(time.perf_counter() - started)
            if comp is not None:
                comp.run_once()
        return statistics.median(latencies)

    def experiment():
        legs = {}
        for leg, config in (
            ("never", None),
            # Price a rewrite at ~2 rounds of un-pruned scanning: a
            # column must stay hot across phases before re-sorting pays.
            ("guard", CompactionConfig(
                rewrite_cost_factor=2.0 * THRASH_QUERIES)),
            ("eager", CompactionConfig(min_observations=1,
                                       rewrite_cost_factor=1e-9)),
        ):
            qlog = QueryLog(capacity=100_000)
            server = loaded_server(tmp_path / leg, qlog)
            comp = None
            if config is not None:
                comp = Compactor(server, config=config, query_log=qlog)
            p50 = thrash(server, comp)
            legs[leg] = {
                "p50_s": p50,
                "rewrites": comp.stats()["rewrites"] if comp else 0,
                "reclusters": comp.stats()["reclusters"] if comp else 0,
            }
        return legs

    legs = run_once(benchmark, experiment)
    _PAYLOAD["regret_guard"] = legs
    emit(
        "compaction_thrash",
        "compaction thrash: "
        f"rewrites guard={legs['guard']['rewrites']} "
        f"eager={legs['eager']['rewrites']}; "
        f"p50 never={legs['never']['p50_s'] * 1e3:.2f} ms "
        f"guard={legs['guard']['p50_s'] * 1e3:.2f} ms "
        f"(budget +{REGRET_BUDGET:.0%})",
        results_dir,
    )
    emit_json("BENCH_compaction", _PAYLOAD, results_dir)

    # The guard holds: strictly less churn than the eager policy, and
    # the alternating workload never drags p50 past the regret budget.
    assert legs["guard"]["rewrites"] < legs["eager"]["rewrites"]
    assert (legs["guard"]["p50_s"]
            <= legs["never"]["p50_s"] * (1.0 + REGRET_BUDGET))
