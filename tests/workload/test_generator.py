"""Unit tests for query workload generation."""

import random

import pytest

from repro.core import clause, exact
from repro.workload import (
    PredicatePool,
    UNIFORM,
    generate_query,
    generate_workload,
    overlap_statistics,
    zipfian,
)


@pytest.fixture()
def pool():
    return PredicatePool(
        "demo", [clause(exact("col", f"v{i}")) for i in range(50)]
    )


class TestInclusionProbabilities:
    def test_uniform_probabilities(self):
        probs = UNIFORM.inclusion_probabilities(100, 3.0)
        assert all(p == pytest.approx(0.03) for p in probs)

    def test_expectation_preserved(self):
        for dist in (UNIFORM, zipfian(0.8), zipfian(1.5)):
            probs = dist.inclusion_probabilities(200, 3.0)
            assert sum(probs) == pytest.approx(3.0, rel=0.05)

    def test_probabilities_capped_at_one(self):
        probs = zipfian(2.5).inclusion_probabilities(50, 5.0)
        assert max(probs) <= 1.0

    def test_zipfian_concentrates_low_ranks(self):
        probs = zipfian(1.5).inclusion_probabilities(100, 3.0)
        assert probs[0] > probs[10] > probs[90]

    def test_validation(self):
        with pytest.raises(ValueError):
            UNIFORM.inclusion_probabilities(10, 0)
        with pytest.raises(ValueError):
            UNIFORM.inclusion_probabilities(2, 3.0)
        with pytest.raises(ValueError):
            zipfian(-1)


class TestGenerateQuery:
    def test_queries_are_never_empty(self, pool):
        rng = random.Random(0)
        probs = UNIFORM.inclusion_probabilities(len(pool), 1.0)
        for _ in range(50):
            q = generate_query(pool, probs, rng)
            assert len(q) >= 1

    def test_max_predicates_respected(self, pool):
        rng = random.Random(0)
        probs = UNIFORM.inclusion_probabilities(len(pool), 5.0)
        for _ in range(30):
            q = generate_query(pool, probs, rng, max_predicates=3)
            assert 1 <= len(q) <= 3

    def test_degenerate_probabilities_rejected(self, pool):
        rng = random.Random(0)
        with pytest.raises(RuntimeError):
            generate_query(pool, [0.0] * len(pool), rng)


class TestGenerateWorkload:
    def test_shape_and_determinism(self, pool):
        wl1 = generate_workload(pool, 40, 3.0, UNIFORM, random.Random(9))
        wl2 = generate_workload(pool, 40, 3.0, UNIFORM, random.Random(9))
        assert len(wl1) == 40
        assert wl1.queries == wl2.queries
        assert wl1.dataset == "demo"

    def test_expected_predicate_count(self, pool):
        wl = generate_workload(pool, 300, 3.0, UNIFORM, random.Random(1))
        mean = wl.total_predicates() / len(wl)
        # Rejection of empty draws biases the mean up slightly.
        assert mean == pytest.approx(3.0, abs=0.5)

    def test_zipfian_creates_overlap(self, pool):
        uniform = generate_workload(
            pool, 100, 3.0, UNIFORM, random.Random(2)
        )
        skewed = generate_workload(
            pool, 100, 3.0, zipfian(1.5), random.Random(2)
        )
        mean_u, max_u = overlap_statistics(uniform)
        mean_s, max_s = overlap_statistics(skewed)
        assert max_s > max_u
        assert mean_s > mean_u

    def test_zero_queries_rejected(self, pool):
        with pytest.raises(ValueError):
            generate_workload(pool, 0, 3.0, UNIFORM, random.Random(1))
