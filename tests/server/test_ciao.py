"""Unit tests for the CIAO server facade."""

import pytest

from repro.client import SimulatedClient, encode_chunk
from repro.core import (
    Budget,
    CiaoOptimizer,
    CostModel,
    DEFAULT_COEFFICIENTS,
    Query,
    Workload,
    clause,
    key_value,
)
from repro.rawjson import JsonChunk, dump_record
from repro.server import CiaoServer
from repro.simulate import MemoryChannel

RECORDS = [{"i": i % 5, "name": f"u{i}"} for i in range(50)]
LINES = [dump_record(r) for r in RECORDS]
C0 = clause(key_value("i", 0))
C1 = clause(key_value("i", 1))
WORKLOAD = Workload((Query((C0,), name="q0"), Query((C1,), name="q1")))


def make_plan(clauses):
    model = CostModel(DEFAULT_COEFFICIENTS, 40)
    opt = CiaoOptimizer(
        WORKLOAD, {C0: 0.2, C1: 0.2}, model
    )
    plan = opt.plan(Budget(10.0))
    assert set(plan.clauses) == set(clauses)
    return plan


class TestPartialLoadingPolicy:
    def test_auto_on_when_plan_covers_workload(self, tmp_path):
        plan = make_plan([C0, C1])
        server = CiaoServer(tmp_path, plan=plan, workload=WORKLOAD)
        assert server.partial_loading_enabled

    def test_auto_off_without_plan(self, tmp_path):
        server = CiaoServer(tmp_path, plan=None, workload=WORKLOAD)
        assert not server.partial_loading_enabled

    def test_auto_off_without_workload(self, tmp_path):
        plan = make_plan([C0, C1])
        server = CiaoServer(tmp_path, plan=plan, workload=None)
        assert not server.partial_loading_enabled

    def test_explicit_override(self, tmp_path):
        plan = make_plan([C0, C1])
        on = CiaoServer(tmp_path / "a", plan=plan, partial_loading="on")
        off = CiaoServer(tmp_path / "b", plan=plan, workload=WORKLOAD,
                         partial_loading="off")
        assert on.partial_loading_enabled
        assert not off.partial_loading_enabled

    def test_invalid_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CiaoServer(tmp_path, partial_loading="maybe")


class TestIngestAndQuery:
    def test_ingest_decoded_and_encoded_chunks(self, tmp_path):
        plan = make_plan([C0, C1])
        server = CiaoServer(tmp_path, plan=plan, workload=WORKLOAD)
        client = SimulatedClient("c", plan=plan, chunk_size=25)
        chunks = list(client.process(LINES))
        server.ingest(chunks[0])                 # decoded object
        server.ingest(encode_chunk(chunks[1]))   # wire bytes
        summary = server.finalize_loading()
        assert summary.received == 50
        assert summary.loaded == 20  # i in {0, 1} → 2 of 5 values

    def test_ingest_channel_drains(self, tmp_path):
        plan = make_plan([C0, C1])
        server = CiaoServer(tmp_path, plan=plan, workload=WORKLOAD)
        client = SimulatedClient("c", plan=plan, chunk_size=10)
        channel = MemoryChannel()
        client.ship(LINES, channel)
        assert server.ingest_channel(channel) == 5
        assert channel.pending() == 0

    def test_query_answers_and_skipping(self, tmp_path):
        plan = make_plan([C0, C1])
        server = CiaoServer(tmp_path, plan=plan, workload=WORKLOAD)
        client = SimulatedClient("c", plan=plan, chunk_size=25)
        for chunk in client.process(LINES):
            server.ingest(chunk)
        results = server.run_workload(WORKLOAD.queries)
        assert [r.scalar() for r in results] == [10, 10]
        assert all(r.plan_info.used_skipping for r in results)

    def test_query_finalizes_loading_automatically(self, tmp_path):
        server = CiaoServer(tmp_path)
        chunk = JsonChunk(0, LINES[:10])
        server.ingest(chunk)
        result = server.query("SELECT COUNT(*) FROM t")
        assert result.scalar() == 10

    def test_table_name_respected(self, tmp_path):
        server = CiaoServer(tmp_path, table_name="events")
        server.ingest(JsonChunk(0, LINES[:5]))
        assert server.query(
            "SELECT COUNT(*) FROM events"
        ).scalar() == 5


class TestIngestSessions:
    def test_session_counts_frames(self, tmp_path):
        plan = make_plan([C0, C1])
        server = CiaoServer(tmp_path, plan=plan, workload=WORKLOAD)
        client = SimulatedClient("c", plan=plan, chunk_size=10)
        chunks = list(client.process(LINES))
        with server.open_ingest_session("edge-0") as session:
            assert session.ingest(chunks[0]) == 1
            assert session.ingest(encode_chunk(chunks[1])) == 1
        assert server.ingest_sources == {"edge-0": 2}

    def test_batched_message_counts_each_frame(self, tmp_path):
        from repro.client import encode_frame_batch

        plan = make_plan([C0, C1])
        server = CiaoServer(tmp_path, plan=plan, workload=WORKLOAD)
        client = SimulatedClient("c", plan=plan, chunk_size=10)
        payloads = [encode_chunk(c) for c in client.process(LINES)]
        session = server.open_ingest_session("batcher")
        assert session.ingest(encode_frame_batch(payloads)) == 5
        assert server.ingest_sources == {"batcher": 5}
        summary = server.finalize_loading()
        assert summary.received == 50

    def test_session_drain_channel(self, tmp_path):
        plan = make_plan([C0, C1])
        server = CiaoServer(tmp_path, plan=plan, workload=WORKLOAD)
        client = SimulatedClient("c", plan=plan, chunk_size=10)
        channel = MemoryChannel()
        client.ship(LINES, channel, batch_size=2)
        session = server.open_ingest_session("shipper")
        assert session.drain_channel(channel) == 3  # messages, not chunks
        assert session.chunks == 5                  # frames
        assert session.bytes > 0

    def test_duplicate_source_rejected(self, tmp_path):
        server = CiaoServer(tmp_path)
        session = server.open_ingest_session("dup")
        with pytest.raises(ValueError):
            server.open_ingest_session("dup")
        session.close()
        # Reuse after close is still rejected: accounting would conflate.
        with pytest.raises(ValueError):
            server.open_ingest_session("dup")

    def test_closed_session_rejects_chunks(self, tmp_path):
        server = CiaoServer(tmp_path)
        session = server.open_ingest_session("s")
        session.close()
        with pytest.raises(RuntimeError):
            session.ingest(JsonChunk(0, LINES[:5]))

    def test_finalize_closes_sessions(self, tmp_path):
        server = CiaoServer(tmp_path)
        session = server.open_ingest_session("s")
        session.ingest(JsonChunk(0, LINES[:5]))
        server.finalize_loading()
        assert session.closed
        with pytest.raises(RuntimeError):
            server.open_ingest_session("late")

    def test_sharded_pipeline_source_accounting(self, tmp_path):
        server = CiaoServer(tmp_path, n_shards=2, shard_mode="thread")
        a = server.open_ingest_session("a")
        b = server.open_ingest_session("b")
        a.ingest(JsonChunk(0, LINES[:10]))
        a.ingest(JsonChunk(1, LINES[10:20]))
        b.ingest(JsonChunk(0, LINES[20:30]))
        assert server._pipeline.submitted_by_source == {"a": 2, "b": 1}
        summary = server.finalize_loading()
        assert summary.received == 30
        assert server.ingest_sources == {"a": 2, "b": 1}


class TestSharedOptionValidation:
    """ServerConfig and CiaoServer validate through one shared helper."""

    def test_partial_loading_message(self, tmp_path):
        from repro.server import ServerConfig, validate_server_options

        with pytest.raises(ValueError) as direct:
            CiaoServer(tmp_path, partial_loading="maybe")
        with pytest.raises(ValueError) as config:
            ServerConfig(data_dir=tmp_path, partial_loading="maybe")
        with pytest.raises(ValueError) as helper:
            validate_server_options(partial_loading="maybe")
        assert "partial_loading must be 'auto', 'on' or 'off'" in \
            str(direct.value)
        assert str(direct.value) == str(config.value) == str(helper.value)

    def test_shard_mode_message_names_valid_options(self, tmp_path):
        with pytest.raises(ValueError, match=r"process.*thread"):
            CiaoServer(tmp_path, shard_mode="fiber")

    def test_dispatch_message_names_valid_options(self, tmp_path):
        with pytest.raises(ValueError, match=r"work-stealing.*round-robin"):
            CiaoServer(tmp_path, dispatch="lottery")

    def test_n_shards_floor(self, tmp_path):
        from repro.server import ServerConfig

        with pytest.raises(ValueError, match="n_shards must be >= 1"):
            CiaoServer(tmp_path, n_shards=0)
        with pytest.raises(ValueError, match="n_shards must be >= 1"):
            ServerConfig(data_dir=tmp_path, n_shards=-1)
