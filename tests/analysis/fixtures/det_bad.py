# ciaolint: module-role=simulate
"""Fixture: DET001/DET002 — wall clock and global RNG in a simulation."""

import random
import time


def jitter():
    return time.time() + random.random()
