"""Unit tests for the selection algorithms (paper Algorithms 1 & 2)."""

import pytest

from repro.core import (
    APPROXIMATION_GUARANTEE,
    Query,
    SelectionObjective,
    Workload,
    celf_greedy,
    clause,
    exact,
    exhaustive_optimum,
    key_value,
    naive_greedy,
    ratio_greedy,
    select_predicates,
    substring,
)


def build(selectivities_and_costs):
    """Workload of one query per clause; returns (objective, costs)."""
    clauses = []
    sels = {}
    costs = {}
    for i, (sel, cost) in enumerate(selectivities_and_costs):
        c = clause(exact(f"col{i}", f"v{i}"))
        clauses.append(c)
        sels[c] = sel
        costs[c] = cost
    queries = tuple(Query((c,), name=f"q{i}")
                    for i, c in enumerate(clauses))
    return SelectionObjective(Workload(queries), sels), costs, clauses


class TestBudgetRespected:
    @pytest.mark.parametrize("algorithm", [
        naive_greedy, ratio_greedy, celf_greedy, select_predicates,
    ])
    def test_never_exceeds_budget(self, algorithm, tiny_optimizer):
        objective, costs = tiny_optimizer.objective, tiny_optimizer.costs
        for budget in [0.0, 0.1, 0.3, 0.6, 1.0, 10.0]:
            result = algorithm(objective, costs, budget)
            assert result.total_cost <= budget + 1e-9

    def test_zero_budget_selects_nothing_when_costs_positive(
            self, tiny_optimizer):
        result = select_predicates(
            tiny_optimizer.objective, tiny_optimizer.costs, 0.0
        )
        assert len(result) == 0
        assert result.objective_value == 0.0

    def test_negative_budget_rejected(self, tiny_optimizer):
        with pytest.raises(ValueError):
            naive_greedy(tiny_optimizer.objective, tiny_optimizer.costs, -1)

    def test_missing_costs_rejected(self, tiny_optimizer):
        with pytest.raises(ValueError):
            naive_greedy(tiny_optimizer.objective, {}, 1.0)


class TestAlgorithmBehaviour:
    def test_naive_greedy_ignores_cost(self):
        # Clause 0: huge benefit, huge cost. Clause 1+2: slightly less
        # benefit each, tiny cost.  Naive picks clause 0 and exhausts the
        # budget; ratio picks the two cheap ones and wins.
        objective, costs, clauses = build(
            [(0.01, 10.0), (0.05, 1.0), (0.05, 1.0)]
        )
        naive = naive_greedy(objective, costs, 10.0)
        ratio = ratio_greedy(objective, costs, 10.0)
        assert naive.selected == (clauses[0],)
        assert set(ratio.selected) == {clauses[1], clauses[2]}
        assert ratio.objective_value > naive.objective_value

    def test_ratio_greedy_can_lose_to_naive(self):
        # One expensive clause worth almost the whole objective vs one
        # cheap low-value clause that fills the budget first.
        objective, costs, clauses = build([(0.01, 10.0), (0.95, 0.1)])
        naive = naive_greedy(objective, costs, 10.0)
        ratio = ratio_greedy(objective, costs, 10.0)
        # Ratio takes the cheap clause first and can no longer afford the
        # big one; naive goes straight for the big one.
        assert clauses[0] in naive.selected_set
        assert ratio.selected[0] == clauses[1]
        assert naive.objective_value > ratio.objective_value

    def test_combined_takes_the_better(self):
        objective, costs, _ = build([(0.01, 10.0), (0.95, 0.1)])
        combined = select_predicates(objective, costs, 10.0)
        naive = naive_greedy(objective, costs, 10.0)
        ratio = ratio_greedy(objective, costs, 10.0)
        assert combined.objective_value == pytest.approx(
            max(naive.objective_value, ratio.objective_value)
        )

    def test_pick_order_recorded(self, tiny_optimizer):
        result = ratio_greedy(
            tiny_optimizer.objective, tiny_optimizer.costs, 100.0
        )
        # With an ample budget everything is selected, best-ratio first.
        assert len(result) == 4
        gains = [
            tiny_optimizer.objective.marginal_gain(
                frozenset(result.selected[:i]), c
            ) / tiny_optimizer.costs[c]
            for i, c in enumerate(result.selected)
        ]
        assert gains == sorted(gains, reverse=True)


class TestCelf:
    def test_celf_matches_ratio_greedy(self, tiny_optimizer):
        for budget in [0.2, 0.5, 1.0, 3.0]:
            lazy = celf_greedy(
                tiny_optimizer.objective, tiny_optimizer.costs, budget
            )
            eager = ratio_greedy(
                tiny_optimizer.objective, tiny_optimizer.costs, budget
            )
            assert lazy.selected == eager.selected

    def test_celf_saves_evaluations_on_larger_pools(self):
        pairs = [(0.1 + 0.8 * (i / 40), 0.5 + (i % 7) * 0.1)
                 for i in range(40)]
        objective, costs, _ = build(pairs)
        lazy = celf_greedy(objective, costs, 8.0)
        eager = ratio_greedy(objective, costs, 8.0)
        assert lazy.selected == eager.selected
        assert lazy.evaluations < eager.evaluations


class TestApproximationBound:
    def test_bound_against_brute_force(self, tiny_optimizer):
        for budget in [0.1, 0.25, 0.5, 0.75, 1.5]:
            got = select_predicates(
                tiny_optimizer.objective, tiny_optimizer.costs, budget
            )
            opt = exhaustive_optimum(
                tiny_optimizer.objective, tiny_optimizer.costs, budget
            )
            assert got.objective_value >= \
                APPROXIMATION_GUARANTEE * opt.objective_value - 1e-12

    def test_exhaustive_refuses_large_pools(self):
        pairs = [(0.5, 1.0)] * 25
        objective, costs, _ = build(pairs)
        with pytest.raises(ValueError):
            exhaustive_optimum(objective, costs, 5.0)

    def test_guarantee_constant(self):
        assert APPROXIMATION_GUARANTEE == pytest.approx(0.316, abs=1e-3)


class TestZeroCostClauses:
    def test_zero_cost_clauses_always_selectable(self):
        objective, costs, clauses = build([(0.5, 0.0), (0.5, 1.0)])
        result = ratio_greedy(objective, costs, 0.0)
        assert clauses[0] in result.selected_set
        assert clauses[1] not in result.selected_set
