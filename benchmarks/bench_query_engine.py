"""Batch query engine vs. row-at-a-time execution, and the incremental
snapshot-aggregation cache.

Three claims are measured, all **single-thread CPU work**:

1. **Batch speedup** — the same plan trees run under the batch engine
   (``run_plan``: columnar batches, ``evaluate_batch`` selection masks,
   popcount aggregation) and under the preserved row-at-a-time
   interpreter (``repro.engine.rowpath.run_plan_rows``: dict per row,
   ``Expr.evaluate`` per tuple — the pre-batch engine).  The bench
   asserts **>= 3x** on the paper's query template (full scan -> filter
   -> COUNT(*)) over >= 100k rows; override the floor with
   ``REPRO_BENCH_MIN_BATCH_SPEEDUP``.  Results are identical rows, same
   ordering — checked on every query.

2. **Incremental snapshot aggregation** — on a sharded streaming server,
   a repeated mid-load aggregate query reuses cached per-part partial
   aggregates: the second query's ``row_groups_total`` must be
   *strictly lower* than a cold (cache-cleared) scan of the same
   snapshot, with byte-identical answers.

3. **Disabled-instrumentation overhead** — an ``Executor`` built with
   no ``repro.obs`` instruments (the default null registry) must run
   the paper template within ``REPRO_BENCH_MAX_OBS_OVERHEAD`` (default
   5%) of bare ``run_plan``.  Unlike the first two, this assertion IS
   core-gated (<4 usable cores: reported, not asserted) because it
   compares two nearly-equal few-ms timings.

Reports: paper-style text table plus machine-readable
``BENCH_query_engine.json`` under ``benchmarks/results/`` so the perf
trajectory is diffable across PRs.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_query_engine.py``
(set ``REPRO_BENCH_SMOKE=1`` for a <60 s smoke configuration).
"""

from __future__ import annotations

import json
import os
import time

from conftest import run_once

from repro.bench import emit, emit_json, format_table
from repro.engine import (
    Catalog,
    Executor,
    TableEntry,
    parse_sql,
    plan_query,
    run_plan,
)
from repro.engine.rowpath import run_plan_rows
from repro.rawjson import JsonChunk, dump_record
from repro.server import CiaoServer
from repro.storage import ParquetLiteWriter, infer_schema

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: >= 100k rows in every mode: the speedup claim is about interpreter
#: overhead per tuple, which only reads cleanly at scale.
N_ROWS = 120_000
ROW_GROUP = 2_000
TIMING_REPEATS = 2 if SMOKE else 3

MIN_BATCH_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_BATCH_SPEEDUP", "3.0")
)

#: The asserted query is the paper's template: scan -> filter -> COUNT(*).
TEMPLATE_SQL = "SELECT COUNT(*) FROM t WHERE cat = 'c3'"

#: The rest of the surface is reported (not asserted): COUNT-only fast
#: path, multi-aggregate, string matching, and GROUP BY.
REPORTED_SQL = [
    TEMPLATE_SQL,
    "SELECT COUNT(*) FROM t",
    "SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM t WHERE cat = 'c3'",
    "SELECT COUNT(*) FROM t WHERE text LIKE '%kw%' AND v > 500",
    "SELECT cat, COUNT(*), SUM(v) FROM t GROUP BY cat",
]

# Streaming-cache stream.
SNAP_CHUNKS = 6 if SMOKE else 10
SNAP_CHUNK_RECORDS = 150 if SMOKE else 300
SNAP_SQL = "SELECT COUNT(*), SUM(v) FROM t WHERE i = 1"

#: Shared payload for BENCH_query_engine.json; tests fill their section
#: and rewrite the file so a partial run still archives what it measured.
_PAYLOAD = {
    "bench": "query_engine",
    "smoke": SMOKE,
    "n_rows": N_ROWS,
    "row_group_size": ROW_GROUP,
}


def _dataset():
    return [
        {
            "id": i,
            "cat": f"c{i % 10}",
            "v": (i * 37) % 1000,
            "text": "kw here" if i % 5 == 0 else "plain",
        }
        for i in range(N_ROWS)
    ]


def _write_table(tmp_path):
    rows = _dataset()
    path = tmp_path / "t.pql"
    with ParquetLiteWriter(path, infer_schema(rows[:200])) as writer:
        for start in range(0, len(rows), ROW_GROUP):
            writer.write_row_group(rows[start:start + ROW_GROUP])
    table = TableEntry(name="t", parquet_paths=[path])
    catalog = Catalog()
    catalog.register(table)
    return table


def _best_of(fn, repeats=TIMING_REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_batch_vs_row_speedup(benchmark, tmp_path, results_dir):
    table = _write_table(tmp_path)

    def measure():
        rows_per_sql = []
        for sql in REPORTED_SQL:
            parsed = parse_sql(sql)
            batch_s, batch_result = _best_of(
                lambda p=parsed: run_plan(*plan_query(p, table))
            )
            row_s, row_result = _best_of(
                lambda p=parsed: run_plan_rows(*plan_query(p, table))
            )
            assert batch_result.rows == row_result.rows, (
                f"batch/row results diverge for {sql!r}"
            )
            rows_per_sql.append({
                "sql": sql,
                "batch_ms": batch_s * 1000,
                "row_ms": row_s * 1000,
                "speedup": row_s / batch_s,
                "result_rows": len(batch_result.rows),
            })
        return rows_per_sql

    measured = run_once(benchmark, measure)

    table_text = format_table(
        ["query", "batch(ms)", "row(ms)", "speedup"],
        [
            [m["sql"], m["batch_ms"], m["row_ms"], f"{m['speedup']:.1f}x"]
            for m in measured
        ],
    )
    header = (
        f"== batch engine vs row-at-a-time ({N_ROWS} rows, "
        f"row groups of {ROW_GROUP}; identical rows asserted) =="
    )
    emit("query_engine_batch_vs_row", f"{header}\n{table_text}",
         results_dir)

    _PAYLOAD["batch_vs_row"] = {
        "queries": measured,
        "asserted_sql": TEMPLATE_SQL,
        "min_speedup_floor": MIN_BATCH_SPEEDUP,
    }
    emit_json("BENCH_query_engine", _PAYLOAD, results_dir)

    template = next(m for m in measured if m["sql"] == TEMPLATE_SQL)
    assert template["speedup"] >= MIN_BATCH_SPEEDUP, (
        f"batch engine speedup {template['speedup']:.2f}x on the paper "
        f"template is below the {MIN_BATCH_SPEEDUP}x floor "
        f"({template['row_ms']:.1f}ms row vs {template['batch_ms']:.1f}ms "
        f"batch) — single-thread work, not core-gated"
    )


def _snapshot_chunks(lo, hi):
    chunks = []
    for cid in range(lo, hi):
        records = [
            dump_record({
                "i": (cid * SNAP_CHUNK_RECORDS + k) % 7,
                "v": cid * SNAP_CHUNK_RECORDS + k,
            })
            for k in range(SNAP_CHUNK_RECORDS)
        ]
        chunks.append(JsonChunk(cid, records))
    return chunks


def test_incremental_snapshot_aggregation(benchmark, tmp_path,
                                          results_dir):
    server = CiaoServer(tmp_path / "stream", n_shards=2,
                        shard_mode="thread", seal_interval=1)

    def measure():
        half = SNAP_CHUNKS // 2
        for chunk in _snapshot_chunks(0, half):
            server.ingest(chunk)
        server.quiesce()
        first = server.query(SNAP_SQL)

        for chunk in _snapshot_chunks(half, SNAP_CHUNKS):
            server.ingest(chunk)
        server.quiesce()
        warm_start = time.perf_counter()
        warm = server.query(SNAP_SQL)
        warm_s = time.perf_counter() - warm_start

        # Cold baseline: same snapshot, cache dropped.
        server.table.clear_snapshot_cache()
        cold_start = time.perf_counter()
        cold = server.query(SNAP_SQL)
        cold_s = time.perf_counter() - cold_start
        return first, warm, warm_s, cold, cold_s

    first, warm, warm_s, cold, cold_s = run_once(benchmark, measure)

    # Exactness: byte-identical answers, warm vs cold scan of the same
    # snapshot.
    assert json.dumps(warm.rows) == json.dumps(cold.rows)
    # Incrementality: the warm query scanned only newly sealed parts.
    assert warm.stats.row_groups_total < cold.stats.row_groups_total, (
        f"warm snapshot query rescanned sealed parts: "
        f"{warm.stats.row_groups_total} row groups vs cold "
        f"{cold.stats.row_groups_total}"
    )
    assert warm.plan_info.snapshot_cache_hits > 0
    assert cold.plan_info.snapshot_cache_hits == 0

    summary = server.finalize_loading()
    final = server.query(SNAP_SQL)
    assert json.dumps(final.rows) == json.dumps(cold.rows), (
        "mid-load snapshot answer diverged from the finalized table"
    )

    lines = [
        "== incremental snapshot aggregation (sharded streaming load) ==",
        f"query: {SNAP_SQL}",
        f"first mid-load query:  {first.stats.row_groups_total} row "
        f"groups scanned ({first.plan_info.snapshot_cache_misses} parts "
        f"cached)",
        f"second (warm):         {warm.stats.row_groups_total} row groups "
        f"({warm.plan_info.snapshot_cache_hits} parts from cache, "
        f"{warm.plan_info.snapshot_cache_misses} fresh) in "
        f"{warm_s * 1000:.2f}ms",
        f"second (cold rescan):  {cold.stats.row_groups_total} row groups "
        f"in {cold_s * 1000:.2f}ms",
        f"answers byte-identical (warm == cold == finalized); "
        f"{summary.received} records loaded",
    ]
    emit("query_engine_snapshot_cache", "\n".join(lines), results_dir)

    _PAYLOAD["snapshot_cache"] = {
        "sql": SNAP_SQL,
        "chunks": SNAP_CHUNKS,
        "chunk_records": SNAP_CHUNK_RECORDS,
        "first_row_groups": first.stats.row_groups_total,
        "warm_row_groups": warm.stats.row_groups_total,
        "cold_row_groups": cold.stats.row_groups_total,
        "warm_cache_hits": warm.plan_info.snapshot_cache_hits,
        "warm_ms": warm_s * 1000,
        "cold_ms": cold_s * 1000,
        "answers_identical": True,
    }
    emit_json("BENCH_query_engine", _PAYLOAD, results_dir)


# ----------------------------------------------------------------------
# Disabled-instrumentation overhead guard (repro.obs).
#
# An `Executor` built with no metrics/tracer/query-log runs every query
# through the shared null instruments; the guard pins that path to
# within REPRO_BENCH_MAX_OBS_OVERHEAD (default 5%) of bare `run_plan` on
# the paper template.  Like the ingest speedup floors, the assertion is
# core-gated: on a starved shared runner (<4 usable cores) min-of-N
# timing of a few-ms query is dominated by scheduling noise, so there
# the ratio is reported but not asserted.

MAX_OBS_OVERHEAD = float(
    os.environ.get("REPRO_BENCH_MAX_OBS_OVERHEAD", "0.05")
)
OVERHEAD_QUERIES = 10 if SMOKE else 20
OVERHEAD_REPEATS = 5 if SMOKE else 8


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_disabled_instrumentation_overhead(benchmark, tmp_path,
                                           results_dir):
    table = _write_table(tmp_path)
    catalog = Catalog()
    catalog.register(table)
    executor = Executor(catalog)  # null metrics, tracer, and query log
    parsed = parse_sql(TEMPLATE_SQL)

    direct_result = run_plan(*plan_query(parsed, table))
    executor_result = executor.execute_parsed(parsed, sql=TEMPLATE_SQL)
    assert executor_result.rows == direct_result.rows

    def run_direct():
        for _ in range(OVERHEAD_QUERIES):
            run_plan(*plan_query(parsed, table))

    def run_executor():
        for _ in range(OVERHEAD_QUERIES):
            executor.execute_parsed(parsed, sql=TEMPLATE_SQL)

    def measure():
        # Interleave the arms so clock drift hits both equally; keep
        # the per-arm minimum (the least-disturbed run).
        direct_s = executor_s = float("inf")
        for _ in range(OVERHEAD_REPEATS):
            d, _ = _best_of(run_direct, repeats=1)
            e, _ = _best_of(run_executor, repeats=1)
            direct_s = min(direct_s, d)
            executor_s = min(executor_s, e)
        return direct_s, executor_s

    direct_s, executor_s = run_once(benchmark, measure)
    ratio = executor_s / direct_s
    cores = _effective_cores()
    gated = cores >= 4

    lines = [
        "== disabled-instrumentation overhead (null obs executor) ==",
        f"query: {TEMPLATE_SQL} x{OVERHEAD_QUERIES}, min of "
        f"{OVERHEAD_REPEATS}",
        f"bare run_plan:   {direct_s * 1000:.2f}ms",
        f"null Executor:   {executor_s * 1000:.2f}ms",
        f"ratio: {ratio:.4f} (ceiling 1 + {MAX_OBS_OVERHEAD}; "
        f"{'asserted' if gated else f'reported only, {cores} cores'})",
    ]
    emit("query_engine_obs_overhead", "\n".join(lines), results_dir)

    _PAYLOAD["obs_overhead"] = {
        "sql": TEMPLATE_SQL,
        "queries_per_rep": OVERHEAD_QUERIES,
        "repeats": OVERHEAD_REPEATS,
        "direct_ms": direct_s * 1000,
        "executor_ms": executor_s * 1000,
        "ratio": ratio,
        "max_overhead": MAX_OBS_OVERHEAD,
        "cores": cores,
        "asserted": gated,
    }
    emit_json("BENCH_query_engine", _PAYLOAD, results_dir)

    if gated:
        assert ratio <= 1.0 + MAX_OBS_OVERHEAD, (
            f"null-instrumented Executor is {ratio:.3f}x bare run_plan "
            f"on the paper template ({executor_s * 1000:.2f}ms vs "
            f"{direct_s * 1000:.2f}ms) — disabled observability must "
            f"stay within {MAX_OBS_OVERHEAD:.0%}"
        )
