thing = object()
