"""Quickstart: the whole CIAO pipeline through the `CiaoSession` front door.

Plan a budgeted pushdown for a prospective workload, load a synthetic
Yelp-style stream with client assistance, query with data skipping.

Queries below run on the columnar **batch engine**: operators exchange
column batches with bit-vector selection masks, so a COUNT(*) like these
is page decodes + popcounts, never a Python dict per row.  Row-shaped
results (``result.rows``) come from the thin ``rows()`` adapter over the
final batch, so nothing here changes as the engine vectorizes further
(see ``repro.engine``).  On sharded deployments, repeated mid-load
``job.snapshot_query(...)`` aggregates are incremental: sealed parts are
served from cached partial aggregates and only newly loaded data is
scanned.

Run:  python examples/quickstart.py
"""

from repro.api import Budget, CiaoSession, Query, Workload, clause, key_value, substring

five_stars = clause(key_value("stars", 5))
tasty = clause(substring("text", "tasty000"))
workload = Workload(
    (Query((five_stars, tasty), name="rave-reviews"),
     Query((tasty,), name="keyword-mentions")),
    dataset="yelp",
)

with CiaoSession(workload, source="yelp", seed=7) as session:
    print(session.plan(Budget(1.0)).describe())
    report = session.load(n_records=10_000).result()
    print(f"\nLoaded {report.loaded} of {report.received} records "
          f"(ratio {report.loading_ratio:.2f}); {report.sidelined} sidelined.")
    print("\nQuery results:")
    for query in workload.queries:
        result = session.query(query.sql("t"))
        print(f"  {query.name:<18} count={result.scalar():<6} "
              f"rows examined={result.stats.rows_examined}")
