"""Compaction: background merge + workload-driven re-clustering.

A sharded streaming load with a small seal interval leaves behind many
small sealed parts, each holding rows in arrival order — so every
part's zone maps span the whole value domain and point filters scan
everything.  Passing ``compaction=`` to :class:`~repro.api.CiaoSession`
starts a background :class:`~repro.compact.Compactor` that

* merges small sealed parts into large ones (size-tiered, no guard —
  fewer parts is a pure win), and
* re-sorts rows by the hottest predicate column from the query log,
  once that column's un-pruned scan work has paid for the rewrite
  (a ski-rental regret guard against layout thrash).

The swap is atomic: mid-load snapshot queries before, during, and after
a compaction all see one consistent part set and identical answers.

Run:  python examples/compaction.py
"""

import time

from repro.api import CiaoSession, DeploymentConfig
from repro.compact import CompactionConfig
from repro.obs import Metrics, QueryLog
from repro.rawjson import dump_record

N_RECORDS = 6_000
DOMAIN = 8
HOT_SQL = "SELECT COUNT(*) FROM t WHERE k = 3"


def skip_fraction(records) -> float:
    skipped = sum(r.row_groups_skipped + r.row_groups_pruned
                  for r in records)
    visited = sum(r.row_groups_scanned + r.row_groups_skipped
                  for r in records)
    return skipped / visited if visited else 0.0


def main() -> None:
    lines = [
        dump_record({"k": i % DOMAIN, "v": i}) for i in range(N_RECORDS)
    ]
    metrics = Metrics()
    query_log = QueryLog()
    session = CiaoSession(
        source=lines,
        config=DeploymentConfig(mode="sharded", n_shards=2,
                                shard_mode="thread", seal_interval=1,
                                chunk_size=250),
        metrics=metrics, query_log=query_log,
        compaction=CompactionConfig(min_observations=2,
                                    poll_interval=0.01,
                                    row_group_rows=512),
    )
    with session:
        job = session.load()
        job.result()

        # Heat the log: the compactor learns "k" is the hot column.
        for _ in range(6):
            count = session.query(HOT_SQL).scalar()
        before = skip_fraction(query_log.tail(6))
        parts_before = metrics.gauge("compact.parts_live").value
        print(f"after load : {HOT_SQL!r} -> {count}")
        print(f"  sealed parts ~{parts_before:.0f}, "
              f"skip fraction {before:.2f}")

        # The background worker merges + re-clusters on its own clock.
        deadline = time.time() + 10.0
        while (session.compaction_stats()["reclusters"] == 0
                and time.time() < deadline):
            time.sleep(0.05)
        stats = session.compaction_stats()

        for _ in range(6):
            count = session.query(HOT_SQL).scalar()
        after = skip_fraction(query_log.tail(6))
        print(f"after compaction ({stats['rewrites']} rewrites, "
              f"{stats['reclusters']} re-cluster): "
              f"{HOT_SQL!r} -> {count}")
        print(f"  parts merged {stats['parts_merged']}, "
              f"rows rewritten {stats['rows_rewritten']}, "
              f"skip fraction {before:.2f} -> {after:.2f}")


if __name__ == "__main__":
    main()
