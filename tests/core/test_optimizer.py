"""Unit tests for the CIAO optimizer facade and pushdown plans."""

import math

import pytest

from repro.core import (
    Budget,
    CostModel,
    DEFAULT_COEFFICIENTS,
    clause,
    exact,
    manual_plan,
    substring,
)


class TestPlan:
    def test_ids_are_dense_in_pick_order(self, tiny_optimizer):
        plan = tiny_optimizer.plan(Budget(10.0))
        assert plan.predicate_ids == list(range(len(plan)))
        assert plan.selection.selected == tuple(plan.clauses)

    def test_plan_respects_budget(self, tiny_optimizer):
        for budget in [0.0, 0.3, 0.7, 2.0]:
            plan = tiny_optimizer.plan(Budget(budget))
            assert plan.total_cost_us() <= budget + 1e-9

    def test_lookup_by_clause_and_sql(self, tiny_optimizer):
        plan = tiny_optimizer.plan(Budget(10.0))
        for entry in plan.entries:
            assert plan.lookup(entry.clause) is entry
            assert plan.lookup_sql(entry.clause.sql()) is entry
        assert plan.lookup(clause(exact("zz", "zz"))) is None
        assert plan.lookup_sql("zz = 'zz'") is None

    def test_covers_query_and_ids_for_query(self, tiny_optimizer,
                                            tiny_workload):
        plan = tiny_optimizer.plan(Budget(10.0))
        for query in tiny_workload:
            assert plan.covers_query(query)
            ids = plan.ids_for_query(query)
            assert len(ids) == len(query)

    def test_zero_budget_plan_is_empty(self, tiny_optimizer, tiny_workload):
        plan = tiny_optimizer.plan(Budget(0.0))
        assert len(plan) == 0
        assert not plan.covers_query(tiny_workload.queries[0])

    def test_describe_lists_patterns(self, tiny_optimizer):
        plan = tiny_optimizer.plan(Budget(10.0))
        text = plan.describe()
        for entry in plan.entries:
            assert entry.clause.sql() in text

    def test_plan_sweep_monotone_in_predicates(self, tiny_optimizer):
        budgets = [Budget(b) for b in (0.0, 0.25, 0.5, 1.0, 5.0)]
        sweep = tiny_optimizer.plan_sweep(budgets)
        sizes = [len(plan) for _, plan in sweep]
        assert sizes == sorted(sizes)


class TestManualPlan:
    def test_fixed_clause_set(self):
        c1 = clause(exact("a", "x"))
        c2 = clause(substring("t", "kw"))
        model = CostModel(DEFAULT_COEFFICIENTS, 150)
        plan = manual_plan([c1, c2], {c1: 0.2, c2: 0.4}, model)
        assert plan.clauses == [c1, c2]
        assert plan.predicate_ids == [0, 1]
        assert math.isnan(plan.expected_benefit())
        assert plan.total_cost_us() == pytest.approx(plan.budget.us)
