"""Fig. 7 — data loading time and loading ratio vs predicate selectivity.

Paper setup: Windows log, three 5-query workloads whose predicates sit at
selectivity 0.35 / 0.15 / 0.01, two predicates pushed, partial loading
enabled.  Expected shape: more selective predicates ⇒ lower loading ratio
⇒ lower loading time.
"""

from conftest import config_for, run_once

from repro.bench import emit_table, selectivity_experiment

PARAMS = config_for("winlog", n_records=4000, n_queries=5)


def test_fig7_selectivity_loading(benchmark, tmp_path, results_dir):
    def experiment():
        return selectivity_experiment(tmp_path, config=PARAMS["config"])

    results = run_once(benchmark, experiment)
    rows = [
        (
            r.level,
            r.loading_time_s,
            r.loading_ratio,
            r.baseline.loading_wall_s,
        )
        for r in results
    ]
    emit_table(
        "fig7_selectivity_loading",
        ["selectivity", "loading time (s)", "loading ratio",
         "baseline loading (s)"],
        rows, results_dir, title="Fig 7",
    )

    ratios = [r.loading_ratio for r in results]
    times = [r.loading_time_s for r in results]
    # Selectivity order is 0.35, 0.15, 0.01: both series must decrease.
    assert ratios == sorted(ratios, reverse=True)
    assert times[-1] < times[0]
    # The most selective level loads almost nothing.
    assert ratios[-1] < 0.1
