"""Observability: one trace across the wire, metrics, and the query log.

Everything in ``repro.obs`` is injectable and off by default — a session
built without a registry pays a handful of no-op calls and nothing else.
This demo turns all three instruments on for a served session:

* a ``Metrics`` registry counting chunk decodes, row groups skipped,
  snapshot-cache hits, admission decisions, and socket frames;
* a ``Tracer`` whose spans cross the process boundary: the client's
  ``remote.query`` span id rides the wire header, the server re-roots
  its ``service.query``/``engine.*`` spans under it, and the RESULT
  frame carries the finished server spans back for adoption — one trace
  id, both sides;
* a ``QueryLog`` recording per query the predicate columns, observed
  selectivity, rows and row groups scanned vs. skipped, snapshot-cache
  outcome, and which client asked.

Run:  python examples/observability.py
"""

from repro.api import Budget, CiaoSession, Query, Workload, clause, key_value
from repro.obs import Metrics, QueryLog, Tracer, prometheus_text
from repro.service import CiaoService, RemoteSession

SEED = 11
N_RECORDS = 5_000
SQL = "SELECT COUNT(*) FROM t WHERE stars = 5"


def main() -> None:
    workload = Workload(
        (Query((clause(key_value("stars", 5)),), name="five-stars"),),
        dataset="yelp",
    )
    metrics = Metrics()
    query_log = QueryLog()
    session = CiaoSession(
        workload, source="yelp", seed=SEED,
        metrics=metrics, tracer=Tracer("server"), query_log=query_log,
    )
    with session:
        session.plan(Budget(1.0))
        session.load(n_records=N_RECORDS).result()

        client_tracer = Tracer("client")
        with CiaoService(session) as service:
            with RemoteSession(service.address, client_id="demo",
                               tracer=client_tracer) as remote:
                count = remote.query(SQL).scalar()
                stats = remote.stats(query_log_tail=5)

        print(f"{SQL}\n  -> {count}\n")

        print("Trace (client + adopted server spans, one trace id):")
        print(client_tracer.format_tree())

        print("\nQuery log:")
        for rec in query_log.records():
            print(f"  client={rec.client_id} cols={rec.predicate_columns} "
                  f"selectivity={rec.selectivity:.3f} "
                  f"row_groups scanned={rec.row_groups_scanned} "
                  f"skipped={rec.row_groups_skipped} "
                  f"cache={rec.snapshot_cache}")

        print("\nSTATS over the wire (excerpt):")
        print(f"  connections={stats['connections']} "
              f"admission={stats['admission']}")
        for name in ("engine.queries", "loader.chunks",
                     "scan.row_groups_skipped", "socket.frames_in"):
            print(f"  {name} = {stats['metrics']['counters'].get(name, 0)}")

        print("\nPrometheus text (first lines):")
        print("\n".join(prometheus_text(metrics).splitlines()[:8]))


if __name__ == "__main__":
    main()
