"""The public-API contract, enforced by ciaolint's api-hygiene checker.

The per-package ``__all__`` completeness/sortedness/importability tests
that used to live here were promoted into the static api-hygiene
checker (``repro.analysis.hygiene``), which covers every package under
``src`` from the AST alone.  This file is the thin runtime half: one
assertion that the checker is clean, plus the two contracts a static
pass cannot express — the roadmap's promised top-level symbol set, and
actual star-import behavior.
"""

import importlib
from pathlib import Path

from repro.analysis import run_analysis

SRC = Path(__file__).resolve().parents[1] / "src"

#: Symbols the roadmap promises at the top level (the satellite list:
#: fleet + streaming-query + deployment API symbols, exported
#: consistently).
PROMISED_TOP_LEVEL = {
    "Budget",
    "ChannelSpec",
    "CiaoOptimizer",
    "CiaoServer",
    "CiaoSession",
    "ClientPopulation",
    "DataSource",
    "DeploymentConfig",
    "FleetClientSpec",
    "FleetCoordinator",
    "FleetReport",
    "IngestSession",
    "LoadJob",
    "LoadReport",
    "LoadSummary",
    "LossyChannel",
    "ServerConfig",
    "SimulatedClient",
    "make_channel",
}


def test_api_hygiene_is_clean():
    """Every package __all__ is complete, sorted, and bound (API001-006)."""
    result = run_analysis([SRC], select=["api-hygiene"], root=SRC.parent)
    assert [f.render() for f in result.findings] == []


def test_all_entries_importable():
    """Every ``repro.__all__`` name resolves at runtime (no stale exports).

    The static checker proves each entry is *bound* in the module; this
    proves the top-level package actually imports — the one failure mode
    (a broken re-export chain) statics cannot see.
    """
    repro = importlib.import_module("repro")
    missing = [n for n in repro.__all__ if not hasattr(repro, n)]
    assert not missing, f"repro.__all__ lists unimportable: {missing}"


def test_promised_symbols_at_top_level():
    repro = importlib.import_module("repro")
    missing = sorted(PROMISED_TOP_LEVEL - set(repro.__all__))
    assert not missing, f"top-level __all__ lost: {missing}"


def test_star_import_matches_all():
    namespace = {}
    exec("from repro import *", namespace)
    imported = {n for n in namespace if not n.startswith("_")}
    repro = importlib.import_module("repro")
    assert imported == set(repro.__all__) - {"__version__"}
