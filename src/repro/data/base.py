"""Shared interface for the synthetic dataset generators.

The paper evaluates on three real datasets (Yelp reviews, a Windows system
log, a YCSB/fakeit customer dump).  Those are multi-GB downloads we cannot
ship, so each is replaced by a generator that reproduces the *structure the
experiments depend on*: the attributes of Table II, their candidate-value
domains, and value-frequency distributions chosen so predicates with the
selectivities the micro-benchmarks need actually exist.  DESIGN.md §2
documents this substitution.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Iterator, List

from ..rawjson.writer import dump_record
from .randomness import rng_stream


class DatasetGenerator(ABC):
    """Deterministic generator of JSON-object records for one dataset."""

    #: Dataset identifier used in tables, benches, and the catalog.
    name: str = "abstract"

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = rng_stream(seed, f"dataset:{self.name}")

    @abstractmethod
    def record(self) -> Dict[str, Any]:
        """Produce the next record as a plain dict."""

    def generate(self, count: int) -> Iterator[Dict[str, Any]]:
        """Yield *count* records."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        for _ in range(count):
            yield self.record()

    def raw_lines(self, count: int) -> Iterator[str]:
        """Yield *count* serialized single-line JSON records.

        This is what a CIAO client actually emits: newline-delimited JSON in
        arrival order.
        """
        for rec in self.generate(count):
            yield dump_record(rec)

    def sample(self, count: int) -> List[Dict[str, Any]]:
        """Materialize a sample (used for selectivity estimation).

        The sample comes from an *independent* stream so estimating
        selectivities does not consume records from the main sequence.
        """
        clone = type(self)(self.seed)
        clone._rng = rng_stream(self.seed, f"dataset-sample:{self.name}")
        return list(clone.generate(count))

    def average_record_length(self, sample_size: int = 200) -> float:
        """Mean serialized record length ``len(t)`` for the cost model."""
        lengths = [len(dump_record(rec)) for rec in self.sample(sample_size)]
        return sum(lengths) / len(lengths)
