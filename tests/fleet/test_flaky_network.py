"""Flaky networks: fleets over lossy links lose bytes, never records.

Closes the ROADMAP "flaky networks (lossy `Channel` wrappers)" hook: a
heterogeneous fleet ships through seeded `LossyChannel`s (drops are
retransmitted like any reliable transport over a lossy link), one client
additionally dies mid-load, and the fleet-wide accounting invariant
``received == loaded + sidelined + malformed == all records`` must hold —
with query answers identical to clean serial ingest of the same records.
"""

import pytest

from repro.core import Budget, CiaoOptimizer, CostModel, \
    DEFAULT_COEFFICIENTS
from repro.client import SimulatedClient
from repro.data import make_generator
from repro.fleet import ClientPopulation, FleetCoordinator
from repro.server import CiaoServer
from repro.simulate import ChannelSpec
from repro.workload import estimate_selectivities, table3_workload

SEED = 424242
N_RECORDS = 1200
N_CLIENTS = 4
CHUNK_SIZE = 100
DROP_RATE = 0.3


@pytest.fixture(scope="module")
def setup():
    generator = make_generator("yelp", SEED)
    lines = list(generator.raw_lines(N_RECORDS))
    workload = table3_workload("yelp", "A", seed=SEED, n_queries=8)
    sels = estimate_selectivities(
        workload.candidate_pool, generator.sample(500)
    )
    model = CostModel(DEFAULT_COEFFICIENTS, 160)
    plan = CiaoOptimizer(workload, sels, model).plan(Budget(4.0))
    return lines, workload, plan


def serial_answers(tmp_path, setup):
    lines, workload, plan = setup
    server = CiaoServer(tmp_path / "serial", plan=plan, workload=workload)
    client = SimulatedClient("solo", plan=plan, chunk_size=CHUNK_SIZE)
    for chunk in client.process(iter(lines)):
        server.ingest(chunk)
    server.finalize_loading()
    return [server.query(q.sql("t")).scalar() for q in workload.queries]


def run_flaky_fleet(tmp_path, tag, setup, population,
                    drop_rate=DROP_RATE, seed=SEED):
    lines, workload, plan = setup
    server = CiaoServer(
        tmp_path / tag, plan=plan, workload=workload,
        n_shards=2, shard_mode="thread",
    )
    coordinator = FleetCoordinator(
        server, population,
        global_plan=plan,
        chunk_size=CHUNK_SIZE,
        batch_size=2,
        channel_factory=ChannelSpec(drop_rate=drop_rate, seed=seed),
    )
    report = coordinator.run(lines)
    return server, report


class TestFlakyNetworkFleet:
    def test_zero_record_loss_under_drops(self, tmp_path, setup):
        lines, workload, plan = setup
        population = ClientPopulation.generate(N_CLIENTS, seed=SEED)
        server, report = run_flaky_fleet(
            tmp_path, "flaky", setup, population
        )
        assert report.messages_dropped > 0, (
            "the lossy links never dropped — the scenario is vacuous"
        )
        assert report.no_record_loss
        assert report.summary.received == N_RECORDS
        assert [server.query(q.sql("t")).scalar()
                for q in workload.queries] == \
            serial_answers(tmp_path, setup)

    def test_zero_record_loss_under_drops_and_straggler_death(
            self, tmp_path, setup):
        """The satellite's scenario: drops + straggler reassignment."""
        population = ClientPopulation.generate(N_CLIENTS, seed=SEED)
        fat = max(population, key=lambda s: s.share).client_id
        server, report = run_flaky_fleet(
            tmp_path, "flaky-killed", setup,
            population.with_kill(fat, after_chunks=1),
        )
        assert report.killed_clients == [fat]
        assert report.reassignment_events > 0
        assert report.messages_dropped > 0
        assert report.no_record_loss, (
            f"lost records under drops + death: "
            f"received={report.summary.received} of {N_RECORDS}"
        )
        assert [server.query(q.sql("t")).scalar()
                for q in setup[1].queries] == \
            serial_answers(tmp_path, setup)

    def test_drop_accounting_deterministic_per_seed(self, tmp_path,
                                                    setup):
        """Same root seed, same ship sequence → identical drops.

        A one-client fleet ships a deterministic message sequence, so
        the seeded drop decisions must replay exactly (the explicit-seed
        satellite): two runs account the same number of dropped
        transmissions.
        """
        from repro.fleet import FleetClientSpec

        population = ClientPopulation([
            FleetClientSpec("solo", platform="local", speed_factor=1.0,
                            share=1.0),
        ])
        _, first = run_flaky_fleet(tmp_path, "det-a", setup, population,
                                   drop_rate=0.5)
        _, second = run_flaky_fleet(tmp_path, "det-b", setup, population,
                                    drop_rate=0.5)
        assert first.messages_dropped == second.messages_dropped > 0
        assert first.no_record_loss and second.no_record_loss
