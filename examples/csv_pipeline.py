"""CIAO over CSV: no-parse filtering on a second text format.

The paper notes the approach "can also be applied to other text-based data
formats, like CSV" (§IV-A).  This example runs the client side of CIAO on
CSV lines: sensors emit CSV, the pushed-down predicates compile to
CSV-aware anchored patterns (``repro.rawcsv``), and the client produces
the same per-predicate bit-vectors as the JSON pipeline — without parsing
a single line.  The server boundary then decodes only the records the
load mask selects.

Run:  python examples/csv_pipeline.py
"""

import time

from repro.bitvec import BitVector
from repro.core import clause, exact, key_value, substring
from repro.data import make_generator
from repro.rawcsv import CsvCodec, compile_csv_clause

N_RECORDS = 20_000

#: The winlog dataset re-framed as a CSV feed.
CODEC = CsvCodec(
    ["event_id", "time", "level", "component", "info"],
    types={"event_id": int},
)

PUSHED = [
    clause(exact("component", "WuaEng")),
    clause(substring("info", "evt012")),
    clause(exact("level", "Critical")),
]


def main() -> None:
    generator = make_generator("winlog", seed=77)
    records = list(generator.generate(N_RECORDS))
    lines = [CODEC.encode_record(r) for r in records]
    payload_mb = sum(len(l) for l in lines) / 1e6
    print(
        f"{N_RECORDS} log events as CSV ({payload_mb:.1f} MB); pushing "
        f"{len(PUSHED)} predicates:"
    )
    for c in PUSHED:
        print(f"  {c.sql()}")

    compiled = [compile_csv_clause(c, CODEC) for c in PUSHED]
    start = time.perf_counter()
    vectors = []
    for cc in compiled:
        bv = BitVector(len(lines))
        for i, line in enumerate(lines):
            if cc.match(line):
                bv.set(i)
        vectors.append(bv)
    elapsed = time.perf_counter() - start
    print(
        f"\nClient matching: {elapsed * 1e6 / N_RECORDS:.2f} µs/record "
        f"({N_RECORDS / elapsed / 1e6:.1f} M records/s) — no parsing"
    )

    # The load mask: records worth decoding at the server.
    mask = vectors[0].copy()
    for bv in vectors[1:]:
        mask.union_update(bv)
    selected = list(mask.iter_set())
    print(
        f"Load mask selects {len(selected)} of {N_RECORDS} records "
        f"(ratio {len(selected) / N_RECORDS:.3f})"
    )

    start = time.perf_counter()
    decoded = [CODEC.decode_line(lines[i]) for i in selected]
    partial = time.perf_counter() - start
    start = time.perf_counter()
    for line in lines:
        CODEC.decode_line(line)
    full = time.perf_counter() - start
    print(
        f"Decoding selected records: {partial:.2f}s vs full decode "
        f"{full:.2f}s → {full / max(partial, 1e-9):.1f}x loading speedup"
    )

    # One-sided error check against ground truth, for the skeptical.
    for c, bv in zip(PUSHED, vectors):
        semantic = sum(1 for r in records if c.evaluate(r))
        raw = bv.count()
        assert raw >= semantic, "false negative!"
        print(
            f"  {c.sql():<35} semantic={semantic:<6} raw={raw:<6} "
            f"(false positives: {raw - semantic})"
        )


if __name__ == "__main__":
    main()
