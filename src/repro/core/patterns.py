"""Compile SQL predicates into raw pattern strings (paper Table I).

A pattern spec tells a client *what bytes to search for* so a predicate can
be evaluated on serialized JSON without parsing.  The compiler must use the
same string escaping as :mod:`repro.rawjson.writer` — that is what makes a
semantic match always imply a raw match (no false negatives):

====================  ==========================================
Predicate             Pattern string(s)
====================  ==========================================
``name = 'Bob'``      ``"Bob"``            (quoted operand)
``text LIKE '%de%'``  ``de``               (bare operand)
``time LIKE 'a%'``    ``"a``               (opening quote anchors prefix)
``time LIKE '%a'``    ``a"``               (closing quote anchors suffix)
``email != NULL``     ``"email"``          (quoted key)
``age = 10``          ``"age":`` and ``10``  (two-phase window search)
====================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..rawjson import raw_matcher
from ..rawjson.writer import escape_string
from .predicates import Clause, PredicateKind, SimplePredicate


@dataclass(frozen=True)
class PatternSpec:
    """The compiled matchable form of one simple predicate.

    Attributes:
        kind: The predicate family, which selects the matching strategy.
        patterns: One pattern string for the single-search kinds, two
            (key pattern, value pattern) for key-value match.
    """

    kind: PredicateKind
    patterns: Tuple[str, ...]

    def match(self, raw: str) -> bool:
        """Evaluate against one raw JSON record (false positives allowed)."""
        if self.kind is PredicateKind.KEY_VALUE:
            return raw_matcher.key_value_match(
                raw, self.patterns[0], self.patterns[1]
            )
        return raw_matcher.contains(raw, self.patterns[0])

    def searches(self) -> List[str]:
        """The individual substring searches this spec performs.

        The cost model charges one substring-search term per entry.
        """
        return list(self.patterns)

    def total_pattern_length(self) -> int:
        """Σ len over pattern strings — the cost model's ``len(p)``."""
        return sum(len(p) for p in self.patterns)


@dataclass(frozen=True)
class CompiledClause:
    """A clause compiled to pattern specs; matches if any disjunct does.

    The cost of evaluating a disjunction is the sum of its simple-predicate
    costs (paper §V-D): clients must run every disjunct's search because the
    disjunction is true when *any* matches (short-circuiting only helps on
    matches, which the cost model already prices via the selectivity split).
    """

    clause: Clause
    specs: Tuple[PatternSpec, ...]

    def match(self, raw: str) -> bool:
        """Evaluate the disjunction against one raw record."""
        return any(spec.match(raw) for spec in self.specs)

    def matcher(self) -> Callable[[str], bool]:
        """A standalone callable for hot loops (no attribute lookups)."""
        if len(self.specs) == 1:
            spec = self.specs[0]
            if spec.kind is PredicateKind.KEY_VALUE:
                key_pattern, value_pattern = spec.patterns

                def match_key_value(raw: str) -> bool:
                    return raw_matcher.key_value_match(
                        raw, key_pattern, value_pattern
                    )

                return match_key_value
            pattern = spec.patterns[0]

            def match_single(raw: str) -> bool:
                return pattern in raw

            return match_single
        specs = self.specs

        def match_any(raw: str) -> bool:
            return any(spec.match(raw) for spec in specs)

        return match_any

    def total_pattern_length(self) -> int:
        """Σ len over all pattern strings of all disjuncts."""
        return sum(spec.total_pattern_length() for spec in self.specs)

    def search_count(self) -> int:
        """Number of substring searches (startup-cost multiplier)."""
        return sum(len(spec.patterns) for spec in self.specs)


def compile_predicate(predicate: SimplePredicate) -> PatternSpec:
    """Compile one simple predicate per the Table I rules."""
    kind = predicate.kind
    if kind is PredicateKind.EXACT:
        operand = escape_string(predicate.value)
        return PatternSpec(kind, (f'"{operand}"',))
    if kind is PredicateKind.SUBSTRING:
        return PatternSpec(kind, (escape_string(predicate.value),))
    if kind is PredicateKind.PREFIX:
        return PatternSpec(kind, ('"' + escape_string(predicate.value),))
    if kind is PredicateKind.SUFFIX:
        return PatternSpec(kind, (escape_string(predicate.value) + '"',))
    if kind is PredicateKind.KEY_PRESENCE:
        return PatternSpec(kind, (f'"{escape_string(predicate.column)}"',))
    if kind is PredicateKind.KEY_VALUE:
        key_pattern = f'"{escape_string(predicate.column)}":'
        if isinstance(predicate.value, bool):
            value_pattern = "true" if predicate.value else "false"
        else:
            value_pattern = str(predicate.value)
        return PatternSpec(kind, (key_pattern, value_pattern))
    raise AssertionError(f"unhandled kind {kind}")


def compile_clause(clause: Clause) -> CompiledClause:
    """Compile every disjunct of *clause*."""
    return CompiledClause(
        clause, tuple(compile_predicate(p) for p in clause.predicates)
    )


def compile_clauses(clauses) -> Dict[Clause, CompiledClause]:
    """Compile a collection of clauses into a lookup table."""
    return {c: compile_clause(c) for c in clauses}
