"""Fault-tolerant serving: retries, heartbeats, exactly-once, recovery.

End-to-end coverage for the robustness contract: a retrying client
backs off through BUSY and retryable errors, reconnects through dead
transports and resumes its ingest stream, the server dedupes replayed
batches through the ingest ledger, idle connections are reaped, and a
served load survives a mid-flight server crash with zero record loss
and byte-identical answers.
"""

import json
import threading
import time

import pytest

from repro.api import CiaoSession, DeploymentConfig
from repro.client.protocol import encode_chunk
from repro.obs.metrics import Metrics
from repro.rawjson import JsonChunk
from repro.recovery import Manifest, RetryPolicy
from repro.service import (
    CiaoService,
    RemoteBusyError,
    RemoteRetryableError,
    RemoteSession,
    canonical_result_bytes,
)
from repro.transport import FaultPlan, SocketChannel, faulty_dialer, wire
from repro.transport.wire import decode_message, encode_message

SQL_COUNT = "SELECT COUNT(*) FROM t"
SQL_GROUP = "SELECT stars, COUNT(*) FROM t GROUP BY stars"


def durable_config(**overrides):
    kwargs = dict(mode="sharded", n_shards=2, shard_mode="thread",
                  seal_interval=2, durable=True)
    kwargs.update(overrides)
    return DeploymentConfig(**kwargs)


def counters(metrics):
    return metrics.snapshot()["counters"]


def canonical_rows(result):
    """Order-normalized answer bytes.

    Chaos schedules legitimately change the sealed-part layout, and
    GROUP BY output order follows it; the robustness contract is about
    the *rows*, so compare them under a canonical order.
    """
    return json.dumps(
        sorted(result.rows, key=lambda row: json.dumps(row, sort_keys=True)),
        sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")


def quick_policy(**overrides):
    kwargs = dict(max_attempts=6, base_delay=0.01, max_delay=0.05,
                  jitter=0.0, seed=0)
    kwargs.update(overrides)
    return RetryPolicy(**kwargs)


@pytest.fixture()
def served(tmp_path):
    session = CiaoSession(data_dir=tmp_path / "served", metrics=Metrics())
    with CiaoService(session) as service:
        yield session, service
    session.close()


def clean_answer(tmp_path, n_records, chunk_size=5):
    """The fault-free baseline bytes for the same records."""
    session = CiaoSession(config=durable_config(),
                          data_dir=tmp_path / "clean")
    with CiaoService(session) as service:
        remote = RemoteSession(address=service.address, client_id="c1",
                               chunk_size=chunk_size)
        remote.load("yelp", n_records=n_records, source_id="s1")
        remote.commit()
        answer = canonical_rows(remote.query(SQL_GROUP))
        remote.close()
    session.close()
    return answer


class TestRetryMechanics:
    def _flaky(self, remote, failures):
        """Make the next requests fail with *failures*, then recover."""
        real = remote._request_once
        queue = list(failures)

        def request_once(*args, **kwargs):
            if queue:
                raise queue.pop(0)
            return real(*args, **kwargs)

        remote._request_once = request_once

    def test_busy_backs_off_then_succeeds(self, served):
        _, service = served
        metrics = Metrics()
        remote = RemoteSession(address=service.address,
                               retry=quick_policy(), metrics=metrics)
        pauses = []
        remote._sleep = pauses.append
        self._flaky(remote, [RemoteBusyError("full"),
                             RemoteBusyError("full")])
        assert remote.ping() is True
        assert counters(metrics)["admission.busy_retries"] == 2
        assert counters(metrics)["retry.giveups"] == 0
        assert pauses, "a BUSY retry must wait, not hammer"
        remote.close()

    def test_retryable_error_is_resent(self, served):
        _, service = served
        metrics = Metrics()
        remote = RemoteSession(address=service.address,
                               retry=quick_policy(), metrics=metrics)
        remote._sleep = lambda _pause: None
        self._flaky(remote, [RemoteRetryableError("crc mismatch")])
        assert remote.ping() is True
        assert counters(metrics)["retry.attempts"] == 1
        remote.close()

    def test_bounded_attempts_then_give_up(self, served):
        _, service = served
        metrics = Metrics()
        remote = RemoteSession(address=service.address,
                               retry=quick_policy(max_attempts=3),
                               metrics=metrics)
        remote._sleep = lambda _pause: None
        self._flaky(remote, [RemoteBusyError("full")] * 99)
        with pytest.raises(RemoteBusyError):
            remote.ping()
        assert counters(metrics)["retry.giveups"] == 1
        assert counters(metrics)["admission.busy_retries"] == 3

    def test_no_policy_means_no_retry(self, served):
        _, service = served
        remote = RemoteSession(address=service.address)
        self._flaky(remote, [RemoteRetryableError("crc mismatch")])
        with pytest.raises(RemoteRetryableError):
            remote.ping()
        remote.close()

    def test_dead_channel_triggers_reconnect(self, served):
        _, service = served
        metrics = Metrics()
        remote = RemoteSession(
            channel_factory=lambda: SocketChannel.connect(service.address),
            retry=quick_policy(), metrics=metrics,
        )
        remote.channel.close()  # yank the transport out from under it
        assert remote.ping() is True
        assert counters(metrics)["retry.reconnects"] >= 1
        remote.close()


class TestHeartbeat:
    def test_ping_pong(self, served):
        session, service = served
        remote = RemoteSession(address=service.address)
        assert remote.ping() is True
        assert counters(session.obs_metrics)["heartbeat.pings"] == 1
        remote.close()

    def test_idle_connection_is_reaped(self, tmp_path):
        session = CiaoSession(data_dir=tmp_path / "srv",
                              metrics=Metrics())
        with CiaoService(session, idle_timeout=0.2) as service:
            remote = RemoteSession(address=service.address)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if counters(session.obs_metrics).get(
                        "heartbeat.idle_reaped", 0):
                    break
                time.sleep(0.05)
            assert counters(session.obs_metrics)[
                "heartbeat.idle_reaped"] >= 1
            remote.channel.close()
        session.close()

    def test_stats_expose_liveness_and_recovery(self, tmp_path):
        session = CiaoSession(config=durable_config(),
                              data_dir=tmp_path / "srv")
        with CiaoService(session, idle_timeout=7.5,
                         checkpoint_every=3) as service:
            remote = RemoteSession(address=service.address, client_id="c1")
            remote.load("yelp", n_records=40, source_id="s1")
            remote.commit()
            stats = service.stats()
            assert stats["heartbeat"]["idle_timeout"] == 7.5
            assert stats["recovery"]["durable"] is True
            assert stats["recovery"]["checkpoint_every"] == 3
            assert stats["recovery"]["ledger_streams"] == 1
            assert stats["recovery"]["manifest_revision"] >= 1
            remote.close()
        session.close()


class TestExactlyOnce:
    """Wire-level dedupe: crafted frames against a live service."""

    @pytest.fixture()
    def durable_served(self, tmp_path):
        session = CiaoSession(config=durable_config(),
                              data_dir=tmp_path / "srv",
                              metrics=Metrics())
        with CiaoService(session) as service:
            yield session, service
        session.close()

    def _rpc(self, channel, tag, header=None, body=b""):
        channel.send(encode_message(tag, header or {}, body))
        reply = channel.receive_wait(5.0)
        assert reply is not None, "service went silent"
        return decode_message(reply)

    def _chunk_body(self, chunk_id):
        return encode_chunk(JsonChunk(
            chunk_id=chunk_id,
            records=[json.dumps({"stars": chunk_id % 5, "n": chunk_id})],
        ))

    def test_replayed_batch_is_deduped(self, durable_served):
        session, service = durable_served
        channel = SocketChannel.connect(service.address)
        self._rpc(channel, wire.HELLO, {
            "client_id": "c1", "protocol": wire.PROTOCOL_VERSION,
        })
        self._rpc(channel, wire.RESUME, {"source_id": "s1"})
        body = self._chunk_body(1)
        header = {"frames": 1, "seq": 1, "source_id": "s1"}
        wire.attach_crc(header, body)
        first = self._rpc(channel, wire.CHUNKS, dict(header), body)
        assert first.tag == wire.INGEST_ACK
        assert first.header["duplicate"] is False
        # The ack was "lost"; the client replays the same sequence.
        second = self._rpc(channel, wire.CHUNKS, dict(header), body)
        assert second.tag == wire.INGEST_ACK
        assert second.header["duplicate"] is True
        assert second.header["frames_accepted"] == 1  # acked, not applied
        assert counters(session.obs_metrics)[
            "recovery.duplicates_dropped"] == 1
        channel.close()

    def test_corrupted_batch_is_rejected_retryably(self, durable_served):
        session, service = durable_served
        channel = SocketChannel.connect(service.address)
        self._rpc(channel, wire.HELLO, {
            "client_id": "c1", "protocol": wire.PROTOCOL_VERSION,
        })
        self._rpc(channel, wire.RESUME, {"source_id": "s1"})
        body = self._chunk_body(1)
        header = {"frames": 1, "seq": 1, "source_id": "s1",
                  "crc": 12345}  # wrong on purpose
        reply = self._rpc(channel, wire.CHUNKS, header, body)
        assert reply.tag == wire.ERROR
        assert reply.header["retryable"] is True
        assert counters(session.obs_metrics)["recovery.crc_rejects"] == 1
        # The stream is still usable: fix the crc and the batch lands.
        wire.attach_crc(header, body)
        ack = self._rpc(channel, wire.CHUNKS, header, body)
        assert ack.tag == wire.INGEST_ACK
        channel.close()


class TestChaosEndToEnd:
    def test_seeded_faults_lose_nothing(self, tmp_path):
        n_records = 150
        baseline = clean_answer(tmp_path, n_records)
        plan = FaultPlan.generate(seed=1, n_ops=400, fault_rate=0.25)
        metrics = Metrics()
        session = CiaoSession(config=durable_config(),
                              data_dir=tmp_path / "chaos")
        with CiaoService(session, checkpoint_every=5,
                         idle_timeout=60.0) as service:
            dial, counter = faulty_dialer(
                lambda: SocketChannel.connect(service.address), plan,
            )
            remote = RemoteSession(
                channel_factory=dial, client_id="c1", chunk_size=5,
                retry=RetryPolicy(max_attempts=10, base_delay=0.01,
                                  max_delay=0.05, seed=1),
                timeout=1.0, metrics=metrics,
            )
            remote.load("yelp", n_records=n_records, source_id="s1",
                        batch_size=1)
            remote.commit()
            answer = canonical_rows(remote.query(SQL_GROUP))
            count = remote.query(SQL_COUNT).rows[0]["count(*)"]
            remote.close()
        faults_hit = sum(
            1 for event in plan.events if event.op < counter.value
        )
        assert faults_hit >= 1, "schedule never fired; test proves nothing"
        assert count == n_records  # zero loss, zero duplicates
        assert answer == baseline  # byte-identical to the clean run
        session.close()

    def test_server_crash_midload_recovers_and_finishes(self, tmp_path):
        n_records = 150
        baseline = clean_answer(tmp_path, n_records)
        data_dir = tmp_path / "crashy"
        session = CiaoSession(config=durable_config(), data_dir=data_dir)
        service = CiaoService(session, checkpoint_every=1,
                              idle_timeout=60.0)
        address = {"current": service.address}
        metrics = Metrics()
        remote = RemoteSession(
            channel_factory=lambda: SocketChannel.connect(
                address["current"]),
            client_id="c1", chunk_size=5,
            retry=RetryPolicy(max_attempts=30, base_delay=0.02,
                              max_delay=0.2, seed=0),
            timeout=2.0, metrics=metrics,
        )
        outcome = {}

        def run_load():
            outcome["accepted"] = remote.load(
                "yelp", n_records=n_records, source_id="s1", batch_size=1,
            )

        loader = threading.Thread(target=run_load)
        loader.start()

        # Wait until a healthy chunk of the load is durable...
        manifest_path = Manifest.path_for(data_dir / "load-0", "t")
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if manifest_path.exists():
                _, doc = Manifest.load(manifest_path)
                if doc["revision"] >= 10:
                    break
            time.sleep(0.01)
        else:
            pytest.fail("load never reached a durable midpoint")

        # ... then kill the serving stack mid-flight.  The session is
        # abandoned un-finalized: everything past the last checkpoint
        # is gone, exactly like a kill -9.
        service.close()
        recovered = CiaoSession(recover_from=data_dir, metrics=Metrics())
        service2 = CiaoService(recovered, checkpoint_every=1,
                               idle_timeout=60.0)
        address["current"] = service2.address

        loader.join(timeout=60.0)
        assert not loader.is_alive(), "client never finished the load"
        assert outcome["accepted"] > 0
        report = remote.commit()
        assert report["received"] == n_records  # exactly once, end to end
        answer = canonical_rows(remote.query(SQL_GROUP))
        count = remote.query(SQL_COUNT).rows[0]["count(*)"]
        remote.close()
        assert count == n_records
        assert answer == baseline
        assert counters(metrics)["retry.reconnects"] >= 1
        assert counters(recovered.obs_metrics)["recovery.resumes"] >= 1
        service2.close()
        recovered.close()
