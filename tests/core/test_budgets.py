"""Unit tests for budgets and multi-client budget allocation."""

import pytest

from repro.core import Budget, ClientProfile, allocate_budgets, budget_sweep


class TestBudget:
    def test_value_and_str(self):
        budget = Budget(1.5)
        assert budget.us == 1.5
        assert "1.5" in str(budget)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Budget(-0.1)

    def test_scaled(self):
        assert Budget(2.0).scaled(0.5).us == 1.0
        with pytest.raises(ValueError):
            Budget(1.0).scaled(-1)

    def test_sweep(self):
        budgets = budget_sweep([0, 1, 3])
        assert [b.us for b in budgets] == [0, 1, 3]


class TestAllocation:
    def test_uniform_clients_share_equally(self):
        clients = [ClientProfile(f"c{i}") for i in range(4)]
        allocation = allocate_budgets(clients, Budget(2.0))
        assert all(b.us == pytest.approx(2.0) for b in allocation.values())

    def test_total_budget_preserved(self):
        clients = [
            ClientProfile("fast", speed_factor=2.0),
            ClientProfile("slow", speed_factor=0.5),
        ]
        allocation = allocate_budgets(clients, Budget(3.0))
        assert sum(b.us for b in allocation.values()) == pytest.approx(6.0)

    def test_faster_clients_get_more(self):
        clients = [
            ClientProfile("fast", speed_factor=2.0),
            ClientProfile("slow", speed_factor=0.5),
        ]
        allocation = allocate_budgets(clients, Budget(3.0))
        assert allocation["fast"].us > allocation["slow"].us
        assert allocation["fast"].us / allocation["slow"].us == \
            pytest.approx(4.0)

    def test_slack_caps_respected_and_redistributed(self):
        clients = [
            ClientProfile("capped", slack_us_per_record=0.5),
            ClientProfile("open"),
        ]
        allocation = allocate_budgets(clients, Budget(2.0))
        assert allocation["capped"].us == pytest.approx(0.5)
        # The capped client's unusable share flows to the open one.
        assert allocation["open"].us == pytest.approx(3.5)

    def test_everyone_capped_drops_leftover(self):
        clients = [
            ClientProfile("a", slack_us_per_record=0.25),
            ClientProfile("b", slack_us_per_record=0.25),
        ]
        allocation = allocate_budgets(clients, Budget(10.0))
        assert allocation["a"].us == pytest.approx(0.25)
        assert allocation["b"].us == pytest.approx(0.25)

    def test_duplicate_ids_rejected(self):
        clients = [ClientProfile("x"), ClientProfile("x")]
        with pytest.raises(ValueError):
            allocate_budgets(clients, Budget(1.0))

    def test_empty_client_list_rejected(self):
        with pytest.raises(ValueError):
            allocate_budgets([], Budget(1.0))

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ClientProfile("c", speed_factor=0)
        with pytest.raises(ValueError):
            ClientProfile("c", slack_us_per_record=-1)
