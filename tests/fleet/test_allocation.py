"""Unit tests for per-client budget allocation and re-allocation."""

import pytest

from repro.core import (
    Budget,
    CiaoOptimizer,
    ClientProfile,
    CostModel,
    DEFAULT_COEFFICIENTS,
    observed_speed_factors,
)
from repro.fleet import FleetBudgetAllocator, uniform_allocation


@pytest.fixture()
def global_plan(tiny_optimizer):
    return tiny_optimizer.plan(Budget(50.0))


PROFILES = [
    ClientProfile("fast", speed_factor=2.0),
    ClientProfile("mid", speed_factor=1.0),
    ClientProfile("slow", speed_factor=0.4),
]


class TestAllocate:
    def test_faster_clients_get_larger_budgets(self, global_plan):
        allocator = FleetBudgetAllocator(global_plan, Budget(10.0))
        allocation = allocator.allocate(PROFILES)
        assert (allocation.budgets["fast"].us
                > allocation.budgets["mid"].us
                > allocation.budgets["slow"].us)

    def test_plans_are_prefixes_with_stable_ids(self, global_plan):
        allocator = FleetBudgetAllocator(global_plan, Budget(10.0))
        allocation = allocator.allocate(PROFILES)
        for plan in allocation.plans.values():
            for entry, original in zip(plan.entries, global_plan.entries):
                assert entry.predicate_id == original.predicate_id
                assert entry.clause == original.clause

    def test_plan_fits_allocated_budget(self, global_plan):
        allocator = FleetBudgetAllocator(global_plan, Budget(10.0))
        allocation = allocator.allocate(PROFILES)
        for cid, plan in allocation.plans.items():
            assert plan.total_cost_us() <= allocation.budgets[cid].us + 1e-9
            assert allocation.utilization(cid) <= 1.0 + 1e-9

    def test_slack_cap_respected(self, global_plan):
        capped = [
            ClientProfile("capped", speed_factor=2.0,
                          slack_us_per_record=1.0),
            ClientProfile("free", speed_factor=1.0),
        ]
        allocator = FleetBudgetAllocator(global_plan, Budget(10.0))
        allocation = allocator.allocate(capped)
        # Budget is modeled µs = slack (own µs) × speed.
        assert allocation.budgets["capped"].us <= 2.0 + 1e-9
        assert allocation.round == 0

    def test_rounds_increment(self, global_plan):
        allocator = FleetBudgetAllocator(global_plan, Budget(5.0))
        assert allocator.allocate(PROFILES).round == 0
        assert allocator.allocate(PROFILES).round == 1


class TestReallocate:
    def test_dead_clients_drop_out(self, global_plan):
        allocator = FleetBudgetAllocator(global_plan, Budget(10.0))
        allocation = allocator.reallocate(
            PROFILES, {"fast": 100.0, "mid": 50.0}
        )
        assert "slow" not in allocation.budgets
        assert set(allocation.plans) == {"fast", "mid"}

    def test_observation_shifts_allocation(self, global_plan):
        allocator = FleetBudgetAllocator(global_plan, Budget(10.0))
        # "slow" turns out to be the fastest device in practice.
        allocation = allocator.reallocate(
            PROFILES, {"fast": 10.0, "mid": 10.0, "slow": 1000.0},
            blend=1.0,
        )
        assert (allocation.budgets["slow"].us
                > allocation.budgets["fast"].us)

    def test_no_survivors_raises(self, global_plan):
        allocator = FleetBudgetAllocator(global_plan, Budget(10.0))
        with pytest.raises(ValueError):
            allocator.reallocate(PROFILES, {})


class TestObservedSpeedFactors:
    def test_normalized_to_unit_mean(self):
        factors = observed_speed_factors({"a": 10.0, "b": 30.0})
        assert (factors["a"] + factors["b"]) / 2 == pytest.approx(1.0)
        assert factors["b"] == pytest.approx(3 * factors["a"])

    def test_unobserved_client_gets_mean(self):
        factors = observed_speed_factors({"a": 10.0, "b": 0.0})
        assert factors["b"] == pytest.approx(1.0)

    def test_all_unobserved_is_nominal(self):
        factors = observed_speed_factors({"a": 0.0, "b": 0.0})
        assert factors == {"a": 1.0, "b": 1.0}

    def test_prior_blending(self):
        factors = observed_speed_factors(
            {"a": 10.0, "b": 10.0}, prior={"a": 3.0, "b": 1.0},
            blend=0.5,
        )
        # Observation says both are equal, at the prior's mean scale
        # (2.0); blend pulls each halfway from its prior toward that.
        assert factors["a"] == pytest.approx(2.5)
        assert factors["b"] == pytest.approx(1.5)

    def test_uniform_fleet_keeps_absolute_scale(self):
        """Slack caps depend on absolute factors: a uniformly slow fleet
        must not drift toward nominal across realloc rounds."""
        factors = {"a": 0.5, "b": 0.5}
        for _ in range(5):
            factors = observed_speed_factors(
                {"a": 10.0, "b": 10.0}, prior=factors, blend=0.5
            )
        assert factors["a"] == pytest.approx(0.5)
        assert factors["b"] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            observed_speed_factors({})
        with pytest.raises(ValueError):
            observed_speed_factors({"a": 1.0}, blend=1.5)


class TestUniformAllocation:
    def test_everyone_gets_the_global_plan(self, global_plan):
        allocation = uniform_allocation(global_plan, ["a", "b"])
        assert allocation.plans == {"a": global_plan, "b": global_plan}
        assert allocation.pushed("a") == len(global_plan)

    def test_none_plan(self):
        allocation = uniform_allocation(None, ["a"])
        assert allocation.plans["a"] is None
        assert allocation.budgets["a"].us == 0
