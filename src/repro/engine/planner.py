"""Query planning: when and how to use CIAO's bit-vector skipping.

The decision procedure (paper §VI-B):

1. Extract the query's top-level conjuncts and convert each supported one
   into a :class:`~repro.core.predicates.Clause`.
2. Look the clauses up in the table's pushdown map.  Every match yields a
   predicate id.
3. If at least one conjunct matched, scan **only the Parquet-lite files**,
   with a :class:`SkippingScan` over the matched ids — the sideline cannot
   contain qualifying tuples, because a sidelined record is invalid for
   every pushed predicate, in particular the matched one.
4. Otherwise scan Parquet-lite *and* the sideline (just-in-time parsing).
5. In all cases the full WHERE expression is re-applied above the scan
   (false positives; and the bit-vector only covers matched conjuncts).

Additionally every Parquet-lite scan carries a **zone-map pruning hook**
(:mod:`repro.engine.zonemaps`): row groups whose min/max statistics prove
the WHERE clause unsatisfiable are skipped without decoding — this covers
range and inequality predicates that CIAO cannot push to clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from .catalog import TableEntry
from .expressions import Expr, conjuncts, to_clause
from .operators import (
    Aggregate,
    ChainScan,
    Filter,
    GroupedAggregate,
    Limit,
    Operator,
    ParquetScan,
    Project,
    SidelineScan,
    SkippingScan,
)
from .sql import ParsedQuery, SelectItem
from .zonemaps import expr_prunes_group


@dataclass
class PlanInfo:
    """What the planner decided, for reporting and tests."""

    matched_predicate_ids: List[int] = field(default_factory=list)
    used_skipping: bool = False
    uses_zonemaps: bool = False
    scans_sideline: bool = False
    description: str = ""
    #: Incremental snapshot-scan cache accounting (mid-load aggregate
    #: queries only): sealed parts answered from cached partial
    #: aggregates vs. parts actually scanned this execution.
    snapshot_cache_hits: int = 0
    snapshot_cache_misses: int = 0


class PlannerError(ValueError):
    """Query shape the engine cannot plan."""


def zone_prune_hook(where: Optional[Expr]) -> Optional[Callable]:
    """The zone-map pruning callable for a WHERE clause (None when the
    query has no predicate to prune against)."""
    if where is None:
        return None

    def prune(meta, _where=where):
        return expr_prunes_group(_where, meta)

    return prune


def plan_query(parsed: ParsedQuery, table: TableEntry
               ) -> Tuple[Operator, PlanInfo]:
    """Build the operator tree for *parsed* against *table*."""
    info = PlanInfo()
    matched_ids = match_pushdown(parsed.where, table)
    info.matched_predicate_ids = matched_ids

    readers = table.open_readers()
    scan_columns = scan_columns_for(parsed)
    prune = zone_prune_hook(parsed.where)
    if prune is not None:
        info.uses_zonemaps = True

    scans: List[Operator] = []
    if matched_ids:
        info.used_skipping = True
        for reader in readers:
            scans.append(SkippingScan(reader, matched_ids,
                                      columns=scan_columns, prune=prune))
    else:
        for reader in readers:
            scans.append(ParquetScan(reader, columns=scan_columns,
                                     prune=prune))
        if table.has_sideline:
            info.scans_sideline = True
            scans.append(SidelineScan(table.scan_side_store))
    if not scans:
        # Empty table: an empty parquet scan equivalent.
        scans.append(_EmptyScan())

    plan: Operator = scans[0] if len(scans) == 1 else ChainScan(scans)
    if parsed.where is not None:
        plan = Filter(plan, parsed.where)
    plan = _projection(plan, parsed)
    if parsed.limit is not None:
        plan = Limit(plan, parsed.limit)
    info.description = plan.describe()
    return plan, info


def match_pushdown(where: Optional[Expr], table: TableEntry) -> List[int]:
    """Predicate ids for the query's pushed-down conjuncts."""
    if where is None or not table.pushdown:
        return []
    ids: List[int] = []
    for conjunct in conjuncts(where):
        clause = to_clause(conjunct)
        if clause is None:
            continue
        pid = table.pushed_id(clause)
        if pid is not None:
            ids.append(pid)
    return sorted(set(ids))


def scan_columns_for(parsed: ParsedQuery) -> Optional[Sequence[str]]:
    """Columns the scan must decode, or None for SELECT * shapes.

    COUNT(*)-only queries still need the WHERE columns; projection pushdown
    is what makes columnar scans cheap.
    """
    needed = set(parsed.group_by)
    for item in parsed.select:
        if item.column == "*":
            if item.aggregate is None:
                return None  # SELECT *: all columns
            continue  # COUNT(*): no data column needed
        needed.add(item.column)
    if parsed.where is not None:
        needed |= parsed.where.columns()
    return sorted(needed) if needed else []


def _projection(plan: Operator, parsed: ParsedQuery) -> Operator:
    if parsed.group_by:
        bad = [
            item.column for item in parsed.select
            if item.aggregate is None and item.column not in parsed.group_by
        ]
        if bad:
            raise PlannerError(
                f"columns {bad} appear in SELECT but are neither "
                f"aggregated nor in GROUP BY"
            )
        return GroupedAggregate(plan, parsed.group_by, parsed.select)
    if parsed.is_aggregate:
        bare = [item for item in parsed.select if item.aggregate is None]
        if bare:
            raise PlannerError(
                "mixing aggregates and bare columns requires GROUP BY"
            )
        return Aggregate(plan, parsed.select)
    if len(parsed.select) == 1 and parsed.select[0].column == "*":
        return plan
    return Project(plan, [item.column for item in parsed.select])


class _EmptyScan(Operator):
    """Zero-row scan for empty tables."""

    def batches(self, stats):
        return iter(())

    def execute(self, stats):
        return iter(())

    def describe(self) -> str:
        return "EmptyScan"
