"""RemoteSession: the client half of the service conversation.

A :class:`RemoteSession` talks to a :class:`~repro.service.service.CiaoService`
over any :class:`~repro.transport.base.Channel` — normally a
:class:`~repro.transport.sockets.SocketChannel` dialed from an address,
but an explicitly constructed channel (including one wrapped in
Lossy/Latency/Faulty decorators) can be injected for fault-injection
tests.

The surface mirrors the in-process session: fetch the pushdown plan,
:meth:`load` a source (client-side filtering runs *here*, on this
process's :class:`~repro.client.device.SimulatedClient`, exactly as the
paper's client-assisted design prescribes), :meth:`commit`, and
:meth:`query` — remote results decode into the same
:class:`~repro.engine.executor.QueryResult` dataclasses local execution
returns.

Fault tolerance is opt-in via a :class:`~repro.recovery.RetryPolicy`:
with one, every request retries under a bounded backoff schedule, BUSY
turn-aways back off instead of raising, a dropped connection redials
(``channel_factory`` or the original address) and resumes its ingest
stream with a RESUME handshake, and every CHUNKS batch carries a
monotonic per-``(client_id, source_id)`` sequence number plus a body
crc — the server's ingest ledger dedupes replays, so a retried batch
lands exactly once no matter how many times the wire ate the ack.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..client.device import DEFAULT_SHIP_BATCH, SimulatedClient
from ..client.protocol import encode_frame_batch
from ..core.optimizer import PushdownPlan
from ..core.plan_io import loads_plan
from ..data.randomness import DEFAULT_SEED
from ..engine.executor import QueryResult
from ..obs.metrics import Metrics, resolve_metrics
from ..obs.tracing import Tracer, resolve_tracer
from ..rawjson.chunks import DEFAULT_CHUNK_SIZE
from ..recovery.retry import RetryPolicy
from ..transport.base import Channel, TransportError
from ..transport.sockets import SocketChannel
from ..transport import wire
from ..transport.wire import Message, WireError, encode_message
from .results import result_from_payload


class RemoteError(RuntimeError):
    """The service replied with an error, or the conversation broke."""


class RemoteBusyError(RemoteError):
    """The service is saturated (admission BUSY); back off and retry."""


class RemoteRetryableError(RemoteError):
    """An ERROR reply the service marked safe to retry (e.g. a batch
    that failed its crc check in flight)."""


class RemoteTimeoutError(RemoteError):
    """No reply arrived within the session timeout; the connection's
    state is unknown, so a retrying session redials before resending."""


class RemoteSession:
    """A client-side session speaking the service wire protocol.

    Args:
        address: ``(host, port)`` of a running service; a fresh
            :class:`SocketChannel` is dialed (and redialed after a
            drop, when a *retry* policy is set).  Mutually exclusive
            with *channel* and *channel_factory*.
        channel: An already-open channel to converse over — inject a
            decorated (lossy/latent/faulty) channel here for fault
            testing.  A session built this way cannot reconnect.
        channel_factory: A zero-argument callable dialing a fresh
            channel; called once at construction and again on every
            reconnect.  This is how chaos tests compose
            :func:`repro.transport.faults.faulty_dialer` with a real
            socket service.
        client_id: Identity used for admission fairness, ingest-ledger
            keying, and default ingest source ids.
        chunk_size: Records per chunk for :meth:`load`'s client.
        timeout: Per-reply wait; ``None`` waits forever.
        tracer: A :class:`repro.obs.Tracer`.  When given, every
            :meth:`query`/:meth:`snapshot_query` opens a client-side
            span, propagates its context in the wire header, and adopts
            the server-side spans shipped back in the RESULT reply — one
            exported trace spans both processes.
        metrics: A :class:`repro.obs.Metrics` registry for the dialed
            socket's byte/frame counters and this session's retry
            counters (``retry.attempts``, ``retry.reconnects``,
            ``retry.giveups``, ``admission.busy_retries``).
        retry: A :class:`~repro.recovery.RetryPolicy`; ``None`` (the
            default) keeps the legacy fail-fast behavior — every
            transport hiccup or BUSY raises immediately.
        recv_deadline: Passed through to dialed sockets: the hard bound
            on peer silence inside one receive before
            :class:`~repro.transport.base.ChannelTimeout` (see
            :class:`~repro.transport.sockets.SocketChannel`).

    The constructor performs the HELLO/WELCOME handshake, so a
    constructed session is known-good.  Context-manager friendly.
    """

    #: Failures a retrying session treats as transient.
    _RETRYABLE = (TransportError, WireError, RemoteRetryableError,
                  RemoteTimeoutError)

    def __init__(self, address: Optional[Tuple[str, int]] = None, *,
                 channel: Optional[Channel] = None,
                 channel_factory: Optional[Callable[[], Channel]] = None,
                 client_id: str = "remote-client",
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 seed: int = DEFAULT_SEED,
                 timeout: Optional[float] = 30.0,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[Metrics] = None,
                 retry: Optional[RetryPolicy] = None,
                 recv_deadline: Optional[float] = None):
        given = [address is not None, channel is not None,
                 channel_factory is not None]
        if sum(given) != 1:
            raise ValueError(
                "pass exactly one of address=(host, port), channel=, "
                "or channel_factory="
            )
        if address is not None:
            def channel_factory() -> Channel:
                return SocketChannel.connect(
                    address, metrics=metrics, recv_deadline=recv_deadline,
                )
        if channel is None:
            channel = channel_factory()
        self.channel = channel
        self.tracer = resolve_tracer(tracer)
        self.client_id = client_id
        self.chunk_size = chunk_size
        self.seed = seed
        self.timeout = timeout
        self.retry = retry
        self.last_client: Optional[SimulatedClient] = None
        self._channel_factory = channel_factory
        self._closed = False
        #: Injectable pause, so tests assert schedules without sleeping.
        self._sleep: Callable[[float], None] = time.sleep
        registry = resolve_metrics(metrics)
        self._m_attempts = registry.counter("retry.attempts")
        self._m_reconnects = registry.counter("retry.reconnects")
        self._m_giveups = registry.counter("retry.giveups")
        self._m_busy_retries = registry.counter("admission.busy_retries")
        # Exactly-once ingest state: the next sequence number per
        # source stream, and (retrying sessions only) the unacked tail
        # kept for replay after a reconnect, pruned to the server's
        # durable watermark.
        self._seqs: Dict[str, int] = {}
        self._sent: Dict[int, Tuple[int, bytes, Dict[str, Any]]] = {}
        self._source_id: Optional[str] = None
        self._ingest_active = False
        self._ingest_ended = False
        # True once the *current* channel has completed its handshake
        # and (if an ingest stream is open) its RESUME replay.  The
        # constructor's own channel starts ready: its HELLO below is
        # the handshake.
        self._session_ready = True
        welcome = self._request(wire.HELLO, {
            "client_id": client_id,
            "protocol": wire.PROTOCOL_VERSION,
        }, expect=wire.WELCOME)
        self.server_mode: str = str(welcome.header.get("mode", ""))

    # ------------------------------------------------------------------
    def _request_once(self, tag: int,
                      header: Optional[Dict[str, Any]] = None,
                      body: bytes = b"",
                      expect: Optional[int] = None) -> Message:
        """Send one message and wait for the service's reply."""
        if self._closed:
            raise RemoteError("session is closed")
        self.channel.send(encode_message(tag, header or {}, body))
        payload = self.channel.receive_wait(self.timeout)
        if payload is None:
            raise RemoteTimeoutError(
                f"no reply to {wire.tag_name(tag)} within "
                f"{self.timeout} s (connection "
                f"{'closed' if self.channel.closed else 'idle'})"
            )
        reply = wire.decode_message(payload)
        if reply.tag == wire.BUSY:
            raise RemoteBusyError(
                reply.header.get("error", "service saturated")
            )
        if reply.tag == wire.ERROR:
            error = reply.header.get("error", "unspecified service error")
            if reply.header.get("retryable"):
                raise RemoteRetryableError(error)
            raise RemoteError(error)
        if expect is not None and reply.tag != expect:
            raise RemoteError(
                f"expected {wire.tag_name(expect)} in reply to "
                f"{wire.tag_name(tag)}, got {reply.name}"
            )
        return reply

    def _request(self, tag: int, header: Optional[Dict[str, Any]] = None,
                 body: bytes = b"",
                 expect: Optional[int] = None) -> Message:
        """One request under the session's retry policy (if any).

        Without a policy this is exactly :meth:`_request_once`.  With
        one, transient failures (transport drops, timeouts, retryable
        ERROR replies, BUSY) are retried on the policy's bounded
        backoff schedule; a drop closes the channel so the next attempt
        redials and resumes any open ingest stream first.
        """
        policy = self.retry
        if policy is None:
            return self._request_once(tag, header, body, expect)
        op_deadline = (
            time.monotonic() + policy.deadline
            if policy.deadline is not None else None
        )
        last_exc: Optional[Exception] = None
        for attempt, pause in enumerate(policy.pauses()):
            if pause > 0.0:
                if (op_deadline is not None
                        and time.monotonic() + pause >= op_deadline):
                    break
                self._sleep(pause)
            if attempt > 0:
                self._m_attempts.inc()
            try:
                self._ensure_connected()
                return self._request_once(tag, header, body, expect)
            except RemoteBusyError as exc:
                last_exc = exc
                self._m_busy_retries.inc()
            except self._RETRYABLE as exc:
                last_exc = exc
                if isinstance(exc, (TransportError, RemoteTimeoutError)):
                    # The conversation's state is unknown; drop the
                    # channel so the next attempt redials cleanly.
                    self.channel.close()
        self._m_giveups.inc()
        assert last_exc is not None
        raise last_exc

    # ------------------------------------------------------------------
    # Reconnect and resume
    # ------------------------------------------------------------------
    def _ensure_connected(self) -> None:
        """Redial, re-handshake, and resume ingest after a drop.

        Readiness is tracked separately from the channel being open: a
        handshake or RESUME that failed with a *retryable* error leaves
        the channel up but the conversation unestablished, and the next
        attempt must finish establishing it before resending the
        caller's request.
        """
        if self.channel.closed:
            if self._channel_factory is None:
                raise RemoteError(
                    "connection lost and this session has no way to "
                    "redial; construct with address= or "
                    "channel_factory= to enable reconnects"
                )
            try:
                self.channel = self._channel_factory()
            except OSError as exc:
                raise TransportError(f"redial failed: {exc}") from exc
            self._m_reconnects.inc()
            self._session_ready = False
        if self._session_ready:
            return
        self._handshake()
        self._resume_ingest()
        self._session_ready = True

    def _handshake(self) -> None:
        welcome = self._request_once(wire.HELLO, {
            "client_id": self.client_id,
            "protocol": wire.PROTOCOL_VERSION,
        }, expect=wire.WELCOME)
        self.server_mode = str(welcome.header.get("mode", ""))

    def _resume_ingest(self) -> None:
        """Replay the unacked ingest tail on a fresh connection.

        RESUME tells us the server's last applied sequence for this
        stream; everything after it in the replay buffer is resent (a
        batch the server did apply but whose ack we lost dedupes
        against the ledger).  If the load finalized while we were away
        there is nothing to feed — the buffered tail was already
        committed or never will be, and :meth:`commit` reports which.
        """
        source_id = self._source_id
        if source_id is None or not self._ingest_active:
            return
        reply = self._request_once(
            wire.RESUME, {"source_id": source_id}, expect=wire.RESUME,
        )
        if reply.header.get("finalized"):
            self._sent.clear()
            self._ingest_active = False
            return
        last = int(reply.header.get("last_seq", 0))
        for seq in sorted(self._sent):
            entry = self._sent.get(seq)
            if entry is None or seq <= last:
                continue
            _, body, header = entry
            ack = self._request_once(
                wire.CHUNKS, dict(header), body, expect=wire.INGEST_ACK,
            )
            self._prune(ack)
        if self._ingest_ended:
            self._request_once(wire.END_INGEST, {}, expect=wire.INGEST_ACK)

    def _prune(self, reply: Message) -> None:
        """Drop replay-buffer entries the server has made durable."""
        durable = reply.header.get("durable_seq")
        if isinstance(durable, bool) or not isinstance(durable, int):
            return
        for seq in [s for s in self._sent if s <= durable]:
            del self._sent[seq]

    # ------------------------------------------------------------------
    def fetch_plan(self) -> Optional[PushdownPlan]:
        """The service's pushdown plan (``None`` if it has none)."""
        reply = self._request(wire.GET_PLAN, expect=wire.PLAN)
        if not reply.header.get("present"):
            return None
        return loads_plan(reply.body.decode("utf-8"))

    def load(self, source, *, n_records: Optional[int] = None,
             source_id: Optional[str] = None,
             batch_size: int = DEFAULT_SHIP_BATCH) -> int:
        """Client-filter *source* and stream its chunks to the service.

        Fetches the plan, runs this process's
        :class:`~repro.client.device.SimulatedClient` over the records
        (predicate bit-vectors computed client-side), and ships encoded
        chunk frames in batches of *batch_size* per CHUNKS message —
        every batch is acknowledged, so a returned count is a received
        count.  Returns the number of chunk frames the service accepted.

        Call :meth:`commit` (after all participating clients finish) to
        seal the load; on streaming deployments, :meth:`snapshot_query`
        works before the commit.
        """
        # Imported here (not at module top): source coercion pulls in the
        # api layer, which imports transport; keep the client-facing
        # entry lazy so service/* never creates an import cycle.
        from ..api.source import as_source

        src = as_source(source, seed=self.seed, n_records=n_records)
        plan = self.fetch_plan()
        client = SimulatedClient(self.client_id, plan, self.chunk_size)
        self.last_client = client
        self._open_ingest(source_id or self.client_id)
        accepted = 0
        pending: List[Any] = []
        for chunk in client.process(src.records()):
            pending.append(chunk)
            if len(pending) >= batch_size:
                accepted += self._ship(pending)
                pending = []
        if pending:
            accepted += self._ship(pending)
        self._end_ingest()
        return accepted

    def _open_ingest(self, source_id: str) -> None:
        """Open (retrying: resume) the ingest stream *source_id*.

        A retrying session opens with RESUME rather than OPEN_INGEST —
        the two differ exactly in their retry safety: a replayed
        OPEN_INGEST trips the "already open" guard, a replayed RESUME
        re-adopts the same stream.  The reply's watermark seeds the
        sequence counter, so rejoining an existing stream continues it
        instead of colliding with it.
        """
        self._source_id = source_id
        self._ingest_active = True
        self._ingest_ended = False
        self._sent.clear()
        if self.retry is None:
            self._request(wire.OPEN_INGEST, {"source_id": source_id},
                          expect=wire.INGEST_ACK)
            return
        reply = self._request(wire.RESUME, {"source_id": source_id},
                              expect=wire.RESUME)
        last = int(reply.header.get("last_seq", 0))
        self._seqs[source_id] = max(self._seqs.get(source_id, 0), last)

    def _ship(self, chunks) -> int:
        """Send one CHUNKS batch; returns the acknowledged frame count.

        Every batch carries its stream sequence number and a body crc;
        retrying sessions additionally buffer it until the server
        reports it durable (the ``durable_seq`` ack field), bounding
        replay to the tail a crash can actually lose.
        """
        source_id = self._source_id
        assert source_id is not None
        body = encode_frame_batch(chunks)
        seq = self._seqs.get(source_id, 0) + 1
        self._seqs[source_id] = seq
        header: Dict[str, Any] = {
            "frames": len(chunks), "seq": seq, "source_id": source_id,
        }
        wire.attach_crc(header, body)
        if self.retry is not None:
            self._sent[seq] = (len(chunks), body, dict(header))
        reply = self._request(wire.CHUNKS, header, body,
                              expect=wire.INGEST_ACK)
        self._prune(reply)
        return int(reply.header.get("frames_accepted", 0))

    def _end_ingest(self) -> None:
        self._ingest_ended = True
        self._request(wire.END_INGEST, {}, expect=wire.INGEST_ACK)
        self._ingest_active = False

    def commit(self) -> Dict[str, Any]:
        """Seal the remote load; returns the service's report summary.

        Safe to retry: the service-side finalize is idempotent, so a
        replayed COMMIT returns the same report it already built.
        """
        reply = self._request(wire.COMMIT, expect=wire.COMMITTED)
        return dict(reply.header.get("report", {}))

    # ------------------------------------------------------------------
    def query(self, sql: str) -> QueryResult:
        """Run *sql* on the service's finalized store."""
        return self._traced_query(sql, snapshot=False)

    def snapshot_query(self, sql: str) -> QueryResult:
        """Run *sql* against the service's loaded-so-far snapshot."""
        return self._traced_query(sql, snapshot=True)

    def _traced_query(self, sql: str, snapshot: bool) -> QueryResult:
        """One QUERY round trip, wrapped in a client-side span.

        The span's context rides the wire header; the service executes
        under it and returns its finished span records in the RESULT
        header, which are adopted here — so a single trace id covers
        ``remote.query`` on this side and plan/scan/aggregate on the
        server side.  With the (default) null tracer this is exactly the
        pre-obs request path.
        """
        header: Dict[str, Any] = {"sql": sql, "snapshot": snapshot}
        if not self.tracer.enabled:
            reply = self._request(wire.QUERY, header, expect=wire.RESULT)
            return result_from_payload(reply.body)
        with self.tracer.trace(
            "remote.query", attrs={"sql": sql, "snapshot": snapshot},
        ) as span:
            wire.attach_trace(header, span.trace_id, span.span_id)
            reply = self._request(wire.QUERY, header, expect=wire.RESULT)
            spans = reply.header.get("spans")
            if isinstance(spans, list):
                self.tracer.adopt(
                    s for s in spans if isinstance(s, dict)
                )
            return result_from_payload(reply.body)

    def ping(self) -> bool:
        """One PING/PONG heartbeat round trip (resets idle reaping)."""
        reply = self._request(wire.PING, expect=wire.PONG)
        return reply.tag == wire.PONG

    def stats(self, query_log_tail: int = 0) -> Dict[str, Any]:
        """Poll the service's live STATS document.

        Includes connection/admission accounting and the service-side
        metrics snapshot; *query_log_tail* > 0 additionally requests the
        most recent N query-log records.
        """
        reply = self._request(
            wire.STATS, {"query_log_tail": int(query_log_tail)},
            expect=wire.STATS,
        )
        try:
            doc = json.loads(reply.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RemoteError(f"malformed STATS reply: {exc}") from exc
        if not isinstance(doc, dict):
            raise RemoteError(
                f"STATS reply must be a JSON object, got "
                f"{type(doc).__name__}"
            )
        return doc

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Say BYE (best effort) and close the channel (idempotent)."""
        if self._closed:
            return
        try:
            self._request_once(wire.BYE, expect=wire.BYE)
        except (RemoteError, TransportError, wire.WireError):
            pass  # the goodbye is a courtesy, not a contract
        self._closed = True
        self.channel.close()

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
