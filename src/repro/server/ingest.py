"""The eager baseline loader: what a server does without CIAO.

Parses and converts *every* record of *every* chunk and ignores bit-vectors
entirely.  This is the paper's zero-budget baseline against which all
loading speedups are measured.  The only records it sidelines are malformed
ones — the loader-wide quarantine policy (raw text preserved, counted as
``malformed``) applies to the baseline too, so no input is ever dropped.

Implementation-wise it is the client-assisted loader with partial loading
off and annotations dropped — made explicit as its own class so experiment
code reads as "baseline vs CIAO", not as a flag soup.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..rawjson.chunks import JsonChunk
from ..storage.jsonstore import JsonSideStore
from ..storage.schema import Schema
from .loader import ClientAssistedLoader, LoadReport, LoadSummary


class EagerLoader:
    """Parse-everything baseline loader."""

    def __init__(self, parquet_path: str | Path,
                 side_store: JsonSideStore,
                 schema: Optional[Schema] = None):
        self._inner = ClientAssistedLoader(
            parquet_path, side_store, partial_loading=False, schema=schema
        )

    @property
    def summary(self) -> LoadSummary:
        """Session accounting (loading ratio is always 1.0 here)."""
        return self._inner.summary

    @property
    def parquet_paths(self):
        """The Parquet-lite files written so far."""
        return self._inner.parquet_paths

    def ingest(self, chunk: JsonChunk) -> LoadReport:
        """Load the whole chunk, discarding any client annotations."""
        stripped = JsonChunk(chunk.chunk_id, chunk.records)
        return self._inner.ingest(stripped)

    def finalize(self) -> LoadSummary:
        """Seal the output file."""
        return self._inner.finalize()
