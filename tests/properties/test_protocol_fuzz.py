"""Adversarial wire-protocol tests: truncation, mutation, corrupt headers.

The contract under test: :func:`repro.client.protocol.decode_chunk` either
returns a faithful chunk or raises :class:`ProtocolError` — it must never
surface ``IndexError``/``UnicodeDecodeError``, silently mis-slice a
truncated bit-vector payload, or report nonsensical trailing-byte counts.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitvec import BitVector
from repro.client import (
    ProtocolError,
    decode_chunk,
    decode_chunk_stream,
    encode_chunk,
)
from repro.client.protocol import MAGIC
from repro.rawjson import JsonChunk, dump_record


def sample_chunk(n=25, chunk_id=9):
    records = [
        dump_record({"i": i, "text": f"rekörd {i} ünïcode"}) for i in range(n)
    ]
    chunk = JsonChunk(chunk_id=chunk_id, records=records)
    chunk.attach(0, BitVector.from_bits([i % 3 == 0 for i in range(n)]))
    chunk.attach(5, BitVector.from_indices(n, [n - 1]))
    return chunk


def frame(header: bytes, records: bytes, vectors: bytes) -> bytes:
    """Hand-assemble a wire frame from raw sections."""
    return (
        MAGIC
        + len(header).to_bytes(4, "little") + header
        + len(records).to_bytes(4, "little") + records
        + vectors
    )


def vector_section(tag: int, payload: bytes) -> bytes:
    return bytes([tag]) + len(payload).to_bytes(4, "little") + payload


class TestTruncation:
    def test_every_truncation_offset_raises_protocol_error(self):
        # The load-bearing fuzz: a frame cut at ANY byte offset must raise
        # ProtocolError — never IndexError, never a silent partial decode,
        # never a negative "trailing bytes" complaint.
        payload = encode_chunk(sample_chunk())
        for offset in range(len(payload)):
            with pytest.raises(ProtocolError):
                decode_chunk(payload[:offset])

    def test_truncation_of_vectorless_chunk(self):
        chunk = JsonChunk(0, [dump_record({"i": i}) for i in range(4)])
        payload = encode_chunk(chunk)
        for offset in range(len(payload)):
            with pytest.raises(ProtocolError):
                decode_chunk(payload[:offset])

    def test_trailing_garbage_rejected(self):
        payload = encode_chunk(sample_chunk())
        with pytest.raises(ProtocolError):
            decode_chunk(payload + b"\x00")


class TestMutation:
    def test_random_single_byte_flips_never_crash(self):
        payload = bytearray(encode_chunk(sample_chunk()))
        rng = random.Random(1234)
        for _ in range(400):
            index = rng.randrange(len(payload))
            original = payload[index]
            payload[index] = rng.randrange(256)
            try:
                decode_chunk(bytes(payload))
            except ProtocolError:
                pass  # rejected is fine; any other exception is a bug
            finally:
                payload[index] = original

    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_arbitrary_bytes_never_crash(self, blob):
        try:
            decode_chunk(blob)
        except ProtocolError:
            pass


class TestCorruptSections:
    def test_duplicate_predicate_ids_rejected(self):
        empty_bv = BitVector(0).to_bytes()
        payload = frame(
            b'{"chunk_id": 1, "records": 0, "predicates": [3, 3]}',
            b"",
            vector_section(0, empty_bv) + vector_section(0, empty_bv),
        )
        with pytest.raises(ProtocolError, match="duplicate predicate"):
            decode_chunk(payload)

    def test_set_tail_padding_bits_rejected(self):
        # 3 declared bits, payload byte 0x85 = bits 101 plus a set padding
        # bit: corruption must fail loudly instead of being masked away.
        bad_bv = (3).to_bytes(4, "little") + b"\x85"
        payload = frame(
            b'{"chunk_id": 0, "records": 3, "predicates": [1]}',
            b"{}\n{}\n{}",
            vector_section(0, bad_bv),
        )
        with pytest.raises(ProtocolError, match="corrupt bit-vector"):
            decode_chunk(payload)

    def test_truncated_bitvector_payload_message(self):
        payload = encode_chunk(sample_chunk())
        with pytest.raises(ProtocolError, match="truncated bit-vector"):
            decode_chunk(payload[:-3])

    def test_header_must_be_object_with_typed_fields(self):
        for header in (
            b"[1, 2]",
            b'{"chunk_id": "x", "records": 0, "predicates": []}',
            b'{"chunk_id": 0, "records": -1, "predicates": []}',
            b'{"chunk_id": 0, "records": 0, "predicates": "nope"}',
            b'{"chunk_id": 0, "records": 0, "predicates": [true]}',
            b'{"chunk_id": 0, "records": 0}',
            b"{broken",
        ):
            with pytest.raises(ProtocolError):
                decode_chunk(frame(header, b"", b""))

    def test_record_count_mismatch_rejected(self):
        payload = frame(
            b'{"chunk_id": 0, "records": 5, "predicates": []}',
            b"{}\n{}",
            b"",
        )
        with pytest.raises(ProtocolError, match="declares 5 records"):
            decode_chunk(payload)

    def test_wrong_vector_length_rejected(self):
        # A structurally valid bit-vector whose length disagrees with the
        # record count must be rejected before it is even decoded.
        two_bits = BitVector.from_bits([1, 0]).to_bytes()
        payload = frame(
            b'{"chunk_id": 0, "records": 3, "predicates": [0]}',
            b"{}\n{}\n{}",
            vector_section(0, two_bits),
        )
        with pytest.raises(ProtocolError, match="declares 2 bits"):
            decode_chunk(payload)

    def test_rle_length_bomb_rejected_before_allocation(self):
        # A few wire bytes can declare a multi-gigabit RLE vector; the
        # declared length must be checked against the record count BEFORE
        # decoding, so the frame is rejected without the huge allocation.
        declared = 1 << 31
        rle_payload = (
            declared.to_bytes(4, "little")      # bit length
            + (1).to_bytes(4, "little")         # one run
            + b"\x80\x80\x80\x80\x08"           # varint for 2**31 zeros
        )
        payload = frame(
            b'{"chunk_id": 0, "records": 3, "predicates": [0]}',
            b"{}\n{}\n{}",
            vector_section(1, rle_payload),
        )
        with pytest.raises(ProtocolError, match="declares 2147483648 bits"):
            decode_chunk(payload)

    def test_bad_utf8_records_rejected(self):
        payload = frame(
            b'{"chunk_id": 0, "records": 1, "predicates": []}',
            b"\xff\xfe{}",
            b"",
        )
        with pytest.raises(ProtocolError, match="not valid UTF-8"):
            decode_chunk(payload)


class TestStreamDecode:
    def test_stream_yields_each_frame(self):
        chunks = [sample_chunk(n=6, chunk_id=i) for i in range(3)]
        buffer = b"".join(encode_chunk(c) for c in chunks)
        decoded = list(decode_chunk_stream(buffer))
        assert [c.chunk_id for c in decoded] == [0, 1, 2]
        for original, copy in zip(chunks, decoded):
            assert copy.records == original.records
            assert copy.bitvectors == original.bitvectors

    def test_stream_rejects_truncated_tail(self):
        buffer = b"".join(
            encode_chunk(sample_chunk(n=4, chunk_id=i)) for i in range(2)
        )
        with pytest.raises(ProtocolError):
            list(decode_chunk_stream(buffer[:-5]))

    def test_stream_accepts_memoryview(self):
        payload = encode_chunk(sample_chunk(n=3))
        (decoded,) = list(decode_chunk_stream(memoryview(payload)))
        assert decoded.records == sample_chunk(n=3).records
