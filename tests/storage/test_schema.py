"""Unit tests for schema inference and value coercion."""

import pytest

from repro.storage import (
    ColumnType,
    Field,
    Schema,
    SchemaError,
    coerce_value,
    infer_schema,
)


class TestSchema:
    def test_lookup(self):
        schema = Schema([Field("a", ColumnType.INT64),
                         Field("b", ColumnType.STRING)])
        assert schema.field("a").type is ColumnType.INT64
        assert schema.index_of("b") == 1
        assert "a" in schema and "z" not in schema
        assert schema.names == ["a", "b"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Field("a", ColumnType.INT64),
                    Field("a", ColumnType.STRING)])

    def test_unknown_column_raises(self):
        schema = Schema([Field("a", ColumnType.INT64)])
        with pytest.raises(SchemaError):
            schema.field("b")

    def test_dict_roundtrip(self):
        schema = Schema([Field("a", ColumnType.JSON),
                         Field("b", ColumnType.BOOL)])
        assert Schema.from_dict(schema.to_dict()) == schema


class TestInference:
    def test_scalar_types(self):
        schema = infer_schema(
            [{"s": "x", "i": 1, "f": 1.5, "b": True, "n": None}]
        )
        assert schema.field("s").type is ColumnType.STRING
        assert schema.field("i").type is ColumnType.INT64
        assert schema.field("f").type is ColumnType.FLOAT64
        assert schema.field("b").type is ColumnType.BOOL
        # All-null columns default to STRING.
        assert schema.field("n").type is ColumnType.STRING

    def test_int_float_promotion(self):
        schema = infer_schema([{"x": 1}, {"x": 2.5}])
        assert schema.field("x").type is ColumnType.FLOAT64

    def test_mixed_types_fall_back_to_json(self):
        schema = infer_schema([{"x": 1}, {"x": "s"}])
        assert schema.field("x").type is ColumnType.JSON

    def test_nested_values_are_json(self):
        schema = infer_schema([{"x": {"a": 1}}, {"y": [1, 2]}])
        assert schema.field("x").type is ColumnType.JSON
        assert schema.field("y").type is ColumnType.JSON

    def test_column_order_is_first_appearance(self):
        schema = infer_schema([{"b": 1}, {"a": 2, "b": 3}])
        assert schema.names == ["b", "a"]

    def test_bool_does_not_promote_with_int(self):
        schema = infer_schema([{"x": True}, {"x": 1}])
        assert schema.field("x").type is ColumnType.JSON

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            infer_schema([])


class TestCoercion:
    def test_none_passes_through(self):
        assert coerce_value(None, ColumnType.INT64) is None

    def test_json_column_serializes(self):
        assert coerce_value({"a": 1}, ColumnType.JSON) == '{"a":1}'

    def test_int_to_float(self):
        assert coerce_value(3, ColumnType.FLOAT64) == 3.0

    def test_bool_guards(self):
        with pytest.raises(SchemaError):
            coerce_value(True, ColumnType.INT64)
        with pytest.raises(SchemaError):
            coerce_value(True, ColumnType.FLOAT64)
        assert coerce_value(True, ColumnType.BOOL) is True

    def test_type_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            coerce_value("s", ColumnType.INT64)
        with pytest.raises(SchemaError):
            coerce_value(1, ColumnType.STRING)
