"""Parquet-lite file writer and reader.

File layout::

    [MAGIC "PQL1"]
    [row group 0 block][row group 1 block]...
    [footer JSON]
    [footer length: 8 bytes little-endian]
    [MAGIC "PQL1"]

The footer (see :mod:`repro.storage.metadata`) carries the schema, column
chunk locations, per-column stats, and CIAO's per-row-group predicate
bit-vectors.  Readers memory-map nothing and cache decoded columns per row
group; the format favours clarity over raw I/O tricks, but the *layout*
decisions (columnar pages, row-group skipping, footer-last) are the real
ones.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

from ..analysis.sanitizer import make_lock
from ..bitvec.bitvector import BitVector
from .encodings import Encoding
from .metadata import MAGIC, FileMeta, RowGroupMeta
from .rowgroup import RowGroupReader, build_row_group
from .schema import Schema, infer_schema


class ParquetLiteError(ValueError):
    """Corrupt or inconsistent Parquet-lite file."""


class ParquetLiteWriter:
    """Streaming writer: append row groups, then :meth:`close` the footer.

    Usable as a context manager; the footer is written on exit.
    """

    def __init__(self, path: str | Path, schema: Schema,
                 encoding: Optional[Encoding] = None):
        self.path = Path(path)
        self.schema = schema
        self._encoding = encoding
        self._file = open(self.path, "wb")
        self._file.write(MAGIC)
        self._meta = FileMeta(schema=schema)
        self._closed = False

    def write_row_group(
        self,
        rows: Sequence[Mapping[str, Any]],
        bitvectors: Optional[Mapping[int, BitVector]] = None,
        source_chunk_id: Optional[int] = None,
    ) -> RowGroupMeta:
        """Append one row group with optional predicate bit-vectors."""
        self._check_open()
        block, meta = build_row_group(
            rows,
            self.schema,
            base_offset=self._file.tell(),
            source_chunk_id=source_chunk_id,
            bitvectors=bitvectors,
            encoding=self._encoding,
        )
        self._file.write(block)
        self._meta.row_groups.append(meta)
        return meta

    def close(self) -> FileMeta:
        """Write the footer and seal the file."""
        self._check_open()
        footer = self._meta.serialize()
        self._file.write(footer)
        self._file.write(len(footer).to_bytes(8, "little"))
        self._file.write(MAGIC)
        self._file.close()
        self._closed = True
        return self._meta

    def _check_open(self) -> None:
        if self._closed:
            raise ParquetLiteError("writer already closed")

    def __enter__(self) -> "ParquetLiteWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._closed:
            if exc_type is None:
                self.close()
            else:
                self._file.close()  # leave no half-written footer


class ParquetLiteReader:
    """Reader with row-group granularity and bit-vector access.

    Row-shaped consumers use :meth:`iter_rows`/:meth:`read_all`;
    columnar consumers (the batch query engine) go per row group via
    :meth:`repro.storage.rowgroup.RowGroupReader.read_batch`, which
    decodes each page once into plain value lists with no row dicts.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._file = open(self.path, "rb")
        self.meta = self._read_footer()
        # One lock per file: every row group shares the handle, so the
        # no-pread fallback in RowGroupReader must serialize across them.
        read_lock = make_lock("ParquetLiteReader._read_lock")
        self._groups = [
            RowGroupReader(self._file, self.meta.schema, rg,
                           read_lock=read_lock)
            for rg in self.meta.row_groups
        ]

    def _read_footer(self) -> FileMeta:
        f = self._file
        f.seek(0, 2)
        size = f.tell()
        tail = len(MAGIC) + 8
        if size < len(MAGIC) + tail:
            raise ParquetLiteError(f"{self.path} is too small to be PQL1")
        f.seek(0)
        if f.read(len(MAGIC)) != MAGIC:
            raise ParquetLiteError(f"{self.path}: bad leading magic")
        f.seek(size - tail)
        footer_len = int.from_bytes(f.read(8), "little")
        if f.read(len(MAGIC)) != MAGIC:
            raise ParquetLiteError(f"{self.path}: bad trailing magic")
        footer_start = size - tail - footer_len
        if footer_start < len(MAGIC):
            raise ParquetLiteError(f"{self.path}: footer length corrupt")
        f.seek(footer_start)
        return FileMeta.deserialize(f.read(footer_len))

    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """The file schema."""
        return self.meta.schema

    @property
    def total_rows(self) -> int:
        """Total rows across row groups."""
        return self.meta.total_rows

    def __len__(self) -> int:
        return len(self._groups)

    def row_group(self, index: int) -> RowGroupReader:
        """Reader for row group *index*."""
        return self._groups[index]

    def row_groups(self) -> Iterator[RowGroupReader]:
        """Iterate row-group readers in file order."""
        return iter(self._groups)

    def iter_rows(self, columns: Optional[Sequence[str]] = None
                  ) -> Iterator[Dict[str, Any]]:
        """Full scan, optionally projected."""
        for group in self._groups:
            yield from group.rows(columns=columns)
            group.clear_cache()

    def read_all(self) -> List[Dict[str, Any]]:
        """Materialize the whole file (tests / small files)."""
        return list(self.iter_rows())

    def bitvector(self, group_index: int,
                  predicate_id: int) -> Optional[BitVector]:
        """The stored bit-vector for (row group, predicate), if any."""
        rg = self.meta.row_groups[group_index]
        return rg.bitvectors.get(predicate_id)

    def close(self) -> None:
        """Release the file handle."""
        self._file.close()

    def __enter__(self) -> "ParquetLiteReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def write_records(path: str | Path,
                  records: Sequence[Mapping[str, Any]],
                  row_group_size: int = 1000,
                  schema: Optional[Schema] = None,
                  encoding: Optional[Encoding] = None) -> FileMeta:
    """Convenience: write records in fixed-size row groups.

    Infers the schema from all records unless one is given.
    """
    if not records:
        raise ValueError("cannot write an empty Parquet-lite file")
    if row_group_size <= 0:
        raise ValueError("row_group_size must be positive")
    schema = schema or infer_schema(records)
    with ParquetLiteWriter(path, schema, encoding=encoding) as writer:
        for start in range(0, len(records), row_group_size):
            writer.write_row_group(records[start:start + row_group_size])
    return writer._meta
