"""Simulation substrate: virtual time, hardware profiles, and transport."""

from .clock import ClockWindow, VirtualClock
from .hardware import (
    GaussianNoise,
    HardwareProfile,
    HypervisorNoise,
    PLATFORMS,
    synthesize_observations,
)
# Channel names re-export from the transport package directly (not via
# the deprecated .network shim, whose import now warns).
from ..transport import (
    Channel,
    ChannelDecorator,
    ChannelSpec,
    ChannelStats,
    FileChannel,
    LatencyChannel,
    LinkModel,
    LossyChannel,
    MemoryChannel,
    make_channel,
)
from .runtime import ACCOUNTS, LOADING, PREFILTERING, QUERY, CostLedger

__all__ = [
    "ACCOUNTS",
    "Channel",
    "ChannelDecorator",
    "ChannelSpec",
    "ChannelStats",
    "ClockWindow",
    "CostLedger",
    "FileChannel",
    "GaussianNoise",
    "HardwareProfile",
    "HypervisorNoise",
    "LOADING",
    "LatencyChannel",
    "LinkModel",
    "LossyChannel",
    "MemoryChannel",
    "PLATFORMS",
    "PREFILTERING",
    "QUERY",
    "VirtualClock",
    "make_channel",
    "synthesize_observations",
]
