"""Ablation — raw matching vs full parsing on the client.

CIAO's premise (§IV): evaluating predicates via substring search on the
raw record is far cheaper than parsing it first.  This bench measures the
client-side alternatives head to head:

* raw matcher  — compiled pattern search, no parsing (CIAO);
* parse+eval   — parse with the from-scratch parser, then evaluate
                 semantically (what naive client-side parsing would do).
"""

import time

from conftest import run_once

from repro.bench import emit_table
from repro.core import clause, compile_clause, key_value, substring
from repro.data import make_generator
from repro.rawjson import dump_record, parse_object


def test_ablation_client_matcher(benchmark, results_dir):
    gen = make_generator("winlog", 20210223)
    records = [dump_record(r) for r in gen.generate(3000)]
    clauses = [
        clause(substring("info", "evt000")),
        clause(substring("time", "-03-")),
        clause(key_value("stars", 5)),  # absent column: pure miss cost
    ]

    def experiment():
        rows = []
        for c in clauses:
            matcher = compile_clause(c).matcher()
            start = time.perf_counter()
            raw_hits = sum(1 for raw in records if matcher(raw))
            raw_time = time.perf_counter() - start

            start = time.perf_counter()
            parsed_hits = sum(
                1 for raw in records if c.evaluate(parse_object(raw))
            )
            parse_time = time.perf_counter() - start
            rows.append(
                (
                    c.sql(),
                    raw_time * 1e6 / len(records),
                    parse_time * 1e6 / len(records),
                    parse_time / raw_time,
                    raw_hits,
                    parsed_hits,
                )
            )
        return rows

    rows = run_once(benchmark, experiment)
    emit_table(
        "ablation_client_matcher",
        ["clause", "raw µs/rec", "parse+eval µs/rec", "speedup",
         "raw hits", "semantic hits"],
        rows, results_dir, title="Client matcher ablation",
    )

    for _, _, _, speedup, raw_hits, parsed_hits in rows:
        # Raw matching is at least an order of magnitude cheaper...
        assert speedup > 10
        # ...and never misses a semantic match (false positives only).
        assert raw_hits >= parsed_hits
