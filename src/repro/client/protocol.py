"""Wire format for client→server chunks.

Layout::

    [MAGIC "CIA1"]
    [u32 header length][header JSON (UTF-8)]
    [u32 records length][records: newline-joined raw JSON, UTF-8]
    per predicate, in header order:
        [u8 encoding tag: 0 packed / 1 RLE][u32 payload length][payload]

The header carries the chunk id, record count, and the predicate ids.  Each
bit-vector ships in whichever encoding is smaller (packed vs RLE) — for
selective predicates RLE routinely wins by 10×, keeping CIAO's network
overhead at a fraction of a percent of the record payload.

Decoding is *strict*: every length field is bounds-checked before the bytes
it describes are touched, duplicate predicate ids are rejected, and any
corruption — truncation at an arbitrary byte offset, bad UTF-8, a malformed
header, set bits in bit-vector tail padding — raises :class:`ProtocolError`
(never ``IndexError`` or a silent mis-parse).  Decoding is also *iterative
and zero-copy*: it walks a ``memoryview`` cursor over the payload, so the
sharded ingest workers (:mod:`repro.server.pipeline`) can decode concurrent
chunks without re-copying record blobs, and :func:`decode_chunk_stream`
yields successive chunks straight out of one concatenated buffer.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from ..bitvec.bitvector import BitVector
from ..bitvec.rle import RleBitVector
from ..rawjson.chunks import JsonChunk
from ..rawjson.errors import JsonError
from ..rawjson.parser import loads
from ..rawjson.writer import dumps

MAGIC = b"CIA1"

_PACKED_TAG = 0
_RLE_TAG = 1


class ProtocolError(ValueError):
    """Malformed chunk payload."""


def encode_chunk(chunk: JsonChunk) -> bytes:
    """Serialize a chunk with its bit-vectors."""
    pred_ids = chunk.predicate_ids
    header = dumps(
        {
            "chunk_id": chunk.chunk_id,
            "records": len(chunk.records),
            "predicates": pred_ids,
        }
    ).encode("utf-8")
    records_blob = "\n".join(chunk.records).encode("utf-8")
    out = bytearray()
    out += MAGIC
    out += len(header).to_bytes(4, "little")
    out += header
    out += len(records_blob).to_bytes(4, "little")
    out += records_blob
    for pid in pred_ids:
        bv = chunk.bitvectors[pid]
        rle = RleBitVector.from_bitvector(bv)
        if rle.serialized_size() < bv.serialized_size():
            payload = rle.to_bytes()
            out.append(_RLE_TAG)
        else:
            payload = bv.to_bytes()
            out.append(_PACKED_TAG)
        out += len(payload).to_bytes(4, "little")
        out += payload
    return bytes(out)


def encode_frame_batch(
    chunks: "Iterable[JsonChunk | bytes | bytearray | memoryview]",
) -> bytes:
    """Concatenate several chunk frames into one channel message.

    Frames are self-delimiting, so batching is plain concatenation; the
    point is to amortize per-message transport overhead (queue puts, spool
    files, message latency) across many small chunks.  Items may be
    :class:`JsonChunk` objects (encoded here) or already-encoded frame
    bytes (forwarded verbatim).  The receiver splits the batch back apart
    with :func:`split_frames` or decodes it wholesale with
    :func:`decode_chunk_stream`.
    """
    out = bytearray()
    for item in chunks:
        if isinstance(item, JsonChunk):
            out += encode_chunk(item)
        elif isinstance(item, (bytes, bytearray, memoryview)):
            out += item
        else:
            raise TypeError(
                f"frame batches carry JsonChunk or bytes, "
                f"got {type(item).__name__}"
            )
    return bytes(out)


def split_frames(data: bytes | bytearray | memoryview
                 ) -> Iterator[memoryview]:
    """Yield each chunk frame of a (possibly batched) payload, undecoded.

    Walks the frame structure — header, records length, per-predicate
    segment lengths — without parsing records or decoding bit-vectors, so
    a dispatcher can split a batch and ship individual frames to shard
    workers while staying off the expensive decode path.  A single
    un-batched frame yields itself.  Raises :class:`ProtocolError` on any
    structural corruption, like the full decoder would.
    """
    view = memoryview(data)
    pos = 0
    while pos < len(view):
        start = pos
        pos = _skip_one(view, pos)
        yield view[start:pos]


def _skip_one(view: memoryview, pos: int) -> int:
    """Advance past one chunk frame starting at *pos*; returns next_pos."""
    magic, pos = _take(view, pos, len(MAGIC), "chunk magic")
    if bytes(magic) != MAGIC:
        raise ProtocolError("bad chunk magic")
    header_len, pos = _read_u32(view, pos)
    header_blob, pos = _take(view, pos, header_len, "chunk header")
    header = _parse_header(header_blob)
    records_len, pos = _read_u32(view, pos)
    _, pos = _take(view, pos, records_len, "records payload")
    for _ in header["predicates"]:
        _, pos = _take(view, pos, 1, "bit-vector tag")
        payload_len, pos = _read_u32(view, pos)
        _, pos = _take(view, pos, payload_len, "bit-vector payload")
    return pos


def decode_chunk(data: bytes | bytearray | memoryview) -> JsonChunk:
    """Inverse of :func:`encode_chunk`, with structural validation."""
    view = memoryview(data)
    chunk, pos = _decode_one(view, 0)
    if pos != len(view):
        raise ProtocolError(f"{len(view) - pos} trailing bytes after chunk")
    return chunk


def decode_chunk_stream(data: bytes | bytearray | memoryview
                        ) -> Iterator[JsonChunk]:
    """Yield successive chunks from a buffer of concatenated frames.

    The iterative counterpart of :func:`decode_chunk` for transports that
    batch several encoded chunks into one payload: each frame is decoded in
    place off a shared ``memoryview``, so nothing is re-copied per chunk.
    """
    view = memoryview(data)
    pos = 0
    while pos < len(view):
        chunk, pos = _decode_one(view, pos)
        yield chunk


def _decode_one(view: memoryview, pos: int) -> Tuple[JsonChunk, int]:
    """Decode one chunk frame starting at *pos*; returns (chunk, next_pos)."""
    magic, pos = _take(view, pos, len(MAGIC), "chunk magic")
    if bytes(magic) != MAGIC:
        raise ProtocolError("bad chunk magic")
    header_len, pos = _read_u32(view, pos)
    header_blob, pos = _take(view, pos, header_len, "chunk header")
    header = _parse_header(header_blob)
    records_len, pos = _read_u32(view, pos)
    records_view, pos = _take(view, pos, records_len, "records payload")
    try:
        records_blob = str(records_view, "utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"records payload is not valid UTF-8: {exc}")
    records: List[str] = records_blob.split("\n") if records_blob else []
    if len(records) != header["records"]:
        raise ProtocolError(
            f"header declares {header['records']} records, payload has "
            f"{len(records)}"
        )
    chunk = JsonChunk(chunk_id=header["chunk_id"], records=records)
    for pid in header["predicates"]:
        tag_byte, pos = _take(view, pos, 1, "bit-vector tag")
        tag = tag_byte[0]
        payload_len, pos = _read_u32(view, pos)
        payload, pos = _take(view, pos, payload_len, "bit-vector payload")
        if payload_len < 4:
            raise ProtocolError("truncated bit-vector payload")
        # Both encodings lead with their bit length; check it against the
        # record count BEFORE decoding, so a corrupt frame cannot force a
        # huge allocation (an RLE payload of a few bytes can declare 2^32
        # bits) — and a wrong-length vector is corruption either way.
        declared_bits = int.from_bytes(payload[:4], "little")
        if declared_bits != len(records):
            raise ProtocolError(
                f"bit-vector for predicate {pid} declares {declared_bits} "
                f"bits for {len(records)} records"
            )
        try:
            if tag == _PACKED_TAG:
                bv = BitVector.from_bytes(payload)
            elif tag == _RLE_TAG:
                bv = RleBitVector.from_bytes(payload).to_bitvector()
            else:
                raise ProtocolError(
                    f"unknown bit-vector encoding tag {tag}"
                )
            chunk.attach(pid, bv)
        except ProtocolError:
            raise
        except ValueError as exc:
            raise ProtocolError(
                f"corrupt bit-vector for predicate {pid}: {exc}"
            )
    return chunk, pos


def _parse_header(blob: memoryview) -> dict:
    """Parse and validate the chunk header JSON."""
    try:
        header = loads(str(blob, "utf-8"))
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"chunk header is not valid UTF-8: {exc}")
    except JsonError as exc:
        raise ProtocolError(f"chunk header is not valid JSON: {exc}")
    if not isinstance(header, dict):
        raise ProtocolError("chunk header must be a JSON object")
    chunk_id = header.get("chunk_id")
    n_records = header.get("records")
    predicates = header.get("predicates")
    if not isinstance(chunk_id, int) or isinstance(chunk_id, bool):
        raise ProtocolError("chunk header needs an integer 'chunk_id'")
    if (not isinstance(n_records, int) or isinstance(n_records, bool)
            or n_records < 0):
        raise ProtocolError(
            "chunk header needs a non-negative integer 'records'"
        )
    if not isinstance(predicates, list) or any(
        not isinstance(p, int) or isinstance(p, bool) for p in predicates
    ):
        raise ProtocolError(
            "chunk header needs a list of integer 'predicates'"
        )
    if len(set(predicates)) != len(predicates):
        raise ProtocolError("duplicate predicate ids in chunk header")
    return header


def bitvector_overhead(chunk: JsonChunk) -> Tuple[int, int]:
    """(record payload bytes, bit-vector payload bytes) for one chunk."""
    encoded = encode_chunk(chunk)
    records_blob = "\n".join(chunk.records).encode("utf-8")
    # Everything past magic+headers+records is bit-vector payload.
    header = dumps(
        {
            "chunk_id": chunk.chunk_id,
            "records": len(chunk.records),
            "predicates": chunk.predicate_ids,
        }
    ).encode("utf-8")
    fixed = len(MAGIC) + 4 + len(header) + 4 + len(records_blob)
    return len(records_blob), len(encoded) - fixed


def _take(view: memoryview, pos: int, size: int, what: str
          ) -> Tuple[memoryview, int]:
    """Bounds-checked cursor advance; raises before touching bytes."""
    if size < 0 or pos + size > len(view):
        raise ProtocolError(f"truncated {what}")
    return view[pos:pos + size], pos + size  # ciaolint: allow[PRO001] -- this IS the checked cursor primitive


def _read_u32(view: memoryview, pos: int) -> Tuple[int, int]:
    if pos + 4 > len(view):
        raise ProtocolError("truncated length field")
    return int.from_bytes(view[pos:pos + 4], "little"), pos + 4  # ciaolint: allow[PRO001] -- length prechecked on the line above
