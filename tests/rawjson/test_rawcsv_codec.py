"""Unit tests for the CSV codec."""

import pytest

from repro.rawcsv import CsvCodec, CsvDialect, CsvError, parse_line, write_row


class TestDialect:
    def test_validation(self):
        with pytest.raises(CsvError):
            CsvDialect(delimiter=";;")
        with pytest.raises(CsvError):
            CsvDialect(delimiter='"', quote='"')


class TestRowRoundtrip:
    @pytest.mark.parametrize(
        "fields",
        [
            ["a", "b", "c"],
            ["", "", ""],
            ["plain", "with,comma", 'with"quote'],
            ['""', ",", "a,b\"c\"d"],
            ["trailing "],
        ],
    )
    def test_write_parse_roundtrip(self, fields):
        assert parse_line(write_row(fields)) == fields

    def test_quoting_rules(self):
        assert write_row(["a"]) == "a"
        assert write_row(["a,b"]) == '"a,b"'
        assert write_row(['say "hi"']) == '"say ""hi"""'

    def test_custom_dialect(self):
        dialect = CsvDialect(delimiter=";")
        line = write_row(["a;b", "c"], dialect)
        assert parse_line(line, dialect) == ["a;b", "c"]

    def test_malformed_lines_rejected(self):
        with pytest.raises(CsvError):
            parse_line('"unterminated')
        with pytest.raises(CsvError):
            parse_line('mid"quote')


class TestCodec:
    @pytest.fixture()
    def codec(self):
        return CsvCodec(
            ["name", "age", "score", "active"],
            types={"age": int, "score": float, "active": bool},
        )

    def test_record_roundtrip(self, codec):
        record = {"name": "Ann", "age": 33, "score": 1.5, "active": True}
        assert codec.decode_line(codec.encode_record(record)) == record

    def test_none_roundtrips_as_empty(self, codec):
        record = {"name": None, "age": None, "score": None, "active": None}
        assert codec.decode_line(codec.encode_record(record)) == record

    def test_missing_keys_become_none(self, codec):
        line = codec.encode_record({"name": "Bo"})
        decoded = codec.decode_line(line)
        assert decoded["age"] is None

    def test_unknown_columns_rejected(self, codec):
        with pytest.raises(CsvError):
            codec.encode_record({"ghost": 1})

    def test_field_count_enforced(self, codec):
        with pytest.raises(CsvError):
            codec.decode_line("a,b")

    def test_bad_typed_values_rejected(self, codec):
        with pytest.raises(CsvError):
            codec.decode_line("Ann,notanint,1.5,true")
        with pytest.raises(CsvError):
            codec.decode_line("Ann,3,1.5,maybe")

    def test_codec_validation(self):
        with pytest.raises(CsvError):
            CsvCodec([])
        with pytest.raises(CsvError):
            CsvCodec(["a", "a"])
        with pytest.raises(CsvError):
            CsvCodec(["a"], types={"b": int})
