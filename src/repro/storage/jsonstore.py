"""The raw-JSON sideline store for records partial loading set aside.

Records invalid for every pushed-down predicate are *not* converted to
Parquet-lite; they are appended here in their original serialized form
(paper §III: "the other is left in a raw JSON format, which requires later
parsing and conversion to analyze the unprocessed records").  Queries whose
predicates were all pushed down never touch this store; any other query
must scan it — parsing each record just in time — which is precisely the
cost asymmetry the partial-loading experiments measure.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Tuple

from ..rawjson.parser import try_parse


class JsonSideStore:
    """Append-only newline-delimited store of unloaded raw records.

    Each line is ``<chunk_id>\\t<raw json>`` so just-in-time loading can
    trace a record back to its origin chunk.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._records = 0
        self._bytes = 0
        if self.path.exists():
            # Recover counts from an existing store (restart tolerance).
            with open(self.path, "r", encoding="utf-8") as f:
                for line in f:
                    if line.strip():
                        self._records += 1
                        self._bytes += len(line)
        else:
            self.path.touch()

    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        """Number of sidelined records."""
        return self._records

    @property
    def byte_size(self) -> int:
        """Approximate store size in bytes."""
        return self._bytes

    def append(self, chunk_id: int, raw_records: Iterable[str]) -> int:
        """Append raw records from one chunk; returns how many."""
        return self.append_pairs((chunk_id, raw) for raw in raw_records)

    def append_pairs(self, pairs: Iterable[Tuple[int, str]]) -> int:
        """Append (chunk_id, raw) pairs in one file-open; returns how many.

        The bulk path used when shard-local sidelines are merged into the
        table's store at the end of a parallel load (one open per shard,
        not one per record).
        """
        count = 0
        with open(self.path, "a", encoding="utf-8") as f:
            for chunk_id, raw in pairs:
                if "\n" in raw:
                    raise ValueError("raw records must be single-line JSON")
                line = f"{chunk_id}\t{raw}\n"
                f.write(line)
                self._records += 1
                self._bytes += len(line)
                count += 1
        return count

    def iter_raw(self) -> Iterator[Tuple[int, str]]:
        """Yield (chunk_id, raw_record) pairs in append order."""
        with open(self.path, "r", encoding="utf-8") as f:
            for line in f:
                stripped = line.rstrip("\n")
                if not stripped:
                    continue
                chunk_id, _, raw = stripped.partition("\t")
                yield int(chunk_id), raw

    def iter_parsed(self) -> Iterator[Dict[str, Any]]:
        """Parse records just in time; malformed lines are skipped.

        Skipping (rather than raising) quarantines producer corruption the
        same way the eager loader would have; counts are exposed via
        :meth:`scan_with_errors` when callers need them.
        """
        for _, raw in self.iter_raw():
            value, ok = try_parse(raw)
            if ok and isinstance(value, dict):
                yield value

    def scan_with_errors(self) -> Tuple[List[Dict[str, Any]], int]:
        """Parse everything; returns (records, malformed_count)."""
        records: List[Dict[str, Any]] = []
        errors = 0
        for _, raw in self.iter_raw():
            value, ok = try_parse(raw)
            if ok and isinstance(value, dict):
                records.append(value)
            else:
                errors += 1
        return records, errors

    def clear(self) -> None:
        """Empty the store (used when re-loading from scratch)."""
        open(self.path, "w", encoding="utf-8").close()
        self._records = 0
        self._bytes = 0


class SidelineView:
    """Read-only view of the first *limit* records of a sideline file.

    The streaming ingest pipeline publishes, per shard, a watermark of how
    many sideline records were durably written when the shard last sealed a
    Parquet part.  Reading only up to that watermark gives queries a
    sideline view consistent with the sealed parts even while the shard
    worker keeps appending — the store is append-only with a single
    writer, so the first *limit* records never change.
    """

    def __init__(self, path: str | Path, limit: int):
        if limit < 0:
            raise ValueError("sideline view limit must be non-negative")
        self.path = Path(path)
        self.limit = limit

    @property
    def record_count(self) -> int:
        return self.limit

    def iter_raw(self) -> Iterator[Tuple[int, str]]:
        """Yield the first *limit* (chunk_id, raw_record) pairs."""
        if self.limit == 0 or not self.path.exists():
            return
        remaining = self.limit
        with open(self.path, "r", encoding="utf-8") as f:
            for line in f:
                stripped = line.rstrip("\n")
                if not stripped:
                    continue
                chunk_id, _, raw = stripped.partition("\t")
                yield int(chunk_id), raw
                remaining -= 1
                if remaining == 0:
                    return

    def iter_parsed(self) -> Iterator[Dict[str, Any]]:
        """Parse viewed records just in time; malformed lines are skipped."""
        for _, raw in self.iter_raw():
            value, ok = try_parse(raw)
            if ok and isinstance(value, dict):
                yield value


class CompositeSidelineView:
    """Several sideline views presented as one store-like object.

    Used by snapshot-scan mode: during a sharded load each shard owns its
    own sideline file, so a consistent loaded-so-far sideline is the union
    of per-shard prefix views.  Exposes the read interface the engine's
    ``SidelineScan`` needs (``record_count``/``iter_raw``/``iter_parsed``/
    ``path``); ``path`` is the table's canonical sideline path, used only
    for plan descriptions.
    """

    def __init__(self, path: str | Path, views: Iterable[SidelineView]):
        self.path = Path(path)
        self.views = list(views)

    @property
    def record_count(self) -> int:
        return sum(view.record_count for view in self.views)

    def iter_raw(self) -> Iterator[Tuple[int, str]]:
        for view in self.views:
            yield from view.iter_raw()

    def iter_parsed(self) -> Iterator[Dict[str, Any]]:
        for view in self.views:
            yield from view.iter_parsed()
