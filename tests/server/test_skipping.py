"""Unit tests for data-skipping analysis utilities."""

import pytest

from repro.bitvec import BitVector
from repro.core import Query, clause, exact, key_value
from repro.engine import TableEntry
from repro.server import (
    estimate_skipping,
    query_predicate_ids,
    resolve_group_mask,
    skipping_benefit_fractions,
)
from repro.storage import ParquetLiteReader, ParquetLiteWriter, infer_schema

ROWS = [{"name": f"u{i}", "age": i % 3} for i in range(12)]
C_NAME = clause(exact("name", "u1"))
C_AGE = clause(key_value("age", 0))
C_OTHER = clause(exact("name", "zz"))


@pytest.fixture()
def table(tmp_path):
    path = tmp_path / "t.pql"
    with ParquetLiteWriter(path, infer_schema(ROWS)) as writer:
        for start in (0, 6):
            rows = ROWS[start:start + 6]
            writer.write_row_group(
                rows,
                bitvectors={
                    0: BitVector.from_bits(
                        [r["name"] == "u1" for r in rows]
                    ),
                    1: BitVector.from_bits([r["age"] == 0 for r in rows]),
                },
            )
    return TableEntry(
        name="t", parquet_paths=[path],
        pushdown={C_NAME: 0, C_AGE: 1},
    )


class TestQueryPredicateIds:
    def test_matched_subset(self, table):
        q = Query((C_NAME, C_OTHER))
        assert query_predicate_ids(q, table) == [0]

    def test_unmatched_query(self, table):
        assert query_predicate_ids(Query((C_OTHER,)), table) == []


class TestResolveGroupMask:
    def test_intersection(self, table):
        reader = table.open_readers()[0]
        mask = resolve_group_mask(reader, 0, [0, 1])
        expected = (
            reader.meta.row_groups[0].bitvectors[0]
            & reader.meta.row_groups[0].bitvectors[1]
        )
        assert mask == expected

    def test_missing_id_returns_none(self, table):
        reader = table.open_readers()[0]
        assert resolve_group_mask(reader, 0, [0, 9]) is None
        assert resolve_group_mask(reader, 0, []) is None


class TestEstimate:
    def test_counts(self, table):
        estimate = estimate_skipping(Query((C_NAME,)), table)
        assert estimate.total_rows == 12
        assert estimate.surviving_rows == 1  # only u1
        assert estimate.tuples_skipped == 11
        assert estimate.row_groups == 2
        assert estimate.skippable_row_groups == 1  # second group: no u1
        assert estimate.benefits
        assert estimate.skip_fraction == pytest.approx(11 / 12)

    def test_uncovered_query_does_not_benefit(self, table):
        estimate = estimate_skipping(Query((C_OTHER,)), table)
        assert not estimate.benefits
        assert estimate.surviving_rows == 12


class TestBenefitFractions:
    def test_fractions(self, table):
        queries = [
            Query((C_NAME,)),    # benefits
            Query((C_AGE,)),     # benefits
            Query((C_OTHER,)),   # uncovered
        ]
        stats = skipping_benefit_fractions(queries, table)
        assert stats["queries"] == 3.0
        assert stats["covered_fraction"] == pytest.approx(2 / 3)
        assert stats["benefiting_fraction"] == pytest.approx(2 / 3)

    def test_empty_query_list(self, table):
        stats = skipping_benefit_fractions([], table)
        assert stats["benefiting_fraction"] == 0.0
