"""Unit tests for the columnar batch engine: ColumnBatch, vectorized
expressions, batch operators, and the rows() compatibility adapter."""

import pytest

from repro.bitvec import BitVector
from repro.engine import (
    Aggregate,
    ChainScan,
    ColumnBatch,
    ExecutionStats,
    Filter,
    Limit,
    ParquetScan,
    Project,
    SidelineScan,
    SkippingScan,
    compile_like,
    like_match,
    parse_sql,
)
from repro.engine.operators import Operator
from repro.rawjson import dump_record
from repro.storage import (
    JsonSideStore,
    ParquetLiteReader,
    ParquetLiteWriter,
    infer_schema,
)

ROWS = [{"i": i, "name": f"u{i}", "flag": i % 2 == 0} for i in range(20)]


@pytest.fixture()
def parquet(tmp_path):
    """Two row groups of 10 rows with bit-vectors for predicates 0/1."""
    path = tmp_path / "t.pql"
    schema = infer_schema(ROWS)
    with ParquetLiteWriter(path, schema) as writer:
        for start in (0, 10):
            rows = ROWS[start:start + 10]
            writer.write_row_group(
                rows,
                bitvectors={
                    0: BitVector.from_bits(
                        [r["i"] % 5 == 0 for r in rows]
                    ),
                    1: BitVector.from_bits([r["i"] >= 10 for r in rows]),
                },
            )
    return ParquetLiteReader(path)


class TestColumnBatch:
    def test_column_backed_materialization(self):
        batch = ColumnBatch.from_columns(
            {"a": [1, 2, 3], "b": ["x", "y", "z"]}, 3, names=["a", "b"]
        )
        assert list(batch.iter_rows()) == [
            {"a": 1, "b": "x"}, {"a": 2, "b": "y"}, {"a": 3, "b": "z"}
        ]

    def test_selection_vector_filters_materialization(self):
        batch = ColumnBatch.from_columns({"a": [1, 2, 3, 4]}, 4,
                                         names=["a"])
        batch.apply_mask(BitVector.from_bits([1, 0, 0, 1]))
        assert [r["a"] for r in batch.iter_rows()] == [1, 4]
        assert batch.selected_count() == 2

    def test_missing_column_reads_null(self):
        batch = ColumnBatch.from_columns({"a": [1]}, 1, names=["a"])
        assert batch.column("ghost") == [None]

    def test_row_backed_preserves_ragged_keys(self):
        rows = [{"a": 1}, {"b": 2}]
        batch = ColumnBatch.from_rows(rows)
        assert list(batch.iter_rows()) == rows
        assert batch.column("a") == [1, None]

    def test_project_shares_columns(self):
        batch = ColumnBatch.from_columns({"a": [1], "b": [2]}, 1,
                                         names=["a", "b"])
        projected = batch.project(["b"])
        assert list(projected.iter_rows()) == [{"b": 2}]

    def test_truncate_selected(self):
        batch = ColumnBatch.from_columns({"a": list(range(6))}, 6,
                                         names=["a"])
        batch.apply_mask(BitVector.from_bits([0, 1, 1, 0, 1, 1]))
        cut = batch.truncate_selected(2)
        assert [r["a"] for r in cut.iter_rows()] == [1, 2]

    def test_sel_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ColumnBatch.from_columns({"a": [1, 2]}, 2, names=["a"],
                                     sel=BitVector.ones(3))


class TestEvaluateBatch:
    """evaluate_batch must agree with per-row evaluate on every value."""

    VALUES = [1, 2, None, True, False, "a", "1", 1.0, 2.5, 0, -3, [1]]

    def _batch(self):
        return ColumnBatch.from_columns(
            {"x": self.VALUES}, len(self.VALUES), names=["x"]
        )

    @pytest.mark.parametrize("sql", [
        "x = 1", "x != 1", "x < 2", "x <= 2", "x > 1", "x >= 1",
        "x = '1'", "x != 'a'", "x = true", "x = false", "x = 1.0",
        "x IS NULL", "x IS NOT NULL", "x LIKE 'a%'", "x LIKE '%1%'",
        "x = 1 AND x < 2", "x = 1 OR x = 'a'", "NOT x = 1",
        "x IN (1, 'a')",
    ])
    def test_matches_scalar_semantics(self, sql):
        where = parse_sql(f"SELECT * FROM t WHERE {sql}").where
        batch = self._batch()
        got = where.evaluate_batch(batch).to_bits()
        want = [
            1 if where.evaluate({"x": v}) else 0 for v in self.VALUES
        ]
        assert got == want, f"{sql}: {got} != {want}"

    def test_generic_fallback_for_exotic_shapes(self):
        # Literal-to-literal comparison exercises the base-class path.
        from repro.engine import Comparison, Literal

        expr = Comparison(Literal(1), "=", Literal(1))
        batch = self._batch()
        assert expr.evaluate_batch(batch).all()


class TestCompileLike:
    PATTERNS = ["", "%", "%%", "abc", "abc%", "%abc", "%abc%", "a%b",
                "a%b%c", "%a%b%", "ha%", "a%%b"]
    VALUES = ["", "a", "abc", "abcd", "xabc", "xabcx", "ab", "acb",
              "a123b", "a1b2c", "ha!", "hah"]

    def test_agrees_with_like_match(self):
        for pattern in self.PATTERNS:
            match = compile_like(pattern)
            for value in self.VALUES:
                assert match(value) == like_match(pattern, value), (
                    f"pattern {pattern!r} on {value!r}"
                )


class TestBatchScans:
    def test_parquet_scan_one_batch_per_group(self, parquet):
        stats = ExecutionStats()
        batches = list(ParquetScan(parquet).batches(stats))
        assert [b.num_rows for b in batches] == [10, 10]
        assert stats.rows_examined == 20
        assert stats.row_groups_total == 2

    def test_skipping_scan_mask_becomes_selection(self, parquet):
        stats = ExecutionStats()
        batches = list(SkippingScan(parquet, [0]).batches(stats))
        assert [b.selected_count() for b in batches] == [2, 2]
        assert stats.tuples_skipped == 16
        assert stats.rows_examined == 4

    def test_skipping_scan_empty_group_never_decodes(self, parquet):
        stats = ExecutionStats()
        batches = list(SkippingScan(parquet, [1]).batches(stats))
        assert len(batches) == 1  # first group skipped whole
        assert stats.row_groups_skipped == 1

    def test_sparse_selection_filters_survivors_row_wise(self, tmp_path):
        """The residual filter's sparse path (few pushdown survivors in a
        big group) must agree with the vectorized path bit-for-bit."""
        rows = [{"i": i, "name": f"u{i}"} for i in range(64)]
        path = tmp_path / "sparse.pql"
        with ParquetLiteWriter(path, infer_schema(rows)) as writer:
            # Two true matches + one false positive in one 64-row group.
            writer.write_row_group(rows, bitvectors={
                0: BitVector.from_indices(64, [3, 40, 41]),
            })
        reader = ParquetLiteReader(path)
        where = parse_sql(
            "SELECT * FROM t WHERE i = 3 OR i = 41").where
        assert 3 * Filter.SPARSE_SELECTION_DIVISOR <= 64  # sparse path
        stats = ExecutionStats()
        plan = Filter(SkippingScan(reader, [0]), where)
        got = [r["i"] for r in plan.execute(stats)]
        assert got == [3, 41]  # false positive 40 removed, order kept

    def test_sideline_scan_batches_preserve_record_dicts(self, tmp_path):
        store = JsonSideStore(tmp_path / "s.jsonl")
        store.append(0, [dump_record({"a": 1}), dump_record({"b": 2})])
        stats = ExecutionStats()
        rows = list(SidelineScan(store).execute(stats))
        assert rows == [{"a": 1}, {"b": 2}]  # ragged keys intact
        assert stats.sideline_records_parsed == 2


class TestLimitEarlyTermination:
    """A satisfied LIMIT must stop decoding remaining row groups; the
    close propagates through ChainScan/Filter/Project into the scans."""

    def _wide_parquet(self, tmp_path, n_groups=10, group_rows=10):
        rows = [{"i": i} for i in range(n_groups * group_rows)]
        tmp_path.mkdir(parents=True, exist_ok=True)
        path = tmp_path / "wide.pql"
        with ParquetLiteWriter(path, infer_schema(rows)) as writer:
            for start in range(0, len(rows), group_rows):
                writer.write_row_group(rows[start:start + group_rows])
        return ParquetLiteReader(path)

    def test_limit_stops_scan_after_first_group(self, tmp_path):
        reader = self._wide_parquet(tmp_path)
        stats = ExecutionStats()
        plan = Limit(ParquetScan(reader), 3)
        rows = list(plan.execute(stats))
        assert [r["i"] for r in rows] == [0, 1, 2]
        # Only the first row group was examined, not all 100 rows.
        assert stats.rows_examined == 10
        assert stats.row_groups_total == 1

    def test_limit_closes_through_chain_filter_project(self, tmp_path):
        reader_a = self._wide_parquet(tmp_path / "a")
        reader_b = self._wide_parquet(tmp_path / "b")
        where = parse_sql("SELECT * FROM t WHERE i >= 0").where
        plan = Limit(
            Project(
                Filter(
                    ChainScan([ParquetScan(reader_a),
                               ParquetScan(reader_b)]),
                    where,
                ),
                ["i"],
            ),
            5,
        )
        stats = ExecutionStats()
        rows = list(plan.execute(stats))
        assert len(rows) == 5
        # One group of reader_a satisfies the limit; reader_b untouched.
        assert stats.row_groups_total == 1
        assert stats.rows_examined == 10

    def test_limit_zero_examines_nothing(self, tmp_path):
        reader = self._wide_parquet(tmp_path)
        stats = ExecutionStats()
        assert list(Limit(ParquetScan(reader), 0).execute(stats)) == []
        assert stats.rows_examined == 0


class TestAdapters:
    def test_row_only_operator_is_wrapped(self):
        class RowsOnly(Operator):
            def execute(self, stats):
                for row in ROWS[:4]:
                    stats.rows_examined += 1
                    yield row

            def describe(self):
                return "RowsOnly"

        stats = ExecutionStats()
        batches = list(RowsOnly().batches(stats))
        assert len(batches) == 4  # one row per batch: laziness preserved
        assert [next(b.iter_rows())["i"] for b in batches] == [0, 1, 2, 3]

    def test_neither_surface_raises(self):
        class Nothing(Operator):
            def describe(self):
                return "Nothing"

        with pytest.raises(TypeError, match="neither"):
            list(Nothing().batches(ExecutionStats()))

    def test_aggregate_over_row_only_child(self):
        class RowsOnly(Operator):
            def execute(self, stats):
                yield from ROWS

            def describe(self):
                return "RowsOnly"

        q = parse_sql("SELECT COUNT(*), SUM(i) FROM t")
        stats = ExecutionStats()
        (row,) = Aggregate(RowsOnly(), q.select).execute(stats)
        assert row == {"count(*)": 20, "sum(i)": sum(r["i"] for r in ROWS)}

    def test_count_only_plan_never_touches_columns(self, parquet):
        """COUNT(*) without WHERE decodes no pages at all."""
        stats = ExecutionStats()
        q = parse_sql("SELECT COUNT(*) FROM t")
        scan = ParquetScan(parquet, columns=[])
        (row,) = Aggregate(scan, q.select).execute(stats)
        assert row == {"count(*)": 20}
        for group in parquet.row_groups():
            assert group._cache == {}  # nothing was decoded
