"""Unit tests for the query planner's skipping decision."""

import pytest

from repro.bitvec import BitVector
from repro.core import clause, exact, key_value
from repro.engine import (
    Catalog,
    CatalogError,
    Executor,
    PlannerError,
    TableEntry,
    parse_sql,
    plan_query,
)
from repro.rawjson import dump_record
from repro.storage import (
    JsonSideStore,
    ParquetLiteWriter,
    infer_schema,
)

ROWS = [{"name": f"u{i}", "age": i % 4, "city": f"c{i % 3}"}
        for i in range(12)]
C_NAME = clause(exact("name", "u3"))
C_AGE = clause(key_value("age", 1))


@pytest.fixture()
def table(tmp_path):
    path = tmp_path / "t.pql"
    schema = infer_schema(ROWS)
    with ParquetLiteWriter(path, schema) as writer:
        writer.write_row_group(
            ROWS,
            bitvectors={
                0: BitVector.from_bits([r["name"] == "u3" for r in ROWS]),
                1: BitVector.from_bits([r["age"] == 1 for r in ROWS]),
            },
        )
    store = JsonSideStore(tmp_path / "side.jsonl")
    store.append(0, [dump_record({"name": "side", "age": 1, "city": "c9"})])
    return TableEntry(
        name="t",
        parquet_paths=[path],
        side_store=store,
        pushdown={C_NAME: 0, C_AGE: 1},
    )


class TestSkippingDecision:
    def test_pushed_conjunct_uses_skipping_and_no_sideline(self, table):
        parsed = parse_sql("SELECT COUNT(*) FROM t WHERE name = 'u3'")
        _, info = plan_query(parsed, table)
        assert info.used_skipping
        assert info.matched_predicate_ids == [0]
        assert not info.scans_sideline

    def test_two_pushed_conjuncts_intersect(self, table):
        parsed = parse_sql(
            "SELECT COUNT(*) FROM t WHERE name = 'u3' AND age = 1"
        )
        _, info = plan_query(parsed, table)
        assert info.matched_predicate_ids == [0, 1]

    def test_unpushed_query_scans_sideline(self, table):
        parsed = parse_sql("SELECT COUNT(*) FROM t WHERE city = 'c9'")
        _, info = plan_query(parsed, table)
        assert not info.used_skipping
        assert info.scans_sideline

    def test_mixed_conjuncts_use_matched_subset(self, table):
        parsed = parse_sql(
            "SELECT COUNT(*) FROM t WHERE name = 'u3' AND city = 'c0'"
        )
        _, info = plan_query(parsed, table)
        assert info.matched_predicate_ids == [0]
        assert not info.scans_sideline

    def test_unsupported_conjunct_does_not_match(self, table):
        parsed = parse_sql("SELECT COUNT(*) FROM t WHERE age > 2")
        _, info = plan_query(parsed, table)
        assert not info.used_skipping

    def test_no_where_scans_everything(self, table):
        parsed = parse_sql("SELECT COUNT(*) FROM t")
        _, info = plan_query(parsed, table)
        assert not info.used_skipping
        assert info.scans_sideline


class TestPlanShapes:
    def test_mixed_aggregate_and_bare_rejected(self, table):
        parsed = parse_sql("SELECT COUNT(*), name FROM t")
        with pytest.raises(PlannerError):
            plan_query(parsed, table)

    def test_empty_table_plans_empty_scan(self, tmp_path):
        entry = TableEntry(name="empty",
                           parquet_paths=[tmp_path / "missing.pql"])
        parsed = parse_sql("SELECT COUNT(*) FROM empty")
        plan, _ = plan_query(parsed, entry)
        from repro.engine.operators import ExecutionStats

        assert list(plan.execute(ExecutionStats()))[0]["count(*)"] == 0


class TestCatalog:
    def test_register_and_lookup(self, table):
        catalog = Catalog()
        catalog.register(table)
        assert catalog.lookup("t") is table
        assert "t" in catalog
        assert catalog.names() == ["t"]

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            Catalog().lookup("nope")

    def test_executor_end_to_end(self, table):
        catalog = Catalog()
        catalog.register(table)
        executor = Executor(catalog)
        result = executor.execute(
            "SELECT COUNT(*) FROM t WHERE name = 'u3'"
        )
        assert result.scalar() == 1
        assert result.plan_info.used_skipping

    def test_executor_counts_sideline(self, table):
        catalog = Catalog()
        catalog.register(table)
        executor = Executor(catalog)
        result = executor.execute(
            "SELECT COUNT(*) FROM t WHERE city = 'c9'"
        )
        assert result.scalar() == 1  # only the sidelined record
        assert result.stats.sideline_records_parsed == 1

    def test_reader_cache_invalidation(self, table):
        readers_a = table.open_readers()
        assert table.open_readers() is readers_a
        table.invalidate()
        readers_b = table.open_readers()
        assert readers_b is not readers_a
