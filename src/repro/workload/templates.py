"""Predicate templates per dataset (paper Table II).

Each template expands into its candidate predicates — e.g. ``stars = <int>``
into five concrete clauses — and the union of expansions forms the dataset's
*predicate pool* from which query workloads draw.

The candidates are aligned with the synthetic generators in
:mod:`repro.data`: every template targets an attribute the generator
produces, with the same candidate counts as Table II.  Timestamp LIKE
templates are anchored for our JSON encoding (e.g. the "second" template
matches the end of the ``time`` string instead of the raw log line's
trailing comma); DESIGN.md §2 records this adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..core.predicates import (
    Clause,
    clause,
    exact,
    key_value,
    prefix,
    substring,
    suffix,
)
from ..data import winlog, ycsb, yelp


@dataclass(frozen=True)
class PredicateTemplate:
    """One Table II row: a parameterized predicate and its value domain."""

    name: str
    dataset: str
    count: int
    make: Callable[[int], Clause]

    def candidates(self) -> List[Clause]:
        """Expand into all candidate clauses."""
        return [self.make(i) for i in range(self.count)]

    def candidate(self, index: int) -> Clause:
        """The *index*-th candidate."""
        if not 0 <= index < self.count:
            raise IndexError(
                f"template {self.name} has {self.count} candidates"
            )
        return self.make(index)


def _yelp_templates() -> List[PredicateTemplate]:
    top_users = yelp.top_user_ids(5)
    return [
        PredicateTemplate(
            "useful = <int>", "yelp", 100,
            lambda i: clause(key_value("useful", i)),
        ),
        PredicateTemplate(
            "cool = <int>", "yelp", 100,
            lambda i: clause(key_value("cool", i)),
        ),
        PredicateTemplate(
            "funny = <int>", "yelp", 100,
            lambda i: clause(key_value("funny", i)),
        ),
        PredicateTemplate(
            "stars = <int>", "yelp", 5,
            lambda i: clause(key_value("stars", i + 1)),
        ),
        PredicateTemplate(
            "user_id = <string>", "yelp", 5,
            lambda i: clause(exact("user_id", top_users[i])),
        ),
        PredicateTemplate(
            "text LIKE <string>", "yelp", len(yelp.TEXT_KEYWORDS),
            lambda i: clause(substring("text", yelp.TEXT_KEYWORDS[i])),
        ),
        PredicateTemplate(
            "date LIKE <year>", "yelp", len(yelp.YEARS),
            lambda i: clause(prefix("date", f"{yelp.YEARS[i]:04d}-")),
        ),
        PredicateTemplate(
            "date LIKE <month>", "yelp", 12,
            lambda i: clause(substring("date", f"-{i + 1:02d}-")),
        ),
    ]


def _winlog_templates() -> List[PredicateTemplate]:
    return [
        PredicateTemplate(
            "info LIKE <string>", "winlog", winlog.INFO_KEYWORD_COUNT,
            lambda i: clause(substring("info", winlog.INFO_KEYWORDS[i])),
        ),
        PredicateTemplate(
            "time LIKE <month>", "winlog", 12,
            lambda i: clause(substring("time", f"-{i + 1:02d}-")),
        ),
        PredicateTemplate(
            "time LIKE <day>", "winlog", 31,
            lambda i: clause(substring("time", f"-{i + 1:02d} ")),
        ),
        PredicateTemplate(
            "time LIKE <hour>", "winlog", 24,
            lambda i: clause(substring("time", f" {i:02d}:")),
        ),
        PredicateTemplate(
            "time LIKE <minute>", "winlog", 60,
            lambda i: clause(substring("time", f":{i:02d}:")),
        ),
        PredicateTemplate(
            "time LIKE <second>", "winlog", 60,
            lambda i: clause(suffix("time", f":{i:02d}")),
        ),
    ]


def _ycsb_templates() -> List[PredicateTemplate]:
    return [
        PredicateTemplate(
            "isActive = <boolean>", "ycsb", 2,
            lambda i: clause(key_value("isActive", i == 0)),
        ),
        PredicateTemplate(
            "linear_score = <int>", "ycsb", 100,
            lambda i: clause(key_value("linear_score", i)),
        ),
        PredicateTemplate(
            "weighted_score = <int>", "ycsb", 100,
            lambda i: clause(key_value("weighted_score", i)),
        ),
        PredicateTemplate(
            "phone_country = <string>", "ycsb", len(ycsb.PHONE_COUNTRIES),
            lambda i: clause(exact("phone_country", ycsb.PHONE_COUNTRIES[i][0])),
        ),
        PredicateTemplate(
            "age_group = <string>", "ycsb", len(ycsb.AGE_GROUPS),
            lambda i: clause(exact("age_group", ycsb.AGE_GROUPS[i][0])),
        ),
        PredicateTemplate(
            "age_by_group = <int>", "ycsb", 100,
            lambda i: clause(key_value("age_by_group", i)),
        ),
        PredicateTemplate(
            "url_domain LIKE <string>", "ycsb", len(ycsb.URL_DOMAINS),
            lambda i: clause(substring("url", f".{ycsb.URL_DOMAINS[i]}/")),
        ),
        PredicateTemplate(
            "url_site LIKE <string>", "ycsb", len(ycsb.URL_SITES),
            lambda i: clause(substring("url", f"//{ycsb.URL_SITES[i]}.")),
        ),
        PredicateTemplate(
            "email LIKE <string>", "ycsb", len(ycsb.EMAIL_PROVIDERS),
            lambda i: clause(substring("email", f"@{ycsb.EMAIL_PROVIDERS[i]}")),
        ),
    ]


_BUILDERS: Dict[str, Callable[[], List[PredicateTemplate]]] = {
    "yelp": _yelp_templates,
    "winlog": _winlog_templates,
    "ycsb": _ycsb_templates,
}


def templates_for(dataset: str) -> List[PredicateTemplate]:
    """All Table II templates for *dataset*."""
    try:
        return _BUILDERS[dataset]()
    except KeyError:
        known = ", ".join(sorted(_BUILDERS))
        raise KeyError(f"unknown dataset {dataset!r}; known: {known}") from None


def table2_summary() -> List[Dict[str, object]]:
    """Rows mirroring Table II: dataset, template, #candidates."""
    rows: List[Dict[str, object]] = []
    for dataset in ("yelp", "winlog", "ycsb"):
        for template in templates_for(dataset):
            rows.append(
                {
                    "dataset": dataset,
                    "template": template.name,
                    "candidates": template.count,
                }
            )
    return rows
