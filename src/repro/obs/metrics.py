"""Thread-safe metrics registry: counters, gauges, latency histograms.

The observability substrate every hot path reports into — loader chunk
ingest, pipeline seals, ``SkippingScan`` row-group accounting, snapshot
cache hits, admission pressure, socket traffic.  Two design rules keep
it honest with the rest of the codebase:

* **Injectable instances, no globals.**  A :class:`Metrics` registry is
  passed down constructor chains (session → server → loader/executor),
  never read from module state, so DET-checked modules stay
  deterministic: two runs with two registries share nothing.
* **Near-zero overhead when disabled.**  Every component defaults to
  :meth:`Metrics.null`, whose instruments are shared no-op singletons —
  an ``inc()`` on the null path is one attribute-free method call with
  an empty body, and instrument lookup returns the same object every
  time (no per-call allocation; asserted by the obs test suite).

Instruments are exact under concurrency: each one owns a leaf lock (no
instrument ever acquires another lock while held), so N router threads
incrementing one counter lose no updates — the obs tests assert exact
totals.  Snapshots (:meth:`Metrics.snapshot`) are plain JSON-able dicts;
:mod:`repro.obs.export` renders them as Prometheus text.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.sanitizer import make_lock

#: Default fixed buckets for latency histograms, in seconds.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing count (events, rows, bytes)."""

    def __init__(self, name: str):
        self.name = name
        self._lock = make_lock("obs.Counter._lock")
        self._value = 0  # guarded-by: _lock

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (>= 0) to the counter."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down (queue depth, active slots)."""

    def __init__(self, name: str):
        self.name = name
        self._lock = make_lock("obs.Gauge._lock")
        self._value = 0.0  # guarded-by: _lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A fixed-bucket distribution (latencies, sizes).

    Buckets are upper bounds in ascending order; an observation lands in
    the first bucket whose bound is >= the value, or the implicit
    ``+Inf`` overflow bucket.  Bounds are fixed at construction — no
    rebucketing, no allocation per observation.
    """

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(
                f"histogram buckets must be non-empty ascending bounds, "
                f"got {buckets!r}"
            )
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self._lock = make_lock("obs.Histogram._lock")
        # One slot per bound plus the +Inf overflow slot.
        self._counts = [0] * (len(self.bounds) + 1)  # guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_right(self.bounds, value)
        if index > 0 and self.bounds[index - 1] == value:
            index -= 1  # bounds are inclusive upper edges
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> Dict[str, object]:
        """Bucket bounds, per-bucket counts, sum, and count as JSON."""
        with self._lock:
            return {
                "le": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }


class Metrics:
    """A named-instrument registry; one per deployment, injected down.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the same instrument for the same name afterwards, so callers cache
    instruments at construction time and hot loops touch only the
    instrument itself.
    """

    def __init__(self) -> None:
        self._lock = make_lock("obs.Metrics._lock")
        self._counters: Dict[str, Counter] = {}  # guarded-by: _lock
        self._gauges: Dict[str, Gauge] = {}  # guarded-by: _lock
        self._histograms: Dict[str, Histogram] = {}  # guarded-by: _lock

    @property
    def enabled(self) -> bool:
        """False on the no-op registry; real registries record."""
        return True

    @staticmethod
    def null() -> "Metrics":
        """The shared no-op registry (the default everywhere)."""
        return NULL_METRICS

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter registered under *name* (created on first use)."""
        # Subscript (not .get) lookups keep the registry lock a leaf in
        # the static lock graph: an attribute-call under the lock would
        # union over every project method of the same name.
        with self._lock:
            try:
                return self._counters[name]
            except KeyError:
                instrument = Counter(name)
                self._counters[name] = instrument
                return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under *name* (created on first use)."""
        with self._lock:
            try:
                return self._gauges[name]
            except KeyError:
                instrument = Gauge(name)
                self._gauges[name] = instrument
                return instrument

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """The histogram under *name* (created on first use).

        *buckets* only applies at creation; a later lookup with
        different bounds returns the existing instrument unchanged.
        """
        with self._lock:
            try:
                return self._histograms[name]
            except KeyError:
                instrument = Histogram(
                    name, buckets if buckets is not None
                    else DEFAULT_LATENCY_BUCKETS,
                )
                self._histograms[name] = instrument
                return instrument

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Every instrument's current value as one JSON-able document."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "counters": {c.name: c.value for c in counters},
            "gauges": {g.name: g.value for g in gauges},
            "histograms": {h.name: h.snapshot() for h in histograms},
        }


class _NullCounter:
    """No-op counter: one shared instance, allocation-free ``inc``."""

    __slots__ = ()
    name = "null"

    def inc(self, amount: int = 1) -> None:
        pass

    @property
    def value(self) -> int:
        return 0


class _NullGauge:
    """No-op gauge: one shared instance, allocation-free mutators."""

    __slots__ = ()
    name = "null"

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


class _NullHistogram:
    """No-op histogram: one shared instance, allocation-free ``observe``."""

    __slots__ = ()
    name = "null"
    bounds: Tuple[float, ...] = ()

    def observe(self, value: float) -> None:
        pass

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    def snapshot(self) -> Dict[str, object]:
        return {"le": [], "counts": [], "sum": 0.0, "count": 0}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetrics(Metrics):
    """The disabled registry: every lookup returns a shared no-op.

    Instruments are singletons, so hot-path code written against a real
    registry (cache the instrument, call ``inc``/``observe``) costs one
    empty method call when observability is off — and allocates nothing,
    which the obs test suite asserts with ``tracemalloc``.
    """

    def __init__(self) -> None:
        # No locks, no dicts: the null registry holds no state at all.
        pass

    @property
    def enabled(self) -> bool:
        return False

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE  # type: ignore[return-value]

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return _NULL_HISTOGRAM  # type: ignore[return-value]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: The shared disabled registry (what ``Metrics.null()`` returns).
NULL_METRICS = NullMetrics()


def resolve_metrics(metrics: Optional[Metrics]) -> Metrics:
    """``metrics`` if given, else the shared null registry."""
    return metrics if metrics is not None else NULL_METRICS
