"""Property-based test of CIAO's central client-side invariant.

Paper §IV-B: raw pattern matching may produce false *positives* but never
false *negatives* — if a record semantically satisfies a supported
predicate, the compiled pattern search over its serialized form must match.
Partial loading would otherwise silently drop query answers, so this is the
single most important property in the system.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Clause,
    clause,
    compile_clause,
    compile_predicate,
    exact,
    key_present,
    key_value,
    prefix,
    substring,
    suffix,
)
from repro.rawjson import dump_record

COLUMNS = ["name", "age", "text", "email", "nested", "weird key"]

# Field values exercise escaping: quotes, backslashes, newlines, unicode.
field_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10_000, max_value=10_000),
    st.text(max_size=25),
    st.lists(st.text(max_size=8), max_size=3),
    st.dictionaries(st.text(max_size=6), st.integers(), max_size=2),
)

records = st.dictionaries(
    st.sampled_from(COLUMNS), field_values, max_size=len(COLUMNS)
)

operand_text = st.text(min_size=1, max_size=12)


@st.composite
def simple_predicates(draw):
    column = draw(st.sampled_from(COLUMNS))
    kind = draw(st.sampled_from(
        ["exact", "substring", "prefix", "suffix", "present", "kv_int",
         "kv_bool"]
    ))
    if kind == "exact":
        return exact(column, draw(operand_text))
    if kind == "substring":
        return substring(column, draw(operand_text))
    if kind == "prefix":
        return prefix(column, draw(operand_text))
    if kind == "suffix":
        return suffix(column, draw(operand_text))
    if kind == "present":
        return key_present(column)
    if kind == "kv_int":
        return key_value(
            column, draw(st.integers(min_value=-9999, max_value=9999))
        )
    return key_value(column, draw(st.booleans()))


@given(records, simple_predicates())
@settings(max_examples=500)
def test_no_false_negatives_simple(record, predicate):
    if predicate.evaluate(record):
        raw = dump_record(record)
        assert compile_predicate(predicate).match(raw), (
            f"FALSE NEGATIVE: {predicate.sql()} on {raw}"
        )


@given(records, st.lists(simple_predicates(), min_size=1, max_size=4))
@settings(max_examples=300)
def test_no_false_negatives_disjunction(record, predicates):
    c = Clause(tuple(predicates))
    if c.evaluate(record):
        raw = dump_record(record)
        assert compile_clause(c).match(raw), (
            f"FALSE NEGATIVE: {c.sql()} on {raw}"
        )


@st.composite
def planted_match_cases(draw):
    """Records constructed to satisfy the predicate — denser positives
    than uniform sampling would give."""
    column = draw(st.sampled_from(COLUMNS))
    operand = draw(operand_text)
    pad_before = draw(st.text(max_size=10))
    pad_after = draw(st.text(max_size=10))
    kind = draw(st.sampled_from(["exact", "substring", "prefix", "suffix"]))
    if kind == "exact":
        pred, value = exact(column, operand), operand
    elif kind == "substring":
        pred = substring(column, operand)
        value = pad_before + operand + pad_after
    elif kind == "prefix":
        pred, value = prefix(column, operand), operand + pad_after
    else:
        pred, value = suffix(column, operand), pad_before + operand
    record = draw(records)
    record[column] = value
    return pred, record


@given(planted_match_cases())
@settings(max_examples=500)
def test_no_false_negatives_on_planted_matches(case):
    predicate, record = case
    assert predicate.evaluate(record)
    raw = dump_record(record)
    assert compile_predicate(predicate).match(raw), (
        f"FALSE NEGATIVE: {predicate.sql()} on {raw}"
    )


@given(records, simple_predicates())
@settings(max_examples=300)
def test_matcher_is_deterministic(record, predicate):
    raw = dump_record(record)
    spec = compile_predicate(predicate)
    assert spec.match(raw) == spec.match(raw)


@given(records, st.lists(simple_predicates(), min_size=1, max_size=3))
@settings(max_examples=200)
def test_clause_matcher_closure_agrees_with_match(record, predicates):
    c = Clause(tuple(predicates))
    compiled = compile_clause(c)
    raw = dump_record(record)
    assert compiled.matcher()(raw) == compiled.match(raw)
