"""Unit tests for the volcano operators, especially SkippingScan."""

import pytest

from repro.bitvec import BitVector
from repro.engine import (
    Aggregate,
    ChainScan,
    ExecutionStats,
    Filter,
    Limit,
    ParquetScan,
    Project,
    SidelineScan,
    SkippingScan,
    parse_sql,
)
from repro.engine.operators import Operator
from repro.rawjson import dump_record
from repro.storage import (
    JsonSideStore,
    ParquetLiteReader,
    ParquetLiteWriter,
    infer_schema,
)

ROWS = [{"i": i, "name": f"u{i}", "flag": i % 2 == 0} for i in range(20)]


class ListScan(Operator):
    """Test helper: scan over in-memory rows."""

    def __init__(self, rows):
        self._rows = rows

    def execute(self, stats):
        for row in self._rows:
            stats.rows_examined += 1
            yield row

    def describe(self):
        return "ListScan"


@pytest.fixture()
def parquet(tmp_path):
    """Two row groups of 10 rows with bit-vectors for predicates 0/1."""
    path = tmp_path / "t.pql"
    schema = infer_schema(ROWS)
    with ParquetLiteWriter(path, schema) as writer:
        for start in (0, 10):
            rows = ROWS[start:start + 10]
            writer.write_row_group(
                rows,
                bitvectors={
                    # predicate 0: i % 5 == 0; predicate 1: i >= 10
                    0: BitVector.from_bits(
                        [r["i"] % 5 == 0 for r in rows]
                    ),
                    1: BitVector.from_bits([r["i"] >= 10 for r in rows]),
                },
                source_chunk_id=start // 10,
            )
    return ParquetLiteReader(path)


class TestParquetScan:
    def test_full_scan(self, parquet):
        stats = ExecutionStats()
        rows = list(ParquetScan(parquet).execute(stats))
        assert len(rows) == 20
        assert stats.rows_examined == 20
        assert stats.row_groups_total == 2

    def test_projection(self, parquet):
        stats = ExecutionStats()
        rows = list(ParquetScan(parquet, columns=["i"]).execute(stats))
        assert set(rows[0]) == {"i"}


class TestSkippingScan:
    def test_single_predicate(self, parquet):
        stats = ExecutionStats()
        rows = list(SkippingScan(parquet, [0]).execute(stats))
        assert sorted(r["i"] for r in rows) == [0, 5, 10, 15]
        assert stats.tuples_skipped == 16
        assert stats.used_data_skipping

    def test_intersection_of_two_predicates(self, parquet):
        stats = ExecutionStats()
        rows = list(SkippingScan(parquet, [0, 1]).execute(stats))
        assert sorted(r["i"] for r in rows) == [10, 15]

    def test_whole_group_skipped(self, parquet):
        # Predicate 1 is all-zero in the first row group.
        stats = ExecutionStats()
        rows = list(SkippingScan(parquet, [1]).execute(stats))
        assert sorted(r["i"] for r in rows) == list(range(10, 20))
        assert stats.row_groups_skipped == 1

    def test_missing_vector_falls_back_to_full_scan(self, parquet):
        stats = ExecutionStats()
        rows = list(SkippingScan(parquet, [7]).execute(stats))
        assert len(rows) == 20  # soundness first
        assert stats.tuples_skipped == 0

    def test_requires_predicates(self, parquet):
        with pytest.raises(ValueError):
            SkippingScan(parquet, [])


class TestSidelineScan:
    def test_parses_raw_records(self, tmp_path):
        store = JsonSideStore(tmp_path / "s.jsonl")
        store.append(0, [dump_record(r) for r in ROWS[:3]])
        stats = ExecutionStats()
        rows = list(SidelineScan(store).execute(stats))
        assert len(rows) == 3
        assert stats.sideline_records_parsed == 3
        assert stats.scanned_sideline


class TestComposition:
    def test_filter(self):
        stats = ExecutionStats()
        q = parse_sql("SELECT * FROM t WHERE i = 3")
        rows = list(Filter(ListScan(ROWS), q.where).execute(stats))
        assert [r["i"] for r in rows] == [3]

    def test_project(self):
        stats = ExecutionStats()
        rows = list(
            Project(ListScan(ROWS), ["name"]).execute(stats)
        )
        assert rows[0] == {"name": "u0"}

    def test_limit(self):
        stats = ExecutionStats()
        rows = list(Limit(ListScan(ROWS), 4).execute(stats))
        assert len(rows) == 4
        assert stats.rows_examined == 4  # early termination

    def test_limit_zero(self):
        stats = ExecutionStats()
        assert list(Limit(ListScan(ROWS), 0).execute(stats)) == []

    def test_chain(self):
        stats = ExecutionStats()
        rows = list(
            ChainScan([ListScan(ROWS[:5]), ListScan(ROWS[5:])])
            .execute(stats)
        )
        assert len(rows) == 20

    def test_describe_compose(self, parquet):
        plan = Filter(
            SkippingScan(parquet, [0]),
            parse_sql("SELECT * FROM t WHERE i = 0").where,
        )
        text = plan.describe()
        assert "SkippingScan" in text and "Filter" in text


class TestAggregate:
    def test_count_star_counts_everything(self):
        stats = ExecutionStats()
        q = parse_sql("SELECT COUNT(*) FROM t")
        (row,) = Aggregate(ListScan(ROWS), q.select).execute(stats)
        assert row == {"count(*)": 20}

    def test_column_aggregates_ignore_nulls(self):
        rows = [{"x": 1}, {"x": None}, {"x": 3}]
        q = parse_sql("SELECT COUNT(x), SUM(x), AVG(x), MIN(x), MAX(x) "
                      "FROM t")
        stats = ExecutionStats()
        (row,) = Aggregate(ListScan(rows), q.select).execute(stats)
        assert row["count(x)"] == 2
        assert row["sum(x)"] == 4
        assert row["avg(x)"] == 2
        assert row["min(x)"] == 1
        assert row["max(x)"] == 3

    def test_empty_input_aggregates(self):
        q = parse_sql("SELECT COUNT(*), SUM(x), MIN(x) FROM t")
        stats = ExecutionStats()
        (row,) = Aggregate(ListScan([]), q.select).execute(stats)
        assert row["count(*)"] == 0
        assert row["sum(x)"] is None
        assert row["min(x)"] is None

    def test_rejects_bare_columns(self):
        q = parse_sql("SELECT a FROM t")
        with pytest.raises(ValueError):
            Aggregate(ListScan(ROWS), q.select)


class TestStatsMerge:
    def test_merge_accumulates(self):
        a = ExecutionStats(rows_examined=3, used_data_skipping=True)
        b = ExecutionStats(rows_examined=4, tuples_skipped=7)
        a.merge(b)
        assert a.rows_examined == 7
        assert a.tuples_skipped == 7
        assert a.used_data_skipping
