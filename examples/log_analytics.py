"""Log analytics: the paper's motivating data-center scenario.

A central log server collects syslog-style events from many machines.
Analysts repeatedly filter on components, log levels, and message
keywords; most events are never touched by any query.  CIAO pushes the hot
predicates to the log shippers and the server loads only what the workload
can reach — this example sweeps the client budget (one `CiaoSession` per
sweep point, the source sampled once) and prints how loading and query
time respond (a miniature of the paper's Fig. 3).

Run:  python examples/log_analytics.py
"""

import time

from repro.api import Budget, CiaoSession, LineSource
from repro.data import make_generator
from repro.workload import table3_workload

N_RECORDS = 8000
N_QUERIES = 30
BUDGETS_US = [0.0, 0.5, 1.0, 2.0, 4.0]


def run_budget(budget_us, workload, source):
    """One sweep point: returns (loading_s, query_s, ratio, n_pushed)."""
    with CiaoSession(workload, source=source, seed=2021) as session:
        plan = None
        if budget_us > 0:
            plan = session.plan(Budget(budget_us))
        start = time.perf_counter()
        report = session.load().result()
        loading_s = time.perf_counter() - start

        start = time.perf_counter()
        session.run_workload()
        query_s = time.perf_counter() - start
    return loading_s, query_s, report.loading_ratio, \
        (len(plan) if plan else 0)


def main() -> None:
    generator = make_generator("winlog", seed=2021)
    source = LineSource(generator.raw_lines(N_RECORDS), name="winlog")
    workload = table3_workload(
        "winlog", "A", seed=2021, n_queries=N_QUERIES
    )
    print(
        f"Workload: {len(workload)} queries, "
        f"{len(workload.candidate_pool)} distinct predicates, "
        f"{N_RECORDS} log events\n"
    )
    header = (
        f"{'budget':>8} {'#pushed':>8} {'load ratio':>11} "
        f"{'loading(s)':>11} {'query(s)':>9} {'end-to-end(s)':>14}"
    )
    print(header)
    print("-" * len(header))
    baseline = None
    for budget in BUDGETS_US:
        loading, query, ratio, pushed = run_budget(
            budget, workload, source
        )
        total = loading + query
        if baseline is None:
            baseline = total
        print(
            f"{budget:>7.1f}µ {pushed:>8} {ratio:>11.2f} "
            f"{loading:>11.2f} {query:>9.2f} {total:>11.2f} "
            f"({baseline / total:.1f}x)"
        )


if __name__ == "__main__":
    main()
