"""Unit tests for the selection objective f(S)."""

import pytest

from repro.core import (
    Query,
    SelectionObjective,
    Workload,
    all_subsets,
    clause,
    exact,
    is_submodular_on,
    key_value,
    substring,
)


@pytest.fixture()
def objective(tiny_workload, tiny_selectivities):
    return SelectionObjective(tiny_workload, tiny_selectivities)


class TestValidation:
    def test_missing_selectivities_rejected(self, tiny_workload):
        with pytest.raises(ValueError):
            SelectionObjective(tiny_workload, {})

    def test_out_of_range_selectivities_rejected(self, tiny_workload,
                                                 tiny_selectivities):
        bad = dict(tiny_selectivities)
        bad[next(iter(bad))] = 1.5
        with pytest.raises(ValueError):
            SelectionObjective(tiny_workload, bad)


class TestValue:
    def test_empty_set_is_zero(self, objective):
        assert objective.value(frozenset()) == 0.0

    def test_single_query_formula(self):
        c1, c2 = clause(exact("a", "x")), clause(key_value("b", 1))
        workload = Workload((Query((c1, c2)),))
        objective = SelectionObjective(workload, {c1: 0.2, c2: 0.5})
        assert objective.value({c1}) == pytest.approx(0.8)
        assert objective.value({c1, c2}) == pytest.approx(1 - 0.2 * 0.5)

    def test_clauses_outside_query_do_not_count(self):
        c1, c2 = clause(exact("a", "x")), clause(key_value("b", 1))
        workload = Workload((Query((c1,)),))
        objective = SelectionObjective(workload, {c1: 0.2, c2: 0.5})
        assert objective.value({c2}) == 0.0

    def test_frequency_weighting(self):
        c1, c2 = clause(exact("a", "x")), clause(key_value("b", 1))
        q_hot = Query((c1,), frequency=3.0)
        q_cold = Query((c2,), frequency=1.0)
        workload = Workload((q_hot, q_cold))
        objective = SelectionObjective(workload, {c1: 0.5, c2: 0.5})
        # Hot query contributes 3/4 of the weight.
        assert objective.value({c1}) == pytest.approx(0.75 * 0.5)
        assert objective.value({c2}) == pytest.approx(0.25 * 0.5)

    def test_monotone(self, objective, tiny_workload):
        pool = list(tiny_workload.candidate_pool)
        value = 0.0
        selected = frozenset()
        for c in pool:
            selected = selected | {c}
            new_value = objective.value(selected)
            assert new_value >= value - 1e-12
            value = new_value


class TestMarginalGain:
    def test_matches_value_difference(self, objective, tiny_workload):
        pool = list(tiny_workload.candidate_pool)
        selected = frozenset(pool[:2])
        for candidate in pool[2:]:
            direct = (
                objective.value(selected | {candidate})
                - objective.value(selected)
            )
            assert objective.marginal_gain(selected, candidate) == \
                pytest.approx(direct)

    def test_already_selected_gains_nothing(self, objective, tiny_workload):
        pool = list(tiny_workload.candidate_pool)
        assert objective.marginal_gain(frozenset(pool), pool[0]) == 0.0

    def test_diminishing_returns(self, objective, tiny_workload):
        # The defining property: gain shrinks as the base set grows.
        pool = list(tiny_workload.candidate_pool)
        candidate = pool[-1]
        small = frozenset()
        large = frozenset(pool[:-1])
        assert objective.marginal_gain(small, candidate) >= \
            objective.marginal_gain(large, candidate) - 1e-12


class TestSubmodularity:
    def test_exhaustive_on_tiny_pool(self, objective, tiny_workload):
        subsets = all_subsets(tiny_workload.candidate_pool)
        assert is_submodular_on(objective, subsets)

    def test_is_submodular_on_detects_violations(self):
        # A fake objective that is NOT submodular must be flagged.
        c1, c2 = clause(exact("a", "x")), clause(substring("t", "k"))

        class FakeObjective:
            workload = None

            def value(self, s):
                s = frozenset(s)
                return 1.0 if len(s) == 2 else 0.0  # supermodular

        sets = [frozenset(), frozenset({c1}), frozenset({c2}),
                frozenset({c1, c2})]
        assert not is_submodular_on(FakeObjective(), sets)
