"""Unit tests for the Table II predicate templates."""

import pytest

from repro.workload import table2_summary, templates_for

#: The candidate counts of paper Table II, per dataset and template.
TABLE2 = {
    "yelp": {
        "useful = <int>": 100,
        "cool = <int>": 100,
        "funny = <int>": 100,
        "stars = <int>": 5,
        "user_id = <string>": 5,
        "text LIKE <string>": 5,
        "date LIKE <year>": 14,
        "date LIKE <month>": 12,
    },
    "winlog": {
        "info LIKE <string>": 200,
        "time LIKE <month>": 12,
        "time LIKE <day>": 31,
        "time LIKE <hour>": 24,
        "time LIKE <minute>": 60,
        "time LIKE <second>": 60,
    },
    "ycsb": {
        "isActive = <boolean>": 2,
        "linear_score = <int>": 100,
        "weighted_score = <int>": 100,
        "phone_country = <string>": 3,
        "age_group = <string>": 4,
        "age_by_group = <int>": 100,
        "url_domain LIKE <string>": 12,
        "url_site LIKE <string>": 14,
        "email LIKE <string>": 2,
    },
}


@pytest.mark.parametrize("dataset", sorted(TABLE2))
class TestTable2Alignment:
    def test_template_names_and_counts(self, dataset):
        templates = {t.name: t.count for t in templates_for(dataset)}
        assert templates == TABLE2[dataset]

    def test_candidates_expand_to_count(self, dataset):
        for template in templates_for(dataset):
            candidates = template.candidates()
            assert len(candidates) == template.count
            assert len(set(candidates)) == template.count

    def test_candidate_index_bounds(self, dataset):
        template = templates_for(dataset)[0]
        with pytest.raises(IndexError):
            template.candidate(template.count)


class TestCandidateSemantics:
    def test_yelp_star_values_start_at_one(self):
        template = next(
            t for t in templates_for("yelp") if t.name == "stars = <int>"
        )
        values = {
            t.predicates[0].value for t in template.candidates()
        }
        assert values == {1, 2, 3, 4, 5}

    def test_winlog_month_patterns(self):
        template = next(
            t for t in templates_for("winlog")
            if t.name == "time LIKE <month>"
        )
        first = template.candidate(0).predicates[0]
        assert first.value == "-01-"

    def test_ycsb_boolean_candidates(self):
        template = next(
            t for t in templates_for("ycsb")
            if t.name == "isActive = <boolean>"
        )
        values = {t.predicates[0].value for t in template.candidates()}
        assert values == {True, False}

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            templates_for("postgres")


def test_table2_summary_totals():
    rows = table2_summary()
    assert len(rows) == 8 + 6 + 9
    total = sum(r["candidates"] for r in rows)
    expected = sum(sum(d.values()) for d in TABLE2.values())
    assert total == expected
