"""The runtime lock sanitizer: recording, cycle detection, factories."""

import threading

import pytest

from repro.analysis import (
    LockOrderError,
    make_condition,
    make_lock,
    make_rlock,
    verify_consistent,
)
from repro.analysis.sanitizer import (
    SanitizedCondition,
    SanitizedLock,
    SanitizedRLock,
    acquisition_counts,
    disable,
    enable,
    find_cycle,
    observed_edges,
    reset,
)


@pytest.fixture()
def sanitized():
    """Enable the sanitizer with clean state; restore afterwards."""
    enable()
    reset()
    yield
    reset()
    disable()


def test_factories_plain_when_disabled(monkeypatch):
    monkeypatch.delenv("CIAO_LOCKSAN", raising=False)
    disable()
    assert isinstance(make_lock("t.plain"), type(threading.Lock()))
    assert isinstance(make_rlock("t.plain_r"), type(threading.RLock()))
    assert isinstance(make_condition("t.plain_c"), threading.Condition)


def test_factories_instrumented_when_enabled(sanitized):
    assert isinstance(make_lock("t.a"), SanitizedLock)
    assert isinstance(make_rlock("t.b"), SanitizedRLock)
    assert isinstance(make_condition("t.c"), SanitizedCondition)


def test_nested_acquisition_records_edge(sanitized):
    a, b = make_lock("t.a"), make_lock("t.b")
    with a:
        with b:
            pass
    assert ("t.a", "t.b") in observed_edges()
    assert acquisition_counts() == {"t.a": 1, "t.b": 1}


def test_consistent_order_passes(sanitized):
    a, b = make_lock("t.a"), make_lock("t.b")
    for _ in range(3):
        with a:
            with b:
                pass
    observed = verify_consistent({("t.a", "t.b")})
    assert observed == {("t.a", "t.b")}


def test_both_orders_is_a_cycle(sanitized):
    a, b = make_lock("t.a"), make_lock("t.b")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    with pytest.raises(LockOrderError, match="t.a"):
        verify_consistent(set())


def test_observed_order_against_static_edge_is_a_cycle(sanitized):
    a, b = make_lock("t.a"), make_lock("t.b")
    with b:
        with a:
            pass
    with pytest.raises(LockOrderError):
        verify_consistent({("t.a", "t.b")})


def test_rlock_reentry_records_no_self_edge(sanitized):
    r = make_rlock("t.r")
    with r:
        with r:
            pass
    assert observed_edges() == set()


def test_condition_wait_does_not_poison_the_stack(sanitized):
    cond = make_condition("t.cond")
    inner = make_lock("t.inner")

    def waker():
        with cond:
            cond.notify_all()

    with cond:
        timer = threading.Timer(0.05, waker)
        timer.start()
        cond.wait(timeout=2.0)
        with inner:
            pass
    timer.join()
    assert ("t.cond", "t.inner") in observed_edges()
    verify_consistent(set())  # no spurious cycle from the wait


def test_cross_thread_edges_merge(sanitized):
    a, b = make_lock("t.a"), make_lock("t.b")

    def forward():
        with a:
            with b:
                pass

    thread = threading.Thread(target=forward)
    thread.start()
    thread.join()
    with b:
        with a:
            pass
    with pytest.raises(LockOrderError):
        verify_consistent(set())


def test_find_cycle_simple():
    assert find_cycle({("x", "y"), ("y", "z")}) is None
    cycle = find_cycle({("x", "y"), ("y", "z"), ("z", "x")})
    assert cycle is not None and set(cycle) == {"x", "y", "z"}
