"""Channel core: the ordered-message transport abstraction.

A :class:`Channel` is a one-directional ordered byte-message transport;
everything above it (chunk framing, plan shipping, the service wire) is
payload.  This module holds the abstraction plus the in-process
:class:`MemoryChannel` and the :class:`ChannelDecorator` base the fault/
latency decorators build on.  Concrete transports live beside it —
:mod:`repro.transport.file` (the paper's file-I/O deployment),
:mod:`repro.transport.sockets` (real TCP) — and compose with the
decorators identically, so a seeded lossy link works the same over a
real wire as over an in-memory queue.

Every channel accounts bytes and messages in :class:`ChannelStats` so
experiments can report transfer overhead — bit-vectors add ~1 bit per
record per pushed predicate, one of CIAO's selling points.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, Iterator, Optional, Sequence

#: Sleep between polls in the generic :meth:`Channel.receive_wait` loop.
_POLL_SECONDS = 0.0005


class TransportError(RuntimeError):
    """A transport-level failure (closed socket, oversized frame)."""


class ChannelTimeout(TransportError):
    """A channel's receive deadline elapsed with the peer silent.

    Raised by transports configured with a ``recv_deadline`` (see
    :class:`repro.transport.sockets.SocketChannel`) when a blocking
    receive outlives the deadline.  Distinct from the ``None`` a plain
    *timeout* returns: the deadline is a liveness bound — crossing it
    means the peer should be presumed hung, and the caller should tear
    the conversation down rather than keep waiting.
    """


@dataclass
class ChannelStats:
    """Transfer accounting for one channel."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    #: First transmissions lost on a lossy link (each one was
    #: retransmitted, so drops cost bytes, never data).
    messages_dropped: int = 0

    def record_send(self, size: int) -> None:
        """Account one outgoing message of *size* bytes."""
        self.messages_sent += 1
        self.bytes_sent += size

    def record_receive(self) -> None:
        """Account one delivered message."""
        self.messages_received += 1

    def record_drop(self, size: int) -> None:
        """Account one dropped transmission (its retransmission bytes too)."""
        self.messages_dropped += 1
        self.bytes_sent += size


class Channel(ABC):
    """One-directional ordered message transport."""

    def __init__(self) -> None:
        self.stats = ChannelStats()

    @abstractmethod
    def send(self, payload: bytes) -> None:
        """Enqueue one message."""

    def send_batch(self, payloads: Iterable[bytes]) -> None:
        """Frame several encoded chunks into one message.

        Chunk frames are self-delimiting, so the batch is their plain
        concatenation; one queue put / spool file then carries many
        chunks, amortizing per-message transport overhead.  Receivers
        that care about chunk boundaries use :meth:`drain_chunks`, which
        splits batches back apart; an empty batch sends nothing.
        """
        batch = bytearray()
        for payload in payloads:
            if not isinstance(payload, (bytes, bytearray, memoryview)):
                raise TypeError("channels carry bytes")
            batch += payload
        if batch:
            self.send(bytes(batch))

    def send_frames(self, payloads: Sequence[bytes]) -> None:
        """Send buffered chunk frames as one message.

        The canonical flush for senders that accumulate frames: a single
        frame goes out directly (no copy), several are concatenated via
        :meth:`send_batch`, and an empty buffer sends nothing.
        """
        if len(payloads) == 1:
            self.send(payloads[0])
        elif payloads:
            self.send_batch(payloads)

    @abstractmethod
    def receive(self) -> Optional[bytes]:
        """Dequeue the oldest message, or None if the channel is empty."""

    def receive_wait(self, timeout: Optional[float] = None
                     ) -> Optional[bytes]:
        """Block until a message arrives (or *timeout* seconds pass).

        The generic implementation polls :meth:`receive`; transports
        with a real readiness primitive (sockets) override it.  Returns
        ``None`` on timeout or when the channel can never deliver again
        (:attr:`closed`).
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            payload = self.receive()
            if payload is not None:
                return payload
            if self.closed:
                return None
            if deadline is not None and time.monotonic() >= deadline:
                return None
            time.sleep(_POLL_SECONDS)

    @property
    def closed(self) -> bool:
        """True once the channel can never deliver another message."""
        return False

    def close(self) -> None:
        """Release transport resources (no-op for in-process channels)."""

    def drain(self) -> Iterator[bytes]:
        """Receive until empty."""
        while True:
            payload = self.receive()
            if payload is None:
                return
            yield payload

    def drain_chunks(self) -> Iterator[bytes]:
        """Receive until empty, yielding individual chunk frames.

        The inverse of :meth:`send_batch`: each received message is split
        into its chunk frames (a single-chunk message yields itself), so
        consumers see one chunk per iteration regardless of how the
        sender framed them.  Only valid for channels carrying encoded
        chunks.
        """
        # Imported lazily: the chunk protocol sits above the transport
        # layer in the package graph, and channels stay payload-agnostic
        # except for this one chunk-aware convenience.
        from ..client.protocol import split_frames

        for payload in self.drain():
            for frame in split_frames(payload):
                yield bytes(frame)

    def __len__(self) -> int:
        return self.pending()

    @abstractmethod
    def pending(self) -> int:
        """Number of undelivered messages."""


class MemoryChannel(Channel):
    """In-process FIFO — the fast default for tests and benches."""

    def __init__(self) -> None:
        super().__init__()
        self._queue: Deque[bytes] = deque()

    def send(self, payload: bytes) -> None:
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("channels carry bytes")
        self._queue.append(bytes(payload))
        self.stats.record_send(len(payload))

    def receive(self) -> Optional[bytes]:
        if not self._queue:
            return None
        self.stats.record_receive()
        return self._queue.popleft()

    def pending(self) -> int:
        return len(self._queue)


class ChannelDecorator(Channel):
    """Base for channels that wrap another channel.

    Decorators compose declaratively (see
    :func:`repro.transport.make_channel`): each one adds a transport
    property — loss, latency pricing — while delegating storage to the
    innermost real channel.  The decorator keeps its own
    :class:`ChannelStats` describing what *it* saw; ``inner.stats`` keeps
    the underlying channel's view.
    """

    def __init__(self, inner: Channel):
        super().__init__()
        self.inner = inner

    def send(self, payload: bytes) -> None:
        self.stats.record_send(len(payload))
        self.inner.send(payload)

    def receive(self) -> Optional[bytes]:
        payload = self.inner.receive()
        if payload is not None:
            self.stats.record_receive()
        return payload

    def receive_wait(self, timeout: Optional[float] = None
                     ) -> Optional[bytes]:
        payload = self.inner.receive_wait(timeout)
        if payload is not None:
            self.stats.record_receive()
        return payload

    @property
    def closed(self) -> bool:
        return self.inner.closed

    def close(self) -> None:
        self.inner.close()

    def pending(self) -> int:
        return self.inner.pending()
