"""Unit tests for the eager baseline loader."""

from repro.bitvec import BitVector
from repro.rawjson import JsonChunk, dump_record
from repro.server import EagerLoader
from repro.storage import JsonSideStore, ParquetLiteReader

RECORDS = [{"i": i} for i in range(8)]


def test_loads_everything_and_drops_annotations(tmp_path):
    parquet = tmp_path / "t.pql"
    side = JsonSideStore(tmp_path / "side.jsonl")
    loader = EagerLoader(parquet, side)
    chunk = JsonChunk(0, [dump_record(r) for r in RECORDS])
    chunk.attach(0, BitVector.from_bits([0] * 8))  # would sideline all
    report = loader.ingest(chunk)
    summary = loader.finalize()
    assert report.loaded == 8
    assert side.record_count == 0
    assert summary.loading_ratio == 1.0
    with ParquetLiteReader(loader.parquet_paths[0]) as reader:
        assert reader.total_rows == 8
        # The baseline never stores bit-vectors.
        assert reader.meta.predicate_ids == []


def test_summary_property_mirrors_inner(tmp_path):
    loader = EagerLoader(
        tmp_path / "t.pql", JsonSideStore(tmp_path / "s.jsonl")
    )
    chunk = JsonChunk(0, [dump_record(r) for r in RECORDS])
    loader.ingest(chunk)
    assert loader.summary.received == 8
