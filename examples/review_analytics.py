"""Review analytics: richer SQL over a partially loaded store.

Beyond the paper's COUNT(*) template, the bundled engine runs projections,
aggregates, IN-lists, LIKE anchors, and NULL checks — including queries
that were *not* anticipated by the pushdown plan and therefore fall back
to scanning the raw JSON sideline just in time.  This example loads a
synthetic Yelp stream under a plan tuned for star/keyword dashboards, then
runs a mix of covered and uncovered analytics.

Run:  python examples/review_analytics.py
"""

import tempfile

from repro import (
    Budget,
    CiaoOptimizer,
    CiaoServer,
    CostModel,
    DEFAULT_COEFFICIENTS,
    Query,
    SimulatedClient,
    Workload,
    clause,
    key_value,
    prefix,
    substring,
)
from repro.data import make_generator
from repro.workload import estimate_selectivities

QUERIES = [
    # Covered by the pushdown plan (skipping engages):
    ("5-star volume",
     "SELECT COUNT(*) FROM reviews WHERE stars = 5"),
    ("5-star tasty volume",
     "SELECT COUNT(*) FROM reviews "
     "WHERE stars = 5 AND text LIKE '%tasty000%'"),
    ("2019 5-star feedback",
     "SELECT AVG(useful), MAX(funny) FROM reviews "
     "WHERE stars = 5 AND date LIKE '2019-%'"),
    # Not anticipated by the plan (sideline scanned, still exact):
    ("1-star volume",
     "SELECT COUNT(*) FROM reviews WHERE stars = 1"),
    ("low-feedback reviews",
     "SELECT COUNT(*) FROM reviews WHERE useful < 1 AND funny < 1"),
    ("sample rows",
     "SELECT user_id, stars FROM reviews "
     "WHERE stars = 5 AND text LIKE '%tasty000%' LIMIT 3"),
]


def main() -> None:
    generator = make_generator("yelp", seed=31)

    five_stars = clause(key_value("stars", 5))
    tasty = clause(substring("text", "tasty000"))
    recent = clause(prefix("date", "2019-"))
    workload = Workload(
        (
            Query((five_stars,), name="stars"),
            Query((five_stars, tasty), name="stars+kw"),
            Query((five_stars, recent), name="stars+recent"),
        ),
        dataset="yelp",
    )
    sample = generator.sample(2000)
    plan = CiaoOptimizer(
        workload,
        estimate_selectivities(workload.candidate_pool, sample),
        CostModel(DEFAULT_COEFFICIENTS, generator.average_record_length()),
    ).plan(Budget(2.0))

    with tempfile.TemporaryDirectory() as workdir:
        server = CiaoServer(
            workdir, plan=plan, workload=workload, table_name="reviews"
        )
        client = SimulatedClient("app", plan=plan, chunk_size=1000)
        for chunk in client.process(generator.raw_lines(12_000)):
            server.ingest(chunk)
        summary = server.finalize_loading()
        print(
            f"Loaded {summary.loaded}/{summary.received} reviews "
            f"(ratio {summary.loading_ratio:.2f}), "
            f"{summary.sidelined} sidelined as raw JSON\n"
        )

        for name, sql in QUERIES:
            result = server.query(sql)
            path = (
                "skipping" if result.plan_info.used_skipping
                else "full scan + sideline"
                if result.plan_info.scans_sideline else "full scan"
            )
            if len(result.rows) == 1 and len(result.rows[0]) >= 1:
                payload = ", ".join(
                    f"{k}={v if not isinstance(v, float) else round(v, 2)}"
                    for k, v in result.rows[0].items()
                )
            else:
                payload = f"{len(result.rows)} rows"
            print(f"  {name:<22} [{path:<22}] {payload}")


if __name__ == "__main__":
    main()
