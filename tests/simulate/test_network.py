"""Unit tests for the simulated transport channels."""

import pytest

from repro.simulate import FileChannel, LinkModel, MemoryChannel


@pytest.mark.parametrize("make_channel", [
    lambda tmp: MemoryChannel(),
    lambda tmp: FileChannel(tmp / "spool"),
])
class TestChannelContract:
    def test_fifo_order(self, tmp_path, make_channel):
        channel = make_channel(tmp_path)
        channel.send(b"one")
        channel.send(b"two")
        assert channel.receive() == b"one"
        assert channel.receive() == b"two"
        assert channel.receive() is None

    def test_pending_and_len(self, tmp_path, make_channel):
        channel = make_channel(tmp_path)
        assert len(channel) == 0
        channel.send(b"x")
        assert channel.pending() == 1
        channel.receive()
        assert channel.pending() == 0

    def test_drain(self, tmp_path, make_channel):
        channel = make_channel(tmp_path)
        for i in range(5):
            channel.send(f"m{i}".encode())
        assert [m.decode() for m in channel.drain()] == [
            f"m{i}" for i in range(5)
        ]

    def test_stats(self, tmp_path, make_channel):
        channel = make_channel(tmp_path)
        channel.send(b"abcd")
        channel.send(b"ef")
        channel.receive()
        assert channel.stats.messages_sent == 2
        assert channel.stats.bytes_sent == 6
        assert channel.stats.messages_received == 1

    def test_type_checked(self, tmp_path, make_channel):
        channel = make_channel(tmp_path)
        with pytest.raises(TypeError):
            channel.send("not bytes")


class TestFileChannelPersistence:
    def test_spool_survives_reopen(self, tmp_path):
        a = FileChannel(tmp_path / "spool")
        a.send(b"persisted")
        b = FileChannel(tmp_path / "spool")
        assert b.pending() == 1
        assert b.receive() == b"persisted"


class TestLinkModel:
    def test_transfer_time(self):
        link = LinkModel(bandwidth_mbps=8.0, latency_us=100.0)
        # 1000 bytes = 8000 bits at 8 Mbps = 1000 µs + latency.
        assert link.transfer_time_us(1000) == pytest.approx(1100.0)

    def test_zero_payload_costs_latency(self):
        assert LinkModel(latency_us=50).transfer_time_us(0) == 50

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            LinkModel().transfer_time_us(-1)
