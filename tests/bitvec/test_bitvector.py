"""Unit tests for the packed bit-vector."""

import pytest

from repro.bitvec import BitVector, intersect_all, union_all


class TestConstruction:
    def test_zeros_has_no_set_bits(self):
        bv = BitVector.zeros(17)
        assert len(bv) == 17
        assert bv.count() == 0
        assert not bv.any()

    def test_ones_sets_every_bit(self):
        bv = BitVector.ones(13)
        assert bv.count() == 13
        assert bv.all()

    def test_ones_masks_the_tail_byte(self):
        bv = BitVector.ones(9)
        # Internal bytes beyond bit 8 must be clear or count() would lie.
        assert bv.count() == 9

    def test_from_bits_roundtrip(self):
        bits = [1, 0, 0, 1, 1, 0, 1, 0, 1, 1, 1]
        assert BitVector.from_bits(bits).to_bits() == bits

    def test_from_indices(self):
        bv = BitVector.from_indices(10, [0, 3, 9])
        assert list(bv.iter_set()) == [0, 3, 9]

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            BitVector(-1)

    def test_zero_length_vector(self):
        bv = BitVector(0)
        assert len(bv) == 0
        assert bv.count() == 0
        assert bv.density() == 0.0
        assert not bv.any()

    def test_payload_size_validation(self):
        with pytest.raises(ValueError):
            BitVector(16, b"\x00")  # needs 2 bytes


class TestBitAccess:
    def test_set_get_clear(self):
        bv = BitVector(8)
        bv.set(3)
        assert bv.get(3)
        bv.clear(3)
        assert not bv.get(3)

    def test_setitem_getitem(self):
        bv = BitVector(8)
        bv[2] = True
        assert bv[2]
        bv[-1] = True
        assert bv[7]

    def test_out_of_range_raises(self):
        bv = BitVector(8)
        with pytest.raises(IndexError):
            bv.get(8)
        with pytest.raises(IndexError):
            bv.set(100)


class TestLogicalOps:
    A = [1, 0, 1, 1, 0, 0, 1, 0, 1]
    B = [1, 1, 0, 1, 0, 1, 1, 0, 0]

    def test_and(self):
        got = BitVector.from_bits(self.A) & BitVector.from_bits(self.B)
        assert got.to_bits() == [a & b for a, b in zip(self.A, self.B)]

    def test_or(self):
        got = BitVector.from_bits(self.A) | BitVector.from_bits(self.B)
        assert got.to_bits() == [a | b for a, b in zip(self.A, self.B)]

    def test_xor(self):
        got = BitVector.from_bits(self.A) ^ BitVector.from_bits(self.B)
        assert got.to_bits() == [a ^ b for a, b in zip(self.A, self.B)]

    def test_invert(self):
        got = ~BitVector.from_bits(self.A)
        assert got.to_bits() == [1 - a for a in self.A]

    def test_invert_masks_tail(self):
        inverted = ~BitVector.zeros(9)
        assert inverted.count() == 9

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            BitVector(8) & BitVector(9)

    def test_inplace_intersect(self):
        bv = BitVector.from_bits(self.A)
        bv.intersect_update(BitVector.from_bits(self.B))
        assert bv.to_bits() == [a & b for a, b in zip(self.A, self.B)]

    def test_inplace_union(self):
        bv = BitVector.from_bits(self.A)
        bv.union_update(BitVector.from_bits(self.B))
        assert bv.to_bits() == [a | b for a, b in zip(self.A, self.B)]


class TestQueries:
    def test_count_and_density(self):
        bv = BitVector.from_bits([1, 0, 1, 0])
        assert bv.count() == 2
        assert bv.density() == 0.5

    def test_iter_set_order(self):
        bv = BitVector.from_indices(300, [299, 5, 64, 63])
        assert list(bv.iter_set()) == [5, 63, 64, 299]

    def test_slice(self):
        bv = BitVector.from_bits([1, 0, 1, 1, 0, 1])
        assert bv.slice(2, 5).to_bits() == [1, 1, 0]

    def test_slice_bounds_checked(self):
        with pytest.raises(ValueError):
            BitVector(4).slice(2, 8)

    def test_concat(self):
        a = BitVector.from_bits([1, 0])
        b = BitVector.from_bits([0, 1, 1])
        assert a.concat(b).to_bits() == [1, 0, 0, 1, 1]

    def test_slice_concat_roundtrip_random(self):
        import random
        rng = random.Random(11)
        bits = [rng.randint(0, 1) for _ in range(517)]
        bv = BitVector.from_bits(bits)
        cut = 129
        rejoined = bv.slice(0, cut).concat(bv.slice(cut, len(bits)))
        assert rejoined == bv

    def test_select_gathers_positions(self):
        bv = BitVector.from_bits([1, 0, 1, 1, 0, 1])
        assert bv.select([0, 1, 5]).to_bits() == [1, 0, 1]
        assert bv.select([]).to_bits() == []

    def test_select_matches_naive_random(self):
        import random
        rng = random.Random(23)
        bits = [rng.randint(0, 1) for _ in range(403)]
        bv = BitVector.from_bits(bits)
        positions = sorted(rng.sample(range(403), 97))
        assert bv.select(positions).to_bits() == [
            bits[p] for p in positions
        ]

    def test_select_bounds_checked(self):
        with pytest.raises(IndexError):
            BitVector(4).select([0, 4])


class TestSerialization:
    def test_roundtrip(self):
        bv = BitVector.from_indices(77, [0, 13, 76])
        assert BitVector.from_bytes(bv.to_bytes()) == bv

    def test_serialized_size(self):
        bv = BitVector(16)
        assert bv.serialized_size() == len(bv.to_bytes()) == 4 + 2

    def test_truncated_payload_rejected(self):
        with pytest.raises(ValueError):
            BitVector.from_bytes(b"\x01")

    def test_payload_size_mismatch_rejected(self):
        # 9 declared bits need exactly 2 payload bytes.
        header = (9).to_bytes(4, "little")
        with pytest.raises(ValueError):
            BitVector.from_bytes(header + b"\x00")
        with pytest.raises(ValueError):
            BitVector.from_bytes(header + b"\x00\x00\x00")

    def test_set_tail_padding_bits_rejected(self):
        # 4 declared bits leave the upper nibble as padding; a set bit
        # there means corruption and must fail loudly, not be masked off.
        header = (4).to_bytes(4, "little")
        with pytest.raises(ValueError):
            BitVector.from_bytes(header + b"\x10")
        # Clean padding still decodes.
        assert BitVector.from_bytes(header + b"\x0f").to_bits() == [1] * 4


class TestAggregates:
    def test_intersect_all(self):
        vectors = [
            BitVector.from_bits([1, 1, 1, 0]),
            BitVector.from_bits([1, 0, 1, 1]),
            BitVector.from_bits([1, 1, 0, 1]),
        ]
        assert intersect_all(vectors).to_bits() == [1, 0, 0, 0]

    def test_union_all(self):
        vectors = [
            BitVector.from_bits([1, 0, 0, 0]),
            BitVector.from_bits([0, 0, 1, 0]),
        ]
        assert union_all(vectors).to_bits() == [1, 0, 1, 0]

    def test_empty_sequences_rejected(self):
        with pytest.raises(ValueError):
            intersect_all([])
        with pytest.raises(ValueError):
            union_all([])

    def test_aggregates_do_not_mutate_inputs(self):
        a = BitVector.from_bits([1, 1])
        b = BitVector.from_bits([0, 1])
        intersect_all([a, b])
        union_all([b, a])
        assert a.to_bits() == [1, 1]
        assert b.to_bits() == [0, 1]


class TestEquality:
    def test_equal_and_hash(self):
        a = BitVector.from_bits([1, 0, 1])
        b = BitVector.from_bits([1, 0, 1])
        assert a == b
        assert hash(a) == hash(b)

    def test_copy_is_independent(self):
        a = BitVector.from_bits([1, 0, 1])
        b = a.copy()
        b.set(1)
        assert not a.get(1)

    def test_repr_small_and_large(self):
        assert "101" in repr(BitVector.from_bits([1, 0, 1]))
        assert "length=100" in repr(BitVector(100))
