"""Paper-style tables and series for the benchmark harness.

Each bench prints (and archives under ``benchmarks/results/``) the rows or
series the corresponding paper table/figure reports, so the reproduction
can be compared against the original side by side.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, List, Optional, Sequence

from .runner import RunMetrics

#: Where benches archive their printed output.
RESULTS_DIR = Path(
    os.environ.get("REPRO_RESULTS_DIR", "benchmarks/results")
)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width text table."""
    columns = [
        [str(h)] + [_fmt(row[i]) for row in rows]
        for i, h in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(
                _fmt(cell).ljust(w) for cell, w in zip(row, widths)
            )
        )
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 100 or value == int(value):
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def metrics_table(runs: Sequence[RunMetrics],
                  title: str = "") -> str:
    """The standard end-to-end run table (one row per budget)."""
    headers = [
        "run", "budget(µs)", "#pushed", "partial", "covered",
        "prefilter(s)", "prefilter-wall(s)", "loading(s)", "load-ratio",
        "query(s)", "e2e(s)", "skip-queries",
    ]
    rows = []
    for m in runs:
        rows.append(
            [
                m.label,
                m.budget_us,
                m.n_pushed,
                "yes" if m.partial_loading else "no",
                f"{m.covered_queries}/{m.total_queries}",
                m.prefilter_model_s,
                m.prefilter_wall_s,
                m.loading_wall_s,
                m.loading_ratio,
                m.query_wall_s,
                m.end_to_end_wall_s,
                m.queries_benefiting,
            ]
        )
    table = format_table(headers, rows)
    if title:
        table = f"== {title} ==\n{table}"
    return table


def speedup_summary(baseline: RunMetrics,
                    runs: Sequence[RunMetrics]) -> str:
    """Loading / query / end-to-end speedups vs the zero-budget baseline."""
    lines = ["speedups vs baseline (budget 0):"]
    for m in runs:
        load = _ratio(baseline.loading_wall_s, m.loading_wall_s)
        query = _ratio(baseline.query_wall_s, m.query_wall_s)
        e2e = _ratio(baseline.end_to_end_wall_s, m.end_to_end_wall_s)
        lines.append(
            f"  {m.label}: loading {load}, query {query}, end-to-end {e2e}"
        )
    return "\n".join(lines)


def _ratio(base: float, new: float) -> str:
    if new <= 0:
        return "inf"
    return f"{base / new:.1f}x"


def fleet_table(report: Any) -> str:
    """Per-client + aggregate table for a fleet load.

    *report* is a :class:`repro.fleet.report.FleetReport` (duck-typed so
    the fleet data model has no import edge into the bench layer).
    """
    headers = [
        "client", "platform", "speed", "share", "budget(µs)", "#pushed",
        "assigned", "shipped", "absorbed", "chunks", "µs/rec",
        "rec/s(dev)", "util", "killed",
    ]
    rows = []
    for c in report.clients:
        rows.append(
            [
                c.client_id,
                c.platform,
                c.speed_factor,
                c.share,
                c.budget_us,
                c.n_pushed,
                c.assigned_records,
                c.shipped_records,
                c.absorbed_records,
                c.shipped_chunks,
                c.modeled_us_per_record,
                c.device_records_per_s,
                c.budget_utilization,
                "yes" if c.killed else "no",
            ]
        )
    summary = report.summary
    lines = [
        format_table(headers, rows),
        "",
        f"fleet aggregate: {len(report.clients)} clients, "
        f"{report.total_records} records in {report.wall_seconds:.2f} s "
        f"({report.records_per_second:.0f} rec/s)",
        f"  accounting     : received={summary.received} "
        f"loaded={summary.loaded} sidelined={summary.sidelined} "
        f"malformed={summary.malformed} "
        f"(no record loss: {report.no_record_loss})",
        f"  reassignments  : {report.reassignment_events} events, "
        f"{report.reassigned_records} records"
        + (f" ({', '.join(f'{src}→{dst}:{n}' for src, dst, n in report.reassignments[:6])}"
           + (", ..." if len(report.reassignments) > 6 else "") + ")"
           if report.reassignments else ""),
        f"  re-allocations : {report.realloc_rounds} rounds",
    ]
    return "\n".join(lines)


def load_report_block(report: Any) -> str:
    """Summary block for a unified :class:`repro.api.LoadReport`.

    Duck-typed like :func:`fleet_table` so the API data model has no
    import edge into the bench layer.  Fleet loads include the full
    per-client table; every mode gets the shared accounting footer.
    """
    lines = []
    if report.fleet is not None:
        lines += [fleet_table(report.fleet), ""]
    lines += [
        f"{report.mode} load: {report.received} records in "
        f"{report.wall_seconds:.2f} s — loaded={report.loaded} "
        f"sidelined={report.sidelined} malformed={report.malformed} "
        f"(ratio {report.loading_ratio:.2f})",
        f"  invariants : accounting={report.accounting_ok} "
        f"no-record-loss={report.no_record_loss}",
    ]
    if report.bytes_sent or report.messages_dropped:
        lines.append(
            f"  transport  : {report.bytes_sent} bytes shipped, "
            f"{report.messages_dropped} transmissions dropped/retried"
        )
    if report.client_stats is not None:
        stats = report.client_stats
        lines.append(
            f"  client     : {stats.records} records in {stats.chunks} "
            f"chunks, {stats.modeled_us_per_record():.3f} µs/record "
            f"modeled"
        )
    return "\n".join(lines)


def sweep_payload(sweep: Any) -> dict:
    """JSON-ready form of an end-to-end sweep.

    *sweep* maps workload label → sequence of :class:`RunMetrics`; the
    result maps the same labels to lists of plain dicts (derived
    end-to-end seconds included), ready for :func:`emit_json`.
    """
    import dataclasses

    payload = {}
    for label, runs in sweep.items():
        payload[label] = [
            dict(dataclasses.asdict(m),
                 end_to_end_wall_s=m.end_to_end_wall_s)
            for m in runs
        ]
    return payload


def emit(name: str, text: str,
         results_dir: Optional[Path] = None) -> Path:
    """Print *text* and archive it under the results directory."""
    print()
    print(text)
    directory = results_dir or RESULTS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def emit_json(name: str, payload: Any,
              results_dir: Optional[Path] = None,
              metrics: Any = None) -> Path:
    """Archive *payload* as ``<name>.json`` next to the text reports.

    The machine-readable side of :func:`emit`: benches write their
    headline numbers (speedups, latencies, config) as one JSON document
    per run, so the performance trajectory is diffable across PRs
    instead of living only in prose tables.

    *metrics* — a :class:`repro.obs.Metrics` registry or an
    already-taken snapshot mapping — is embedded under a ``"metrics"``
    key so a bench's counters/histograms travel with its headline
    numbers.  Only dict payloads can carry it.
    """
    import json

    snapshot = _metrics_snapshot(metrics)
    if snapshot is not None and isinstance(payload, dict):
        payload = dict(payload)
        payload["metrics"] = snapshot
    directory = results_dir or RESULTS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )
    return path


def _metrics_snapshot(metrics: Any) -> Optional[dict]:
    """Coerce a Metrics registry or pre-taken snapshot dict (or None)."""
    if metrics is None:
        return None
    if hasattr(metrics, "snapshot"):
        return metrics.snapshot()
    return dict(metrics)


def emit_table(name: str, headers: Sequence[str],
               rows: Sequence[Sequence[Any]],
               results_dir: Optional[Path] = None,
               title: str = "",
               metrics: Any = None,
               extra: Any = None) -> Path:
    """Emit one experiment table as text *and* machine-readable JSON.

    The one-call migration target for txt-only benches: prints and
    archives the fixed-width table via :func:`emit`, and writes a
    ``<name>.json`` sibling with ``{"headers", "rows"}`` (plus *extra*
    merged in and the optional *metrics* snapshot) via
    :func:`emit_json`.  Returns the text report's path.
    """
    table = format_table(headers, rows)
    if title:
        table = f"== {title} ==\n{table}"
    payload = {
        "headers": list(headers),
        "rows": [list(row) for row in rows],
    }
    if title:
        payload["title"] = title
    if isinstance(extra, dict):
        payload.update(extra)
    emit_json(name, payload, results_dir, metrics=metrics)
    return emit(name, table, results_dir)
