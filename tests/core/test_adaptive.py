"""Unit tests for workload-drift tracking and adaptive replanning."""

import pytest

from repro.core import (
    AdaptiveReplanner,
    Budget,
    CostModel,
    DEFAULT_COEFFICIENTS,
    FrequencyTracker,
    Query,
    clause,
    exact,
)

C_A = clause(exact("col", "a"))
C_B = clause(exact("col", "b"))
C_C = clause(exact("col", "c"))
Q_A = Query((C_A,), name="qa")
Q_B = Query((C_B,), name="qb")
Q_AB = Query((C_A, C_B), name="qab")

SELS = {C_A: 0.2, C_B: 0.2, C_C: 0.2}


def provider(clauses):
    return {c: SELS.get(c, 0.2) for c in clauses}


def make_replanner(min_observations=5, budget=10.0):
    model = CostModel(DEFAULT_COEFFICIENTS, 100)
    return AdaptiveReplanner(
        model, provider, Budget(budget), min_observations=min_observations
    )


class TestFrequencyTracker:
    def test_counts_accumulate(self):
        tracker = FrequencyTracker(decay=1.0)
        for _ in range(3):
            tracker.observe(Q_A)
        tracker.observe(Q_B)
        workload = tracker.estimated_workload()
        freqs = {q.name: q.frequency for q in workload}
        assert freqs["qa"] == pytest.approx(3.0)
        assert freqs["qb"] == pytest.approx(1.0)

    def test_decay_forgets_old_traffic(self):
        tracker = FrequencyTracker(decay=0.5)
        tracker.observe(Q_A)
        for _ in range(6):
            tracker.observe(Q_B)
        workload = tracker.estimated_workload()
        freqs = {q.name: q.frequency for q in workload}
        assert freqs["qb"] > 10 * freqs.get("qa", tracker._prune_below)

    def test_pruning_drops_cold_queries(self):
        tracker = FrequencyTracker(decay=0.1, prune_below=0.05)
        tracker.observe(Q_A)
        for _ in range(4):
            tracker.observe(Q_B)
        assert tracker.distinct_queries() == 1

    def test_identical_clause_sets_merge(self):
        tracker = FrequencyTracker(decay=1.0)
        tracker.observe(Query((C_A, C_B), name="x"))
        tracker.observe(Query((C_B, C_A), name="y"))
        assert tracker.distinct_queries() == 1

    def test_empty_tracker_rejects_workload(self):
        with pytest.raises(ValueError):
            FrequencyTracker().estimated_workload()

    def test_validation(self):
        with pytest.raises(ValueError):
            FrequencyTracker(decay=0.0)
        with pytest.raises(ValueError):
            FrequencyTracker(prune_below=-1)


class TestReplanner:
    def test_no_replan_below_min_observations(self):
        replanner = make_replanner(min_observations=10)
        for _ in range(5):
            replanner.observe(Q_A)
        assert replanner.maybe_replan() is None

    def test_first_plan_adopts_hot_clause(self):
        replanner = make_replanner()
        for _ in range(10):
            replanner.observe(Q_A)
        plan = replanner.maybe_replan()
        assert plan is not None
        assert C_A in set(plan.clauses)
        assert replanner.current_plan is plan

    def test_drift_triggers_replan_with_stable_ids(self):
        replanner = make_replanner()
        for _ in range(10):
            replanner.observe(Q_AB)
        first = replanner.maybe_replan()
        assert first is not None
        id_a = first.lookup(C_A).predicate_id

        # Traffic drifts: C_C becomes hot while C_A stays warm.
        q_ac = Query((C_A, C_C), name="qac")
        for _ in range(60):
            replanner.observe(q_ac)
        second = replanner.maybe_replan(threshold=0.01)
        assert second is not None
        assert C_C in set(second.clauses)
        # Retained clause keeps its predicate id; new one gets a fresh id.
        assert second.lookup(C_A).predicate_id == id_a
        new_ids = {e.predicate_id for e in second.entries}
        assert all(
            pid >= id_a for pid in new_ids
        )

    def test_stable_traffic_does_not_replan(self):
        replanner = make_replanner()
        for _ in range(10):
            replanner.observe(Q_A)
        first = replanner.maybe_replan()
        assert first is not None
        for _ in range(10):
            replanner.observe(Q_A)
        assert replanner.maybe_replan() is None

    def test_evaluate_reports_gap_without_mutating(self):
        replanner = make_replanner()
        for _ in range(10):
            replanner.observe(Q_A)
        decision = replanner.evaluate()
        assert decision.benefit_gap > 0
        assert replanner.current_plan is None  # evaluate is pure

    def test_budget_respected_after_replan(self):
        replanner = make_replanner(budget=0.35)
        for _ in range(10):
            replanner.observe(Q_AB)
        plan = replanner.maybe_replan()
        assert plan is not None
        assert plan.total_cost_us() <= 0.35 + 1e-9


class TestServerIntegration:
    def test_update_plan_keeps_answers_exact(self, tmp_path):
        from repro.client import SimulatedClient
        from repro.core import manual_plan
        from repro.rawjson import dump_record
        from repro.server import CiaoServer

        records = [{"col": v, "n": i}
                   for i, v in enumerate(["a", "b", "c"] * 20)]
        lines = [dump_record(r) for r in records]
        model = CostModel(DEFAULT_COEFFICIENTS, 40)
        initial = manual_plan([C_A], provider([C_A]), model)
        server = CiaoServer(tmp_path, plan=initial,
                            workload=None, partial_loading="off")
        client = SimulatedClient("c", plan=initial, chunk_size=20)
        for chunk in client.process(lines):
            server.ingest(chunk)
        server.finalize_loading()

        replanner = make_replanner()
        replanner.adopt(initial)
        for _ in range(10):
            replanner.observe(Q_B)
        new_plan = replanner.maybe_replan()
        assert new_plan is not None
        server.update_plan(new_plan)

        # New-clause query: no stored vectors → full scan, exact answer.
        result_b = server.query("SELECT COUNT(*) FROM t WHERE col = 'b'")
        assert result_b.scalar() == 20
        # The old clause was dropped from the registry with the traffic.
        result_a = server.query("SELECT COUNT(*) FROM t WHERE col = 'a'")
        assert result_a.scalar() == 20
