"""Runtime side of ciaolint's lock-discipline annotation convention.

Two declarations make shared state auditable:

``# guarded-by: _lock`` (comment, on an attribute assignment)
    The attribute is only written while ``self._lock`` is held.  The
    static checker verifies every write site; the comment is the single
    source of truth.

``@guarded_by("_lock")`` (decorator, on a method)
    The method must only be called with ``self._lock`` already held.
    The static checker treats the body as lock-held (so writes to
    guarded attributes inside it are legal) and propagates the
    requirement through the cross-module lock-acquisition graph.

The decorator is intentionally a runtime no-op beyond tagging the
function: enforcement lives in the static checker and in the
``CIAO_LOCKSAN`` runtime sanitizer, so annotated hot paths pay zero
per-call overhead.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)


def guarded_by(*locks: str) -> Callable[[F], F]:
    """Declare that a function requires *locks* (attribute names) held.

    Usage::

        @guarded_by("_lock")
        def _pump_messages(self):  # caller holds self._lock
            ...

    The lock names are recorded on the function as
    ``__guarded_by__`` for introspection (the runtime sanitizer and the
    static checker both read the declaration; only the checker verifies
    call sites).
    """
    if not locks or any(not isinstance(name, str) or not name
                        for name in locks):
        raise ValueError("guarded_by() needs one or more lock names")

    def decorate(func: F) -> F:
        func.__guarded_by__ = tuple(locks)
        return func

    return decorate
