"""Unit tests for cost-model calibration (regression fit + R²)."""

import random

import pytest

from repro.core import (
    CostCoefficients,
    Observation,
    clause,
    compile_clause,
    fit,
    key_value,
    measure_search_costs,
    predict,
    r_squared,
    substring,
)
from repro.rawjson import dump_record


class TestRSquared:
    def test_perfect_fit(self):
        y = [1.0, 2.0, 3.0]
        assert r_squared(y, y) == pytest.approx(1.0)

    def test_mean_prediction_scores_zero(self):
        y = [1.0, 2.0, 3.0]
        assert r_squared(y, [2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_constant_truth(self):
        assert r_squared([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r_squared([2.0, 2.0], [1.0, 3.0]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            r_squared([1.0], [1.0, 2.0])


def synth_observations(coeffs, shapes, noise=0.0, seed=3):
    rng = random.Random(seed)
    observations = []
    for length, record_len, sel in shapes:
        hit = coeffs.k1 * length + coeffs.k2 * record_len
        miss = coeffs.k3 * length + coeffs.k4 * record_len
        cost = sel * hit + (1 - sel) * miss + coeffs.c
        if noise:
            cost *= rng.gauss(1.0, noise)
        observations.append(Observation(length, record_len, sel, cost))
    return observations


SHAPES = [
    (lp, lt, sel)
    for lp in (3, 8, 15, 30)
    for lt in (120, 400, 900)
    for sel in (0.0, 0.2, 0.5, 0.9)
]


class TestFit:
    def test_recovers_exact_coefficients_noiselessly(self):
        truth = CostCoefficients(0.002, 0.0005, 0.004, 0.0009, 0.3)
        report = fit(synth_observations(truth, SHAPES))
        assert report.r_squared == pytest.approx(1.0, abs=1e-9)
        for got, want in zip(report.coefficients.as_vector(),
                             truth.as_vector()):
            assert got == pytest.approx(want, rel=1e-6)

    def test_noise_lowers_r_squared(self):
        truth = CostCoefficients(0.002, 0.0005, 0.004, 0.0009, 0.3)
        clean = fit(synth_observations(truth, SHAPES, noise=0.0))
        noisy = fit(synth_observations(truth, SHAPES, noise=0.4))
        assert noisy.r_squared < clean.r_squared

    def test_negative_solutions_clamped(self):
        # Observations engineered to push an unconstrained solution
        # negative: costs unrelated to features.
        rng = random.Random(1)
        observations = [
            Observation(lp, lt, sel, rng.random())
            for lp, lt, sel in SHAPES
        ]
        report = fit(observations)
        assert all(v >= 0 for v in report.coefficients.as_vector())

    def test_minimum_observation_count(self):
        with pytest.raises(ValueError):
            fit([Observation(1, 1, 0.5, 1.0)] * 4)

    def test_summary_mentions_r_squared(self):
        truth = CostCoefficients(0.002, 0.0005, 0.004, 0.0009, 0.3)
        report = fit(synth_observations(truth, SHAPES))
        assert "R²=" in report.summary()


class TestPredict:
    def test_matches_manual_formula(self):
        coeffs = CostCoefficients(0.01, 0.02, 0.03, 0.04, 0.5)
        obs = Observation(10, 100, 0.25, 0.0)
        (value,) = predict(coeffs, [obs])
        hit = 0.01 * 10 + 0.02 * 100
        miss = 0.03 * 10 + 0.04 * 100
        assert value == pytest.approx(0.25 * hit + 0.75 * miss + 0.5)


class TestMeasure:
    def test_real_measurement_shapes(self):
        records = [
            dump_record({"age": i % 20, "text": "word " * (i % 5 + 1)})
            for i in range(50)
        ]
        compiled = [
            compile_clause(clause(key_value("age", 3))),
            compile_clause(clause(substring("text", "word"))),
            compile_clause(clause(substring("text", "zzz"))),
        ]
        observations = measure_search_costs(compiled, records, repeats=1)
        assert len(observations) == 3
        always, never = observations[1], observations[2]
        assert always.hit_rate == 1.0
        assert never.hit_rate == 0.0
        assert all(obs.mean_cost_us >= 0 for obs in observations)

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            measure_search_costs([], [])
