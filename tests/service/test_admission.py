"""Query admission: slots, per-client bounds, round-robin fairness."""

import threading
import time

import pytest

from repro.service import AdmissionSaturated, QueryAdmission


def _wait_queued(admission, n, timeout=5.0):
    deadline = time.monotonic() + timeout
    while admission.queued < n:
        if time.monotonic() > deadline:
            raise AssertionError(
                f"only {admission.queued} of {n} waiters queued"
            )
        time.sleep(0.001)


class TestSlots:
    def test_unbounded_grants_immediately(self):
        admission = QueryAdmission(max_active=None)
        tickets = [admission.acquire("c", timeout=0) for _ in range(5)]
        assert admission.active == 5
        for ticket in tickets:
            admission.release(ticket)
        assert admission.active == 0
        assert admission.stats.granted == 5
        assert admission.stats.completed == 5

    def test_max_active_bounds_concurrency(self):
        admission = QueryAdmission(max_active=2, max_pending=10)
        first = admission.acquire("c", timeout=0)
        second = admission.acquire("c", timeout=0)
        with pytest.raises(AdmissionSaturated, match="timed out"):
            admission.acquire("c", timeout=0.02)
        admission.release(first)
        third = admission.acquire("c", timeout=0)
        admission.release(second)
        admission.release(third)
        assert admission.stats.peak_active == 2
        assert admission.stats.rejected == 1

    def test_release_unknown_ticket_rejected(self):
        admission = QueryAdmission()
        with pytest.raises(ValueError):
            admission.release(12345)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            QueryAdmission(max_active=0)
        with pytest.raises(ValueError):
            QueryAdmission(max_pending=0)


class TestPerClientBounds:
    def test_saturation_is_per_client(self):
        admission = QueryAdmission(max_active=1, max_pending=1)
        running = admission.acquire("a", timeout=0)

        results = {}

        def waiter(client):
            try:
                ticket = admission.acquire(client, timeout=5.0)
                results[client] = ticket
                admission.release(ticket)
            except AdmissionSaturated:
                results[client] = None

        # One waiter queues for each client; the bound is per client,
        # so a second "a" request saturates while "b" still queues.
        t_a = threading.Thread(target=waiter, args=("a",))
        t_a.start()
        _wait_queued(admission, 1)
        with pytest.raises(AdmissionSaturated, match="max_pending"):
            admission.acquire("a", timeout=0)
        t_b = threading.Thread(target=waiter, args=("b",))
        t_b.start()
        _wait_queued(admission, 2)
        admission.release(running)
        t_a.join(5.0)
        t_b.join(5.0)
        # With the slot cycling, both queued waiters get served; only
        # the over-bound burst request was rejected.
        assert results["a"] is not None
        assert results["b"] is not None
        assert admission.stats.rejected == 1


class TestFairness:
    def test_round_robin_across_clients(self):
        # One slot, a burst from "hog" and one request from "meek":
        # the grant order must alternate clients, not FIFO the hog.
        admission = QueryAdmission(max_active=1, max_pending=8)
        running = admission.acquire("hog", timeout=0)
        order = []
        lock = threading.Lock()
        started = threading.Barrier(4)

        def worker(client):
            started.wait()
            ticket = admission.acquire(client, timeout=10.0)
            with lock:
                order.append(client)
            admission.release(ticket)

        threads = [threading.Thread(target=worker, args=("hog",))
                   for _ in range(2)]
        threads.append(threading.Thread(target=worker, args=("meek",)))
        for t in threads:
            t.start()
        started.wait()
        _wait_queued(admission, 3)
        admission.release(running)
        for t in threads:
            t.join(10.0)
        assert len(order) == 3
        # meek must not be last: round-robin interleaves it ahead of the
        # hog's second request.
        assert order.index("meek") < 2, (
            f"round-robin starved the meek client: grant order {order}"
        )

    def test_stats_peaks(self):
        admission = QueryAdmission(max_active=4)
        tickets = [admission.acquire(f"c{i}", timeout=0)
                   for i in range(4)]
        for ticket in tickets:
            admission.release(ticket)
        assert admission.stats.peak_active == 4
        assert admission.queued == 0
