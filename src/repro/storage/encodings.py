"""Column encodings for Parquet-lite: PLAIN, DICTIONARY, and RLE.

Each encoder turns a list of non-null python values of one
:class:`~repro.storage.schema.ColumnType` into bytes and back.  Null
handling lives one level up (the column chunk stores a presence bit-vector
and only non-null values are encoded), mirroring Parquet's
definition-levels-then-values layout in miniature.

Encoding selection is heuristic, as in real writers: low-cardinality
columns dictionary-encode, runs compress with RLE, everything else stays
plain.  The encodings ablation bench measures the trade-offs.
"""

from __future__ import annotations

import struct
from enum import Enum
from typing import Any, List, Sequence, Tuple

from .schema import ColumnType


class Encoding(Enum):
    """Available physical encodings."""

    PLAIN = "plain"
    DICTIONARY = "dictionary"
    RLE = "rle"


class EncodingError(ValueError):
    """Corrupt encoded payload or unencodable values."""


# ----------------------------------------------------------------------
# Varints (shared by all encodings for counts/lengths/indices)
# ----------------------------------------------------------------------
def write_varint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise EncodingError("varints are unsigned")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    """Read an unsigned varint at *pos*; return (value, next_pos)."""
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise EncodingError("truncated varint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def zigzag_encode(value: int) -> int:
    """Map a signed int to unsigned for varint storage."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


# ----------------------------------------------------------------------
# Plain value codecs per column type
# ----------------------------------------------------------------------
def _encode_plain_values(values: Sequence[Any],
                         column_type: ColumnType) -> bytes:
    out = bytearray()
    if column_type in (ColumnType.STRING, ColumnType.JSON):
        for value in values:
            raw = value.encode("utf-8")
            write_varint(out, len(raw))
            out += raw
    elif column_type is ColumnType.INT64:
        for value in values:
            write_varint(out, zigzag_encode(value))
    elif column_type is ColumnType.FLOAT64:
        out += struct.pack(f"<{len(values)}d", *values)
    elif column_type is ColumnType.BOOL:
        # Bit-pack, little-endian within bytes.
        byte = 0
        for i, value in enumerate(values):
            if value:
                byte |= 1 << (i & 7)
            if i & 7 == 7:
                out.append(byte)
                byte = 0
        if len(values) & 7:
            out.append(byte)
    else:
        raise EncodingError(f"unhandled column type {column_type}")
    return bytes(out)


def read_varint_block(data: bytes, limit: int) -> List[int]:
    """Decode up to *limit* back-to-back varints in one pass.

    The bulk primitive under the batch engine's page decode: one tight
    C-speed iteration over the byte string instead of one
    :func:`read_varint` call (bounds check + tuple allocation) per value.
    Stops after *limit* values; trailing bytes are the caller's problem
    (plain INT64 pages are exactly varints, so there are none).
    """
    prefix = data[:limit] if limit < len(data) else data
    if not prefix or max(prefix) < 0x80:
        # Every varint in range is single-byte (e.g. dictionary indices
        # over < 128 distinct values): the byte string *is* the values.
        return list(prefix)
    values: List[int] = []
    append = values.append
    value = 0
    shift = 0
    for byte in data:
        if byte & 0x80:
            value |= (byte & 0x7F) << shift
            shift += 7
            continue
        append(value | (byte << shift))
        if len(values) == limit:
            break
        value = 0
        shift = 0
    else:
        if shift:
            raise EncodingError("truncated varint")
    return values


def _decode_plain_values(data: bytes, count: int,
                         column_type: ColumnType) -> List[Any]:
    values: List[Any] = []
    pos = 0
    if column_type in (ColumnType.STRING, ColumnType.JSON):
        append = values.append
        size = len(data)
        for _ in range(count):
            if pos >= size:
                raise EncodingError("truncated varint")
            length = data[pos]
            pos += 1
            if length & 0x80:  # multi-byte varint (strings >= 128 bytes)
                length &= 0x7F
                shift = 7
                while True:
                    if pos >= size:
                        raise EncodingError("truncated varint")
                    byte = data[pos]
                    pos += 1
                    length |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
            end = pos + length
            if end > size:
                raise EncodingError("truncated string payload")
            append(data[pos:end].decode("utf-8"))
            pos = end
    elif column_type is ColumnType.INT64:
        values = [
            (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)  # un-zigzag
            for raw in read_varint_block(data, count)
        ]
        if len(values) != count:
            raise EncodingError("truncated varint")
    elif column_type is ColumnType.FLOAT64:
        if len(data) < count * 8:
            raise EncodingError("truncated float64 block")
        values = list(struct.unpack_from(f"<{count}d", data, 0))  # ciaolint: allow[PRO002] -- length prechecked on the line above
    elif column_type is ColumnType.BOOL:
        for i in range(count):
            values.append(bool(data[i >> 3] >> (i & 7) & 1))
    else:
        raise EncodingError(f"unhandled column type {column_type}")
    return values


# ----------------------------------------------------------------------
# Encoders
# ----------------------------------------------------------------------
def encode_plain(values: Sequence[Any], column_type: ColumnType) -> bytes:
    """PLAIN: values back to back in type-specific form."""
    return _encode_plain_values(values, column_type)


def decode_plain(data: bytes, count: int,
                 column_type: ColumnType) -> List[Any]:
    """Inverse of :func:`encode_plain`."""
    return _decode_plain_values(data, count, column_type)


def encode_dictionary(values: Sequence[Any],
                      column_type: ColumnType) -> bytes:
    """DICTIONARY: distinct values (plain) + per-row varint indices."""
    dictionary: List[Any] = []
    index_of = {}
    indices: List[int] = []
    for value in values:
        slot = index_of.get(value)
        if slot is None:
            slot = len(dictionary)
            index_of[value] = slot
            dictionary.append(value)
        indices.append(slot)
    out = bytearray()
    write_varint(out, len(dictionary))
    dict_bytes = _encode_plain_values(dictionary, column_type)
    write_varint(out, len(dict_bytes))
    out += dict_bytes
    for index in indices:
        write_varint(out, index)
    return bytes(out)


def decode_dictionary(data: bytes, count: int,
                      column_type: ColumnType) -> List[Any]:
    """Inverse of :func:`encode_dictionary`."""
    dict_size, pos = read_varint(data, 0)
    dict_len, pos = read_varint(data, pos)
    dict_end = pos + dict_len
    if dict_end > len(data):
        raise EncodingError("truncated dictionary block")
    dictionary = _decode_plain_values(
        data[pos:dict_end], dict_size, column_type
    )
    pos = dict_end
    indices = read_varint_block(data[pos:], count)
    if len(indices) != count:
        raise EncodingError("truncated varint")
    try:
        return [dictionary[index] for index in indices]
    except IndexError:
        raise EncodingError("dictionary index out of range") from None


def encode_rle(values: Sequence[Any], column_type: ColumnType) -> bytes:
    """RLE: (run length, value) pairs; values plain-encoded one at a time."""
    out = bytearray()
    runs: List[Tuple[int, Any]] = []
    for value in values:
        if runs and runs[-1][1] == value and type(runs[-1][1]) is type(value):
            runs[-1] = (runs[-1][0] + 1, value)
        else:
            runs.append((1, value))
    write_varint(out, len(runs))
    for length, value in runs:
        write_varint(out, length)
        encoded = _encode_plain_values([value], column_type)
        write_varint(out, len(encoded))
        out += encoded
    return bytes(out)


def decode_rle(data: bytes, count: int, column_type: ColumnType) -> List[Any]:
    """Inverse of :func:`encode_rle`."""
    n_runs, pos = read_varint(data, 0)
    values: List[Any] = []
    for _ in range(n_runs):
        length, pos = read_varint(data, pos)
        enc_len, pos = read_varint(data, pos)
        enc_end = pos + enc_len
        if enc_end > len(data):
            raise EncodingError("truncated RLE run payload")
        value = _decode_plain_values(
            data[pos:enc_end], 1, column_type
        )[0]
        pos = enc_end
        values.extend([value] * length)
    if len(values) != count:
        raise EncodingError(
            f"RLE decoded {len(values)} values, expected {count}"
        )
    return values


_ENCODERS = {
    Encoding.PLAIN: (encode_plain, decode_plain),
    Encoding.DICTIONARY: (encode_dictionary, decode_dictionary),
    Encoding.RLE: (encode_rle, decode_rle),
}


def encode(values: Sequence[Any], column_type: ColumnType,
           encoding: Encoding) -> bytes:
    """Encode with an explicit encoding."""
    return _ENCODERS[encoding][0](values, column_type)


def decode(data: bytes, count: int, column_type: ColumnType,
           encoding: Encoding) -> List[Any]:
    """Decode *count* values with an explicit encoding."""
    return _ENCODERS[encoding][1](data, count, column_type)


def choose_encoding(values: Sequence[Any],
                    column_type: ColumnType) -> Encoding:
    """Writer heuristic: dictionary for low cardinality, RLE for runs.

    Floats never dictionary-encode (distinctness is near-total and the
    dictionary would just add overhead); booleans are already bit-packed in
    PLAIN so only long runs justify RLE.
    """
    if not values:
        return Encoding.PLAIN
    sample = values if len(values) <= 512 else values[:512]
    distinct = len(set(sample))
    runs = 1 + sum(
        1 for a, b in zip(sample, sample[1:]) if a != b
    )
    if runs <= len(sample) // 4:
        return Encoding.RLE
    if (column_type in (ColumnType.STRING, ColumnType.JSON,
                        ColumnType.INT64)
            and distinct <= len(sample) // 2):
        return Encoding.DICTIONARY
    return Encoding.PLAIN
