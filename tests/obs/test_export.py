"""Exporters: Prometheus text format and JSON snapshots."""

import json

from repro.obs import Metrics, metrics_json, prometheus_text


def loaded_metrics():
    metrics = Metrics()
    metrics.counter("engine.queries").inc(7)
    metrics.gauge("admission.active").set(2)
    hist = metrics.histogram("engine.query_seconds", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)
    return metrics


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        text = prometheus_text(loaded_metrics())
        assert "# TYPE engine_queries counter" in text
        assert "engine_queries 7" in text
        assert "# TYPE admission_active gauge" in text
        assert "admission_active 2" in text

    def test_histogram_cumulative_buckets(self):
        text = prometheus_text(loaded_metrics())
        assert 'engine_query_seconds_bucket{le="0.1"} 1' in text
        assert 'engine_query_seconds_bucket{le="1"} 2' in text
        assert 'engine_query_seconds_bucket{le="+Inf"} 3' in text
        assert "engine_query_seconds_count 3" in text

    def test_accepts_plain_snapshot(self):
        metrics = loaded_metrics()
        assert prometheus_text(metrics.snapshot()) == \
            prometheus_text(metrics)

    def test_name_sanitization(self):
        metrics = Metrics()
        metrics.counter("socket.bytes-out").inc()
        text = prometheus_text(metrics)
        assert "socket_bytes_out 1" in text


class TestMetricsJson:
    def test_round_trips(self):
        doc = json.loads(metrics_json(loaded_metrics()))
        assert doc["counters"]["engine.queries"] == 7
        assert doc["histograms"]["engine.query_seconds"]["count"] == 3

    def test_deterministic_key_order(self):
        metrics = Metrics()
        metrics.counter("b").inc()
        metrics.counter("a").inc()
        text = metrics_json(metrics)
        assert text.index('"a"') < text.index('"b"')
