"""Compactor against live servers: swaps, crash safety, session, STATS."""

import json
import time

import pytest

from repro.api import CiaoSession, DeploymentConfig
from repro.compact import CompactionConfig, Compactor, resolve_compaction
from repro.compact import compactor as compactor_module
from repro.obs import Metrics, QueryLog
from repro.rawjson import JsonChunk, dump_record
from repro.server import CiaoServer

QUERIES = [
    "SELECT COUNT(*) FROM t",
    "SELECT COUNT(*) FROM t WHERE k = 3",
    "SELECT SUM(v) FROM t WHERE k = 1",
]


def make_chunks(n_chunks=12, n_records=20):
    chunks = []
    for cid in range(n_chunks):
        records = [
            dump_record({
                "k": (cid * n_records + i) % 8,
                "v": cid * n_records + i,
            })
            for i in range(n_records)
        ]
        chunks.append(JsonChunk(cid, records))
    return chunks


def answers(server):
    return [server.query(sql).scalar() for sql in QUERIES]


def streaming_server(tmp_path, tag, **kwargs):
    return CiaoServer(tmp_path / tag, n_shards=2, shard_mode="thread",
                      seal_interval=1, **kwargs)


def serial_reference(tmp_path, chunks, tag="ref"):
    server = CiaoServer(tmp_path / tag)
    for chunk in chunks:
        server.ingest(chunk)
    server.finalize_loading()
    return server


class TestMidLoadCompaction:
    def test_swap_preserves_answers_and_load_continues(self, tmp_path):
        chunks = make_chunks()
        qlog = QueryLog()
        server = streaming_server(tmp_path, "stream", query_log=qlog)
        for chunk in chunks[:8]:
            server.ingest(chunk)
        server.quiesce()
        before = answers(server)
        parts_before = len(server.sealed_parts())
        assert parts_before >= 4
        comp = Compactor(
            server,
            config=CompactionConfig(min_observations=1),
            query_log=qlog,
        )
        stats = comp.run_once()
        assert stats is not None
        assert len(server.sealed_parts()) < parts_before
        # Mid-load answers unchanged by the swap, byte-identical.
        assert answers(server) == before
        # Ingest continues across the compacted catalog.
        for chunk in chunks[8:]:
            server.ingest(chunk)
        server.quiesce()
        reference = serial_reference(tmp_path, chunks)
        assert answers(server) == answers(reference)
        server.finalize_loading()
        assert answers(server) == answers(reference)

    def test_warm_snapcache_equals_cold_after_swap(self, tmp_path):
        chunks = make_chunks()
        qlog = QueryLog()
        server = streaming_server(tmp_path, "stream", query_log=qlog)
        for chunk in chunks:
            server.ingest(chunk)
        server.quiesce()
        warm_before = answers(server)  # populates per-part partials
        comp = Compactor(server, config=CompactionConfig(
            min_observations=1), query_log=qlog)
        assert comp.run_once() is not None
        warm_after = answers(server)  # partials for replaced parts gone
        server.table.clear_snapshot_cache()
        cold = answers(server)
        assert warm_before == warm_after == cold

    def test_recluster_improves_zone_pruning(self, tmp_path):
        chunks = make_chunks()
        qlog = QueryLog()
        server = streaming_server(tmp_path, "stream", query_log=qlog)
        for chunk in chunks:
            server.ingest(chunk)
        server.quiesce()
        for _ in range(4):
            server.query("SELECT COUNT(*) FROM t WHERE k = 3")
        comp = Compactor(server, config=CompactionConfig(
            min_observations=1, row_group_rows=20), query_log=qlog)
        stats = comp.run_once()
        assert stats is not None and stats.cluster_by == "k"
        result = server.query("SELECT COUNT(*) FROM t WHERE k = 3")
        skip_units = (result.stats.row_groups_skipped
                      + result.stats.row_groups_pruned_by_zonemap)
        assert skip_units > 0  # clustered groups prune or skip now

    def test_finalized_server_compacts_too(self, tmp_path):
        chunks = make_chunks()
        server = streaming_server(tmp_path, "stream")
        for chunk in chunks:
            server.ingest(chunk)
        server.finalize_loading()
        reference = serial_reference(tmp_path, chunks)
        parts_before = len(server.sealed_parts())
        comp = Compactor(server, config=CompactionConfig())
        assert comp.run_once() is not None
        assert len(server.sealed_parts()) < parts_before
        assert answers(server) == answers(reference)

    def test_serial_loading_server_has_no_sealed_parts(self, tmp_path):
        server = CiaoServer(tmp_path / "serial")
        server.ingest(make_chunks(2)[0])
        assert server.sealed_parts() == []
        comp = Compactor(server)
        assert comp.run_once() is None


class TestCrashSafety:
    def test_compactor_death_mid_rewrite_keeps_old_parts(
            self, tmp_path, monkeypatch):
        chunks = make_chunks()
        qlog = QueryLog()
        metrics = Metrics()
        server = streaming_server(tmp_path, "stream", query_log=qlog)
        for chunk in chunks:
            server.ingest(chunk)
        server.quiesce()
        before = answers(server)
        parts_before = server.sealed_parts()

        def die(*args, **kwargs):
            raise RuntimeError("compactor died mid-rewrite")

        monkeypatch.setattr(compactor_module, "rewrite_parts", die)
        comp = Compactor(server, config=CompactionConfig(
            poll_interval=0.005), metrics=metrics, query_log=qlog)
        comp.start()
        deadline = time.time() + 5.0
        while comp.stats()["errors"] == 0 and time.time() < deadline:
            time.sleep(0.01)
        comp.close()
        stats = comp.stats()
        assert stats["errors"] >= 1
        assert "compactor died" in stats["last_error"]
        assert metrics.counter("compact.errors").value >= 1
        # Catalog still points at the intact old parts.
        assert server.sealed_parts() == parts_before
        assert answers(server) == before
        monkeypatch.undo()

    def test_failed_round_does_not_kill_the_worker(self, tmp_path,
                                                   monkeypatch):
        chunks = make_chunks()
        server = streaming_server(tmp_path, "stream")
        for chunk in chunks:
            server.ingest(chunk)
        server.quiesce()
        calls = {"n": 0}
        real = compactor_module.rewrite_parts

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient")
            return real(*args, **kwargs)

        monkeypatch.setattr(compactor_module, "rewrite_parts", flaky)
        comp = Compactor(server, config=CompactionConfig(
            poll_interval=0.005))
        comp.start()
        deadline = time.time() + 5.0
        while comp.stats()["rewrites"] == 0 and time.time() < deadline:
            time.sleep(0.01)
        comp.close()
        stats = comp.stats()
        assert stats["errors"] >= 1
        assert stats["rewrites"] >= 1  # recovered after the failure


class TestSessionIntegration:
    def test_resolve_compaction_forms(self):
        assert resolve_compaction(None) is None
        assert resolve_compaction(False) is None
        assert isinstance(resolve_compaction(True), CompactionConfig)
        config = CompactionConfig(min_inputs=3)
        assert resolve_compaction(config) is config
        with pytest.raises(TypeError):
            resolve_compaction("yes")

    def test_session_background_compaction_end_to_end(self, tmp_path):
        qlog = QueryLog()
        metrics = Metrics()
        config = DeploymentConfig(mode="sharded", n_shards=2,
                                  shard_mode="thread", seal_interval=1,
                                  chunk_size=20)
        lines = [dump_record({"k": i % 8, "v": i}) for i in range(400)]
        with CiaoSession(
            source=lines, config=config,
            data_dir=tmp_path, metrics=metrics, query_log=qlog,
            compaction=CompactionConfig(min_observations=1,
                                        poll_interval=0.005),
        ) as session:
            job = session.load()
            assert session.compactor is not None
            assert session.compactor.running
            job.result()
            # Give the worker rounds to merge the sealed parts.
            deadline = time.time() + 5.0
            while (session.compaction_stats()["rewrites"] == 0
                    and time.time() < deadline):
                time.sleep(0.01)
            assert session.compaction_stats()["rewrites"] >= 1
            total = session.query("SELECT COUNT(*) FROM t").scalar()
            assert total == 400
            hot = session.query(
                "SELECT COUNT(*) FROM t WHERE k = 3"
            ).scalar()
            assert hot == 50
            assert metrics.counter("compact.parts_written").value >= 1
        assert not (session.compactor is not None
                    and session.compactor.running)

    def test_session_without_compaction_has_no_worker(self, tmp_path):
        lines = [dump_record({"k": i}) for i in range(10)]
        with CiaoSession(source=lines, data_dir=tmp_path) as session:
            session.load().result()
            assert session.compactor is None
            assert session.compaction_stats() is None


class TestServiceStats:
    def test_stats_reply_exposes_compaction_state(self, tmp_path):
        from repro.service import CiaoService, RemoteSession

        qlog = QueryLog()
        config = DeploymentConfig(mode="sharded", n_shards=2,
                                  shard_mode="thread", seal_interval=1,
                                  chunk_size=10)
        session = CiaoSession(
            config=config, data_dir=tmp_path, query_log=qlog,
            compaction=CompactionConfig(poll_interval=0.005),
        )
        service = CiaoService(session)
        try:
            remote = RemoteSession(service.address, client_id="c0")
            remote.load([dump_record({"k": i % 4, "v": i})
                         for i in range(100)], source_id="c0")
            remote.commit()
            assert remote.query("SELECT COUNT(*) FROM t").scalar() == 100
            stats = remote.stats()
            assert "compaction" in stats
            assert stats["compaction"]["running"] is True
            assert "policy" in stats["compaction"]
            remote.close()
        finally:
            service.close()
            session.close()

    def test_stats_without_compaction_has_no_key(self, tmp_path):
        from repro.service import CiaoService

        session = CiaoSession(data_dir=tmp_path)
        service = CiaoService(session)
        try:
            doc = service.stats()
            assert "compaction" not in doc
            assert json.dumps(doc)  # stays JSON-able
        finally:
            service.close()
            session.close()
