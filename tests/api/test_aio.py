"""AsyncSession: the asyncio face over local and remote sessions."""

import asyncio

import pytest

from repro.api import (
    AsyncSession,
    Budget,
    CiaoSession,
    DeploymentConfig,
    Query,
    Workload,
    clause,
    key_value,
)
from repro.api.report import LoadReport
from repro.service import CiaoService, RemoteSession

SEED = 1234
N_RECORDS = 600
SQL_COUNT = "SELECT COUNT(*) FROM t"


@pytest.fixture()
def workload():
    return Workload(
        (Query((clause(key_value("stars", 5)),), name="five"),),
        dataset="yelp",
    )


class TestLocalAsync:
    def test_load_and_query(self, workload, tmp_path):
        async def scenario():
            session = CiaoSession(workload, source="yelp", seed=SEED,
                                  data_dir=tmp_path / "aio")
            async with AsyncSession(session) as aio:
                await aio.plan(Budget(1.0))
                report = await aio.load(n_records=N_RECORDS)
                assert isinstance(report, LoadReport)
                assert report.no_record_loss
                result = await aio.query(SQL_COUNT)
                return result.scalar()

        assert asyncio.run(scenario()) == N_RECORDS

    def test_snapshot_queries_overlap_a_load(self, workload, tmp_path):
        config = DeploymentConfig(mode="sharded", n_shards=2,
                                  shard_mode="thread", chunk_size=50,
                                  seal_interval=2)

        async def scenario():
            session = CiaoSession(workload, source="yelp", seed=SEED,
                                  config=config,
                                  data_dir=tmp_path / "aio-stream")
            async with AsyncSession(session) as aio:
                await aio.plan(Budget(1.0))
                load = asyncio.ensure_future(
                    aio.load(n_records=N_RECORDS)
                )
                # The load starts on an executor thread; queries need
                # the job to exist first.
                while session.last_job is None:
                    await asyncio.sleep(0.005)
                counts = []
                while not load.done():
                    result = await aio.snapshot_query(SQL_COUNT)
                    counts.append(result.scalar())
                report = await load
                final = (await aio.query(SQL_COUNT)).scalar()
                return report, counts, final

        report, counts, final = asyncio.run(scenario())
        assert report.no_record_loss
        assert final == N_RECORDS
        assert all(0 <= c <= N_RECORDS for c in counts)
        assert counts == sorted(counts)

    def test_session_property_exposes_wrapped(self, workload, tmp_path):
        session = CiaoSession(workload, source="yelp", seed=SEED,
                              data_dir=tmp_path / "aio-prop")
        aio = AsyncSession(session)
        assert aio.session is session
        session.close()


class TestRemoteAsync:
    def test_remote_session_adapts(self, workload, tmp_path):
        session = CiaoSession(workload, source="yelp", seed=SEED,
                              data_dir=tmp_path / "aio-remote")
        session.plan(Budget(1.0))

        async def scenario(address):
            remote = RemoteSession(address, client_id="aio", seed=SEED)
            async with AsyncSession(remote) as aio:
                accepted = await aio.load("yelp", n_records=N_RECORDS)
                assert isinstance(accepted, int)
                assert accepted > 0
                report = await aio.commit()
                assert report["received"] == N_RECORDS
                result = await aio.query(SQL_COUNT)
                return result.scalar()

        with CiaoService(session) as service:
            assert asyncio.run(scenario(service.address)) == N_RECORDS
        session.close()
