"""Parallel sharded ingest vs serial ingest, plus bit-vector kernel bench.

Two claims are measured:

1. **Kernel speedup** — the word-level big-int kernels behind
   ``BitVector.intersect_update``/``union_update`` must beat the seed's
   per-byte Python loop by ≥10× at 1M bits.  This is machine-independent
   (both sides run on the same interpreter) and asserted unconditionally.
2. **Ingest throughput** — a 4-shard :class:`ShardedIngestPipeline`
   (process mode: fork workers, true parallelism under the GIL) vs serial
   ``CiaoServer`` ingest of the identical encoded Yelp-style stream,
   in chunks/sec.  The ≥2× assertion is *core-gated*: parallel speedup is
   physics, not software — on a container restricted to fewer than 4 CPUs
   (``len(os.sched_getaffinity(0))``) a 4-shard pipeline cannot double
   throughput, so there the bench asserts a no-pathological-overhead floor
   instead and reports the measured ratio.  Override the threshold with
   ``REPRO_BENCH_MIN_SPEEDUP`` (a float) to pin it in CI.

A third measurement quantifies **batched chunk framing**: shipping
``DEFAULT_SHIP_BATCH`` chunk frames per channel message vs one, over both
in-memory and file-spool channels (the paper's deployment).  Per-message
overhead is what batching amortizes, so the file channel — four syscalls
per message — is where the win lives; the measured delta (archived in
``benchmarks/results/batched_framing.txt``) is why
``DEFAULT_SHIP_BATCH = 8`` is the default, and both this bench's ingest
streams and ``bench_fleet_loading.py`` ship batched.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_parallel_ingest.py``
(set ``REPRO_BENCH_SMOKE=1`` for a <60 s smoke configuration).
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro.bench import emit, emit_json, format_table
from repro.obs import Metrics
from repro.bitvec import BitVector
from repro.client import DEFAULT_SHIP_BATCH, SimulatedClient, encode_chunk
from repro.core import (
    Budget,
    CiaoOptimizer,
    CostModel,
    DEFAULT_COEFFICIENTS,
)
from repro.data import make_generator
from repro.server import CiaoServer
from repro.simulate import FileChannel, MemoryChannel
from repro.workload import estimate_selectivities, table3_workload

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N_RECORDS = 1500 if SMOKE else 6000
CHUNK_SIZE = 250
N_SHARDS = 4
KERNEL_BITS = 1_000_000
SEED = 20260727


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _min_speedup() -> float:
    override = os.environ.get("REPRO_BENCH_MIN_SPEEDUP")
    if override:
        return float(override)
    cores = _effective_cores()
    if cores >= N_SHARDS:
        return 2.0
    if cores >= 2:
        return 1.2
    # Single-core container: parallel ≥ serial is impossible; only guard
    # against pathological pipeline overhead.
    return 0.5


# ----------------------------------------------------------------------
# 1. Bit-vector kernel microbench
# ----------------------------------------------------------------------
def _seed_intersect_update(dst: bytearray, src: bytearray) -> None:
    """The seed's per-byte loop, kept as the baseline under test."""
    for i, byte in enumerate(src):
        dst[i] &= byte


def _seed_union_update(dst: bytearray, src: bytearray) -> None:
    for i, byte in enumerate(src):
        dst[i] |= byte


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bitvector_kernel_speedup(benchmark, results_dir):
    import random

    rng = random.Random(SEED)
    a = BitVector.from_bits(
        rng.getrandbits(1) for _ in range(KERNEL_BITS)
    )
    b = BitVector.from_bits(
        rng.getrandbits(1) for _ in range(KERNEL_BITS)
    )
    a_bytes = bytearray(a.to_bytes()[4:])
    b_bytes = bytearray(b.to_bytes()[4:])

    def kernels():
        work = a.copy()
        work.intersect_update(b)
        work.union_update(b)
        return work

    kernel_seconds = _time(kernels, repeats=5)
    seed_seconds = _time(
        lambda: (
            _seed_intersect_update(bytearray(a_bytes), b_bytes),
            _seed_union_update(bytearray(a_bytes), b_bytes),
        ),
        repeats=3,
    )
    ratio = seed_seconds / kernel_seconds
    lines = [
        f"bit-vector kernels at {KERNEL_BITS} bits "
        f"(intersect_update + union_update):",
        f"  seed per-byte loop : {seed_seconds * 1e3:8.2f} ms",
        f"  word-level kernels : {kernel_seconds * 1e3:8.2f} ms",
        f"  speedup            : {ratio:8.1f}x (floor 10x)",
    ]
    emit("parallel_ingest_kernels", "\n".join(lines), results_dir)
    emit_json("parallel_ingest_kernels", {
        "bits": KERNEL_BITS,
        "seed_seconds": seed_seconds,
        "kernel_seconds": kernel_seconds,
        "speedup": ratio,
        "floor": 10.0,
    }, results_dir)
    run_once(benchmark, kernels)
    assert ratio >= 10.0, (
        f"word-level kernels only {ratio:.1f}x over the per-byte loop"
    )


# ----------------------------------------------------------------------
# 2. Sharded ingest throughput
# ----------------------------------------------------------------------
def _prepare_payloads():
    """Annotated chunk stream, shipped with batched framing.

    The stream is built exactly as a client would emit it: encoded chunk
    frames concatenated ``DEFAULT_SHIP_BATCH`` per message
    (``SimulatedClient.ship(batch_size=...)`` through a channel); the
    server splits the frames back apart on ingest.
    """
    generator = make_generator("yelp", SEED)
    lines = list(generator.raw_lines(N_RECORDS))
    workload = table3_workload("yelp", "A", seed=SEED, n_queries=20)
    sels = estimate_selectivities(
        workload.candidate_pool, generator.sample(min(1000, N_RECORDS))
    )
    model = CostModel(DEFAULT_COEFFICIENTS, 160)
    plan = CiaoOptimizer(workload, sels, model).plan(Budget(20.0))
    client = SimulatedClient("bench", plan=plan, chunk_size=CHUNK_SIZE)
    channel = MemoryChannel()
    n_chunks = client.ship(lines, channel,
                           batch_size=DEFAULT_SHIP_BATCH)
    return plan, workload, list(channel.drain()), n_chunks


def _ingest(tmp_path, tag, plan, workload, payloads, n_shards,
            metrics=None):
    server = CiaoServer(
        tmp_path / tag, plan=plan, workload=workload,
        n_shards=n_shards, shard_mode="process", metrics=metrics,
    )
    start = time.perf_counter()
    for payload in payloads:
        server.ingest(payload)
    summary = server.finalize_loading()
    elapsed = time.perf_counter() - start
    return summary, elapsed


def test_parallel_ingest_speedup(benchmark, tmp_path, results_dir):
    plan, workload, payloads, n_chunks = _prepare_payloads()
    metrics = Metrics()

    def experiment():
        serial_summary, serial_seconds = _ingest(
            tmp_path, "serial", plan, workload, payloads, n_shards=1
        )
        parallel_summary, parallel_seconds = _ingest(
            tmp_path, "parallel", plan, workload, payloads,
            n_shards=N_SHARDS, metrics=metrics,
        )
        return (serial_summary, serial_seconds,
                parallel_summary, parallel_seconds)

    (serial_summary, serial_seconds,
     parallel_summary, parallel_seconds) = run_once(benchmark, experiment)

    serial_rate = n_chunks / serial_seconds
    parallel_rate = n_chunks / parallel_seconds
    speedup = parallel_rate / serial_rate
    floor = _min_speedup()
    cores = _effective_cores()
    lines = [
        f"parallel sharded ingest, yelp-style stream "
        f"({N_RECORDS} records, {n_chunks} chunks of {CHUNK_SIZE}, "
        f"shipped {DEFAULT_SHIP_BATCH} frames/message):",
        f"  effective cores      : {cores}",
        f"  serial ingest        : {serial_rate:8.1f} chunks/s "
        f"({serial_seconds:.2f} s)",
        f"  {N_SHARDS}-shard pipeline     : {parallel_rate:8.1f} chunks/s "
        f"({parallel_seconds:.2f} s)",
        f"  speedup              : {speedup:8.2f}x (floor {floor:.1f}x)",
        f"  accounting           : loaded={parallel_summary.loaded} "
        f"sidelined={parallel_summary.sidelined} "
        f"malformed={parallel_summary.malformed} (quarantined raw)",
    ]
    emit("parallel_ingest_throughput", "\n".join(lines), results_dir)
    emit_json("parallel_ingest_throughput", {
        "records": N_RECORDS,
        "chunks": n_chunks,
        "chunk_size": CHUNK_SIZE,
        "n_shards": N_SHARDS,
        "effective_cores": cores,
        "serial_chunks_per_s": serial_rate,
        "parallel_chunks_per_s": parallel_rate,
        "speedup": speedup,
        "floor": floor,
        "loaded": parallel_summary.loaded,
        "sidelined": parallel_summary.sidelined,
        "malformed": parallel_summary.malformed,
    }, results_dir, metrics=metrics)

    # Identical accounting regardless of shard count.
    assert parallel_summary.received == serial_summary.received
    assert parallel_summary.loaded == serial_summary.loaded
    assert parallel_summary.sidelined == serial_summary.sidelined
    assert parallel_summary.malformed == serial_summary.malformed
    assert speedup >= floor, (
        f"{N_SHARDS}-shard pipeline only {speedup:.2f}x over serial "
        f"(floor {floor:.1f}x on {cores} cores)"
    )


# ----------------------------------------------------------------------
# 3. Batched chunk framing amortization
# ----------------------------------------------------------------------
def _frame_roundtrip(frames, channel_factory, batch_size):
    """Ship pre-encoded frames at *batch_size* and drain them back.

    Isolates the transport + framing cost (annotation and parsing are
    excluded): sender-side message sends, receiver-side frame splits.
    Returns (seconds, messages, frames_received).
    """
    channel = channel_factory()
    start = time.perf_counter()
    batch = []
    for frame in frames:
        batch.append(frame)
        if len(batch) >= batch_size:
            channel.send_frames(batch)
            batch.clear()
    channel.send_frames(batch)
    received = sum(1 for _ in channel.drain_chunks())
    elapsed = time.perf_counter() - start
    return elapsed, channel.stats.messages_sent, received


#: Small-chunk stream for the framing bench: per-message overhead is a
#: fixed cost, so its relative weight — and batching's win — grows as
#: chunks shrink.
FRAMING_SMALL_CHUNK = 25


def test_batched_framing_amortization(benchmark, tmp_path, results_dir):
    """One-vs-batched framing delta; why DEFAULT_SHIP_BATCH is 8.

    Per-message overhead is a *fixed* cost, so batching matters in
    proportion to how small messages are: a stream of small chunks over
    the file-spool channel (the paper's deployment: four syscalls per
    message) is where the win must show, and big-chunk streams must at
    least not regress.  The assertion targets the file channel because
    I/O amortization is mechanical — independent of core count; memory
    deltas are reported for reference.
    """
    generator = make_generator("yelp", SEED)
    lines = list(generator.raw_lines(N_RECORDS))
    streams = {}
    for chunk_size in (FRAMING_SMALL_CHUNK, CHUNK_SIZE):
        client = SimulatedClient(f"framing-{chunk_size}",
                                 chunk_size=chunk_size)
        streams[chunk_size] = [
            encode_chunk(c) for c in client.process(lines)
        ]
    batch_sizes = [1, 4, DEFAULT_SHIP_BATCH, 32]

    def experiment():
        results = {}
        spool = 0
        for chunk_size, frames in streams.items():
            for factory_name, factory in (
                ("memory", MemoryChannel),
                ("file", lambda: FileChannel(tmp_path / f"spool-{spool}")),
            ):
                for batch in batch_sizes:
                    spool += 1
                    best = float("inf")
                    for _ in range(3):
                        seconds, messages, received = _frame_roundtrip(
                            frames, factory, batch
                        )
                        assert received == len(frames)
                        best = min(best, seconds)
                    results[(chunk_size, factory_name, batch)] = (
                        best, messages
                    )
        return results

    results = run_once(benchmark, experiment)

    rows = []
    for (chunk_size, channel_name, batch), (seconds, messages) \
            in results.items():
        baseline = results[(chunk_size, channel_name, 1)][0]
        rows.append(
            [
                chunk_size,
                channel_name,
                batch,
                messages,
                seconds * 1e3,
                baseline / seconds if seconds > 0 else float("inf"),
            ]
        )

    def speedup(chunk_size, channel_name):
        return (results[(chunk_size, channel_name, 1)][0]
                / results[(chunk_size, channel_name,
                           DEFAULT_SHIP_BATCH)][0])

    small_file = speedup(FRAMING_SMALL_CHUNK, "file")
    big_file = speedup(CHUNK_SIZE, "file")
    small_memory = speedup(FRAMING_SMALL_CHUNK, "memory")
    lines_out = [
        f"batched chunk framing over {N_RECORDS} records "
        f"(transport + framing only):",
        format_table(
            ["chunk", "channel", "frames/msg", "messages", "wall(ms)",
             "speedup"],
            rows,
        ),
        f"  default ship batch : {DEFAULT_SHIP_BATCH} frames/message — "
        f"file channel {small_file:.2f}x at {FRAMING_SMALL_CHUNK}-record "
        f"chunks, {big_file:.2f}x at {CHUNK_SIZE}-record chunks "
        f"(memory {small_memory:.2f}x at {FRAMING_SMALL_CHUNK}); "
        f"returns diminish past ~{DEFAULT_SHIP_BATCH} frames.",
    ]
    emit("batched_framing", "\n".join(lines_out), results_dir)
    emit_json("batched_framing", {
        "records": N_RECORDS,
        "default_ship_batch": DEFAULT_SHIP_BATCH,
        "rows": [
            {
                "chunk_size": chunk_size,
                "channel": channel_name,
                "frames_per_message": batch,
                "messages": messages,
                "wall_seconds": seconds,
            }
            for (chunk_size, channel_name, batch), (seconds, messages)
            in results.items()
        ],
        "small_file_speedup": small_file,
        "big_file_speedup": big_file,
        "small_memory_speedup": small_memory,
    }, results_dir)

    # Small chunks must show a real file-channel win; big chunks must
    # not regress (payload I/O dominates there, so ~1x is expected).
    # Pinnable in CI like the other bench floors.
    floor = float(
        os.environ.get("REPRO_BENCH_MIN_FRAMING_SPEEDUP", "1.5")
    )
    assert small_file >= floor, (
        f"batched framing only {small_file:.2f}x on the file channel "
        f"at {FRAMING_SMALL_CHUNK}-record chunks"
    )
    assert big_file >= 0.9
    assert small_memory >= 0.8
