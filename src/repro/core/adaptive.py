"""Adaptive replanning under workload drift (extension).

The paper estimates query frequencies "based on historical statistics" and
plans once.  Real workloads drift: the dashboards of interest change, new
predicates become hot, old ones go cold.  This module closes the loop:

* :class:`FrequencyTracker` observes executed queries and maintains
  exponentially-decayed frequency estimates — recent queries dominate;
* :class:`AdaptiveReplanner` periodically re-solves the selection problem
  against the tracked workload and proposes a new pushdown plan when the
  expected benefit gap justifies it.

Predicate-id stability: clauses retained across replans keep their ids, so
bit-vectors already stored in Parquet-lite metadata remain valid; only new
clauses receive fresh ids.  Queries over clauses whose vectors predate a
replan fall back to full scans of the affected row groups (the engine's
missing-vector rule), never to wrong answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional

from .budgets import Budget
from .cost_model import CostModel
from .objective import SelectionObjective
from .optimizer import PushdownEntry, PushdownPlan
from .patterns import compile_clause
from .predicates import Clause, Query, Workload
from .selection import select_predicates

#: Type of the callback supplying selectivity estimates for clause sets.
SelectivityProvider = Callable[[Iterable[Clause]], Mapping[Clause, float]]


class FrequencyTracker:
    """Exponentially-decayed query-frequency estimates.

    Each observation multiplies every existing weight by ``decay`` and
    adds 1 to the observed query's weight, so a query observed ``k``
    times in the recent past has weight ≈ k while long-unseen queries
    decay toward zero and are eventually dropped.
    """

    def __init__(self, decay: float = 0.98,
                 prune_below: float = 1e-3):
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if prune_below < 0:
            raise ValueError("prune threshold must be non-negative")
        self._decay = decay
        self._prune_below = prune_below
        self._weights: Dict[frozenset, float] = {}
        self._names: Dict[frozenset, str] = {}
        self._observations = 0

    @property
    def observations(self) -> int:
        """Total queries observed."""
        return self._observations

    def observe(self, query: Query) -> None:
        """Record one executed query."""
        key = query.clause_set
        for other in list(self._weights):
            self._weights[other] *= self._decay
            if self._weights[other] < self._prune_below:
                del self._weights[other]
                self._names.pop(other, None)
        self._weights[key] = self._weights.get(key, 0.0) + 1.0
        self._names.setdefault(key, query.name or f"q{len(self._names)}")
        self._observations += 1

    def distinct_queries(self) -> int:
        """Number of distinct (non-pruned) query shapes tracked."""
        return len(self._weights)

    def estimated_workload(self, dataset: str = "") -> Workload:
        """The tracked queries as a frequency-weighted workload."""
        if not self._weights:
            raise ValueError("no queries observed yet")
        queries = tuple(
            Query(tuple(clauses), frequency=weight,
                  name=self._names[clauses])
            for clauses, weight in sorted(
                self._weights.items(),
                key=lambda item: -item[1],
            )
        )
        return Workload(queries, dataset=dataset)


@dataclass(frozen=True)
class ReplanDecision:
    """Outcome of one replanning evaluation."""

    current_benefit: float
    candidate_benefit: float
    replanned: bool
    plan: Optional[PushdownPlan]

    @property
    def benefit_gap(self) -> float:
        """How much f(S) the candidate plan adds under current traffic."""
        return self.candidate_benefit - self.current_benefit


class AdaptiveReplanner:
    """Re-solve predicate selection as the observed workload drifts."""

    def __init__(self,
                 cost_model: CostModel,
                 selectivity_provider: SelectivityProvider,
                 budget: Budget,
                 tracker: Optional[FrequencyTracker] = None,
                 min_observations: int = 20):
        self.cost_model = cost_model
        self.selectivity_provider = selectivity_provider
        self.budget = budget
        self.tracker = tracker or FrequencyTracker()
        self.min_observations = min_observations
        self.current_plan: Optional[PushdownPlan] = None
        self._next_id = 0

    def observe(self, query: Query) -> None:
        """Feed one executed query into the tracker."""
        self.tracker.observe(query)

    def adopt(self, plan: PushdownPlan) -> None:
        """Register an externally produced initial plan."""
        self.current_plan = plan
        if plan.predicate_ids:
            self._next_id = max(self._next_id,
                                max(plan.predicate_ids) + 1)

    def evaluate(self) -> ReplanDecision:
        """Plan against tracked traffic and compare with the current plan.

        Does not mutate state; :meth:`maybe_replan` applies the decision.
        """
        workload = self.tracker.estimated_workload()
        pool = list(workload.candidate_pool)
        current_clauses = (
            [e.clause for e in self.current_plan.entries]
            if self.current_plan is not None else []
        )
        all_clauses = list(dict.fromkeys(pool + current_clauses))
        selectivities = dict(self.selectivity_provider(all_clauses))
        objective = SelectionObjective(workload, {
            c: selectivities[c] for c in pool
        })
        costs = {
            c: self.cost_model.clause_cost(c, selectivities[c])
            for c in pool
        }
        result = select_predicates(objective, costs, self.budget.us)
        current_benefit = objective.value(
            frozenset(c for c in current_clauses if c in set(pool))
        )
        plan = self._build_plan(result.selected, selectivities, costs,
                                result)
        return ReplanDecision(
            current_benefit=current_benefit,
            candidate_benefit=result.objective_value,
            replanned=False,
            plan=plan,
        )

    def maybe_replan(self, threshold: float = 0.05
                     ) -> Optional[PushdownPlan]:
        """Adopt a new plan when its benefit gap exceeds *threshold*.

        Returns the new plan, or None when there is not enough traffic or
        the current plan is still close to what replanning would choose.
        """
        if self.tracker.observations < self.min_observations:
            return None
        decision = self.evaluate()
        if decision.benefit_gap <= threshold:
            return None
        self.adopt(decision.plan)
        return decision.plan

    # ------------------------------------------------------------------
    def _build_plan(self, selected, selectivities, costs, result
                    ) -> PushdownPlan:
        """Package a selection, preserving ids of retained clauses."""
        previous: Dict[Clause, int] = {}
        if self.current_plan is not None:
            previous = {
                e.clause: e.predicate_id
                for e in self.current_plan.entries
            }
        entries: List[PushdownEntry] = []
        next_id = self._next_id
        for clause in selected:
            pid = previous.get(clause)
            if pid is None:
                pid = next_id
                next_id += 1
            entries.append(
                PushdownEntry(
                    predicate_id=pid,
                    clause=clause,
                    compiled=compile_clause(clause),
                    selectivity=selectivities[clause],
                    cost_us=costs[clause],
                )
            )
        entries.sort(key=lambda e: e.predicate_id)
        return PushdownPlan(entries, self.budget, result)
