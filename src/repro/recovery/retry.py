"""Bounded, deterministic retry schedules for transport-facing clients.

A :class:`RetryPolicy` is the one sanctioned shape for "try again":
a hard attempt bound, exponential backoff with a ceiling, jitter drawn
from an explicit seed (same seed, same pauses — the replayability
discipline every stochastic knob in this codebase follows), and an
optional per-operation deadline.  Unbounded ``while True: try/except``
reconnect loops are banned outright — ciaolint's ``RET001`` enforces
that in transport and service roles — so every retry in the stack
terminates and backs off by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How a client retries one failed operation.

    Attributes:
        max_attempts: Total tries including the first; must be >= 1.
        base_delay: Pause before the first retry, seconds.
        max_delay: Ceiling on any single pause (pre-jitter), seconds.
        multiplier: Exponential growth factor between pauses.
        jitter: Symmetric jitter fraction — each pause is scaled by a
            factor drawn uniformly from ``[1 - jitter, 1 + jitter]``.
        deadline: Optional wall-clock budget for the whole operation,
            seconds; callers stop retrying once it is spent even if
            attempts remain.
        seed: Explicit RNG seed for the jitter stream.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.1
    deadline: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(
                f"jitter must be in [0, 1), got {self.jitter!r}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(
                f"deadline must be positive, got {self.deadline}"
            )

    def backoff(self) -> Iterator[float]:
        """The pauses between attempts, in order (``max_attempts - 1``).

        A fresh iterator restarts the seeded jitter stream, so two
        operations under the same policy pause identically — what makes
        a chaos failure replay bit-for-bit.
        """
        rng = random.Random(self.seed)
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            scale = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield min(delay, self.max_delay) * scale
            delay *= self.multiplier

    def pauses(self) -> Iterator[float]:
        """Pause before each attempt: ``0.0`` first, then the backoffs.

        The canonical loop shape (bounded by construction)::

            for pause in policy.pauses():
                sleep(pause)
                try:
                    return operation()
                except RetryableError as exc:
                    last = exc
            raise last
        """
        yield 0.0
        yield from self.backoff()
