"""Unit tests for JSON chunking and load masks."""

import pytest

from repro.bitvec import BitVector
from repro.rawjson import JsonChunk, chunk_records, concat_chunks


def make_chunk(n=4, chunk_id=0):
    return JsonChunk(chunk_id, [f'{{"i":{i}}}' for i in range(n)])


class TestJsonChunk:
    def test_length_and_iteration(self):
        chunk = make_chunk(3)
        assert len(chunk) == 3
        assert list(chunk.iter_records()) == chunk.records

    def test_attach_validates_length(self):
        chunk = make_chunk(4)
        with pytest.raises(ValueError):
            chunk.attach(0, BitVector(3))

    def test_constructor_validates_existing_bitvectors(self):
        with pytest.raises(ValueError):
            JsonChunk(0, ['{"a":1}'], {0: BitVector(5)})

    def test_predicate_ids_sorted(self):
        chunk = make_chunk(2)
        chunk.attach(5, BitVector(2))
        chunk.attach(1, BitVector(2))
        assert chunk.predicate_ids == [1, 5]

    def test_total_bytes(self):
        chunk = make_chunk(2)
        assert chunk.total_bytes() == sum(len(r) for r in chunk.records)


class TestLoadMask:
    def test_union_of_predicate_vectors(self):
        chunk = make_chunk(4)
        chunk.attach(0, BitVector.from_bits([1, 0, 0, 0]))
        chunk.attach(1, BitVector.from_bits([0, 0, 1, 0]))
        assert chunk.load_mask().to_bits() == [1, 0, 1, 0]
        assert chunk.loaded_ratio() == 0.5

    def test_no_annotations_loads_everything(self):
        chunk = make_chunk(3)
        assert chunk.load_mask().to_bits() == [1, 1, 1]
        assert chunk.loaded_ratio() == 1.0

    def test_split_by_mask(self):
        chunk = make_chunk(4)
        selected, rejected = chunk.split_by_mask(
            BitVector.from_bits([1, 0, 0, 1])
        )
        assert selected == [0, 3]
        assert rejected == [1, 2]

    def test_split_validates_length(self):
        with pytest.raises(ValueError):
            make_chunk(4).split_by_mask(BitVector(3))


class TestChunkRecords:
    def test_even_split(self):
        chunks = list(chunk_records((f"r{i}" for i in range(6)), 2))
        assert [len(c) for c in chunks] == [2, 2, 2]
        assert [c.chunk_id for c in chunks] == [0, 1, 2]

    def test_short_final_chunk(self):
        chunks = list(chunk_records((f"r{i}" for i in range(5)), 2))
        assert [len(c) for c in chunks] == [2, 2, 1]

    def test_start_id_offset(self):
        chunks = list(chunk_records(["a", "b"], 1, start_id=7))
        assert [c.chunk_id for c in chunks] == [7, 8]

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            list(chunk_records(["a"], 0))

    def test_empty_input_yields_nothing(self):
        assert list(chunk_records([], 10)) == []


class TestConcatChunks:
    def test_concat_aligns_bitvectors(self):
        a = make_chunk(2, 0)
        b = make_chunk(3, 1)
        a.attach(0, BitVector.from_bits([1, 0]))
        b.attach(0, BitVector.from_bits([0, 1, 1]))
        merged = concat_chunks([a, b])
        assert len(merged) == 5
        assert merged.bitvectors[0].to_bits() == [1, 0, 0, 1, 1]

    def test_mismatched_predicate_sets_rejected(self):
        a = make_chunk(2)
        b = make_chunk(2, 1)
        a.attach(0, BitVector(2))
        with pytest.raises(ValueError):
            concat_chunks([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            concat_chunks([])
