"""The background compaction worker.

One daemon thread per server: each round it folds new query-log records
into the :class:`~repro.compact.policy.CompactionPolicy`'s credit
ledger, asks the server for its sealed part set, lets the policy decide
one rewrite, performs it **without holding any server lock** (sealed
parts are immutable, so reading them races with nothing), and commits
the swap through :meth:`CiaoServer.commit_compaction` — the only step
that touches the server's lifecycle lock, and the step that makes the
swap atomic with respect to in-flight queries.

Lock discipline: the compactor's own lock is a leaf guarding its stats
counters; it is never held across a rewrite, a server call, or any
other lock acquisition, so the subsystem adds no edges above the
documented ``lifecycle → ingest`` order (``ciaolint`` checks this
statically and ``CIAO_LOCKSAN=1`` at runtime).

A rewrite that raises (disk full, a part deleted underneath us, a bug)
is contained to its round: the error is counted and the catalog keeps
pointing at the old parts — :func:`repro.compact.rewrite.rewrite_parts`
never leaves a readable file at the output path on failure.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, Optional

from ..analysis.sanitizer import make_lock
from ..obs.metrics import Metrics, resolve_metrics
from ..obs.querylog import QueryLog, resolve_query_log
from ..obs.tracing import Tracer, resolve_tracer
from .policy import CompactionConfig, CompactionPlan, CompactionPolicy
from .rewrite import RewriteStats, rewrite_parts

#: How many hot columns the worker offers the policy per round.
HOT_COLUMN_CANDIDATES = 3


class Compactor:
    """Workload-adaptive compaction for one server's sealed parts.

    *server* is any object with the :class:`repro.server.ciao.
    CiaoServer` compaction surface — ``sealed_parts()``,
    ``commit_compaction(inputs, output)``, ``data_dir`` and
    ``table_name``.  Construction does not start the thread; call
    :meth:`start` (the session does) or drive rounds synchronously with
    :meth:`run_once` (tests and benchmarks do, for determinism).
    """

    def __init__(self, server,
                 policy: Optional[CompactionPolicy] = None,
                 config: Optional[CompactionConfig] = None,
                 *,
                 metrics: Optional[Metrics] = None,
                 tracer: Optional[Tracer] = None,
                 query_log: Optional[QueryLog] = None):
        if policy is not None and config is not None:
            raise ValueError(
                "pass either a policy or a config, not both"
            )
        self._server = server
        self.policy = policy or CompactionPolicy(config)
        self._query_log = resolve_query_log(query_log)
        self._tracer = resolve_tracer(tracer)
        metrics = resolve_metrics(metrics)
        self._m_rounds = metrics.counter("compact.rounds")
        self._m_parts_merged = metrics.counter("compact.parts_merged")
        self._m_parts_written = metrics.counter("compact.parts_written")
        self._m_rows = metrics.counter("compact.rows_rewritten")
        self._m_bytes = metrics.counter("compact.bytes_rewritten")
        self._m_reclusters = metrics.counter("compact.reclusters")
        self._m_errors = metrics.counter("compact.errors")
        self._g_parts_live = metrics.gauge("compact.parts_live")
        self._g_skip_before = metrics.gauge("compact.skip_fraction_before")
        self._g_skip_after = metrics.gauge("compact.skip_fraction_after")
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = make_lock("Compactor._lock")
        self._rounds = 0  # guarded-by: _lock
        self._rewrites = 0  # guarded-by: _lock
        self._reclusters = 0  # guarded-by: _lock
        self._errors = 0  # guarded-by: _lock
        self._last_error: Optional[str] = None  # guarded-by: _lock
        self._rows_rewritten = 0  # guarded-by: _lock
        self._bytes_rewritten = 0  # guarded-by: _lock
        self._parts_merged = 0  # guarded-by: _lock
        # Workload skip accounting since the last committed re-cluster;
        # feeds the before/after gauges.  # guarded-by: _lock
        self._skip_units = 0
        self._total_units = 0  # guarded-by: _lock
        # Single-thread state (the worker/run_once caller only):
        self._log_cursor = 0
        self._output_seq = 0
        #: Output path → the column its rows are sorted by, so the
        #: policy can refuse to re-sort by the current order.
        self._clustered_by: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="ciao-compactor", daemon=True
        )
        self._thread.start()

    def close(self, timeout: float = 10.0) -> None:
        """Stop the worker and join it (idempotent)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)

    @property
    def running(self) -> bool:
        """True while the background thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def _run(self) -> None:
        interval = self.policy.config.poll_interval
        while not self._stop.wait(interval):
            try:
                self.run_once()
            except BaseException as exc:  # ciaolint: allow[API006] -- a failed round must not kill the worker; counted below
                self._record_error(exc)

    # ------------------------------------------------------------------
    # One round
    # ------------------------------------------------------------------
    def run_once(self) -> Optional[RewriteStats]:
        """Observe, decide, rewrite, commit — one synchronous round.

        Returns the rewrite's stats, or None when the policy proposed
        nothing.  Exceptions propagate (the background loop catches and
        counts them; direct callers see them).
        """
        self._observe_workload()
        parts = [Path(p) for p in self._server.sealed_parts()]
        self._g_parts_live.set(len(parts))
        if not parts:
            self._bump_round()
            return None
        hot = self._query_log.hot_columns(HOT_COLUMN_CANDIDATES)
        plan = self.policy.propose(
            parts, hot, current_cluster=self._current_cluster(parts)
        )
        if plan is None:
            self._bump_round()
            return None
        output = self._next_output_path()
        try:
            with self._tracer.trace("compact.rewrite", attrs={
                "inputs": len(plan.inputs),
                "cluster_by": plan.cluster_by or "",
            }):
                stats = rewrite_parts(
                    plan.inputs, output,
                    cluster_by=plan.cluster_by,
                    row_group_rows=self.policy.config.row_group_rows,
                )
            self._server.commit_compaction(plan.inputs, output)
        except BaseException:  # ciaolint: allow[API006] -- round accounting only; re-raised
            self._bump_round()
            raise
        self._committed(plan, stats, output)
        self._bump_round()
        if self.policy.config.remove_inputs:
            for part in plan.inputs:
                Path(part).unlink(missing_ok=True)
        return stats

    # ------------------------------------------------------------------
    def _observe_workload(self) -> None:
        """Feed query-log records appended since the last round."""
        total = self._query_log.total
        fresh = total - self._log_cursor
        if fresh <= 0:
            return
        records = self._query_log.tail(fresh)
        self._log_cursor = total
        self.policy.observe(records)
        skip_units = total_units = 0
        for record in records:
            skip_units += (
                record.row_groups_skipped + record.row_groups_pruned
            )
            total_units += (
                record.row_groups_scanned + record.row_groups_skipped
            )
        with self._lock:
            self._skip_units += skip_units
            self._total_units += total_units
            if self._total_units > 0:
                fraction = self._skip_units / self._total_units
            else:
                fraction = 0.0
        self._g_skip_after.set(fraction)

    def _current_cluster(self, parts) -> Optional[str]:
        """The column every live part is sorted by, if one exists."""
        columns = {
            self._clustered_by.get(str(Path(p))) for p in parts
        }
        if len(columns) == 1:
            return next(iter(columns))
        return None

    def _next_output_path(self) -> Path:
        data_dir = Path(self._server.data_dir)
        table = self._server.table_name
        while True:
            candidate = (
                data_dir / f"{table}.compact{self._output_seq}.pql"
            )
            self._output_seq += 1
            if not candidate.exists():
                return candidate

    def _committed(self, plan: CompactionPlan, stats: RewriteStats,
                   output: Path) -> None:
        self.policy.committed(plan)
        for part in plan.inputs:
            self._clustered_by.pop(str(Path(part)), None)
        if plan.cluster_by is not None:
            self._clustered_by[str(output)] = plan.cluster_by
        self._m_parts_merged.inc(len(plan.inputs))
        self._m_parts_written.inc()
        self._m_rows.inc(stats.rows)
        self._m_bytes.inc(stats.bytes_out)
        if plan.cluster_by is not None:
            self._m_reclusters.inc()
        with self._lock:
            self._rewrites += 1
            self._parts_merged += len(plan.inputs)
            self._rows_rewritten += stats.rows
            self._bytes_rewritten += stats.bytes_out
            if plan.cluster_by is not None:
                self._reclusters += 1
                # Reset the skip window: the before gauge keeps the
                # pre-re-cluster fraction, the after gauge rebuilds
                # from post-re-cluster queries only.
                if self._total_units > 0:
                    before = self._skip_units / self._total_units
                else:
                    before = 0.0
                self._skip_units = 0
                self._total_units = 0
            else:
                before = None
        if before is not None:
            self._g_skip_before.set(before)

    def _bump_round(self) -> None:
        self._m_rounds.inc()
        with self._lock:
            self._rounds += 1

    def _record_error(self, exc: BaseException) -> None:
        self._m_errors.inc()
        message = f"{type(exc).__name__}: {exc}"
        with self._lock:
            self._errors += 1
            self._last_error = message

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Operational snapshot (surfaced through the STATS wire reply)."""
        running = self.running
        with self._lock:
            doc: Dict[str, object] = {
                "running": running,
                "rounds": self._rounds,
                "rewrites": self._rewrites,
                "reclusters": self._reclusters,
                "parts_merged": self._parts_merged,
                "rows_rewritten": self._rows_rewritten,
                "bytes_rewritten": self._bytes_rewritten,
                "errors": self._errors,
                "last_error": self._last_error,
            }
        doc["policy"] = self.policy.stats()
        return doc
