"""Span tracing: nested timing contexts that survive the wire.

``with tracer.trace("remote.query"):`` opens a span; spans started
inside it (same thread or same :mod:`contextvars` context) become its
children automatically.  Every span carries an explicit ``trace_id`` so
a trace can cross the process boundary: ``RemoteSession`` attaches its
current :class:`TraceContext` to the wire header, the service re-roots
its server-side spans under that context, ships the finished span
records back in the ``RESULT`` header, and the client tracer
:meth:`Tracer.adopt`\\ s them — one trace, client and server spans under
a single trace id.

Ids are **counter-based and deterministic** (prefixed with the tracer's
name so client/server ids can't collide after adoption): no ``uuid``, no
global RNG, no wall clock, so DET-checked modules may hold a tracer.
Timestamps are ``time.perf_counter()`` offsets — meaningful as
durations, and rendered onto one relative timeline by
:meth:`Tracer.chrome_trace` (open the exported JSON in Chrome's
``about:tracing`` / Perfetto).

The default everywhere is :meth:`Tracer.null`: a stateless singleton
whose ``trace()`` returns a shared no-op context manager.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ..analysis.sanitizer import make_lock

#: The ambient span for the current thread/context.  Module-level so
#: spans nest across tracer instances sharing a context; each span
#: save/restores it with contextvar tokens.
_CURRENT: ContextVar[Optional["TraceContext"]] = ContextVar(
    "repro_obs_current_span", default=None
)


@dataclass(frozen=True)
class TraceContext:
    """The (trace, span) coordinates a child span attaches under."""

    trace_id: str
    span_id: str

    def to_header(self) -> Dict[str, str]:
        """The wire representation (see ``wire.attach_trace``)."""
        return {"trace_id": self.trace_id, "parent_id": self.span_id}


@dataclass
class Span:
    """One finished (or in-flight) timing interval."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    start: float = 0.0
    end: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    @staticmethod
    def from_dict(record: Dict[str, Any]) -> "Span":
        return Span(
            name=str(record.get("name", "")),
            trace_id=str(record.get("trace_id", "")),
            span_id=str(record.get("span_id", "")),
            parent_id=record.get("parent_id"),
            start=float(record.get("start", 0.0)),
            end=float(record.get("end", 0.0)),
            attrs=dict(record.get("attrs") or {}),
        )


class _ActiveSpan:
    """The context manager ``Tracer.trace`` returns.

    Entering installs the span as the ambient context (so nested
    ``trace()`` calls become children); exiting restores the previous
    ambient span and files the finished record with the tracer.
    """

    __slots__ = ("_tracer", "span", "_token")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span
        self._token = None

    def __enter__(self) -> Span:
        self.span.start = time.perf_counter()
        self._token = _CURRENT.set(
            TraceContext(self.span.trace_id, self.span.span_id)
        )
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self.span.end = time.perf_counter()
        if exc_type is not None:
            self.span.attrs["error"] = exc_type.__name__
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        self._tracer._record(self.span)


class _NullSpanContext:
    """Shared no-op stand-in for ``_ActiveSpan`` on the null tracer."""

    __slots__ = ()
    span = None

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN_CONTEXT = _NullSpanContext()


class Tracer:
    """Creates spans, collects finished records, exports trees.

    *name* prefixes every generated id, which keeps ids collision-free
    when spans from another tracer (the server's) are adopted into this
    one's record set.
    """

    def __init__(self, name: str = "trace"):
        self.name = name
        self._lock = make_lock("obs.Tracer._lock")
        self._next_id = 0  # guarded-by: _lock
        self._finished: List[Span] = []  # guarded-by: _lock

    @property
    def enabled(self) -> bool:
        return True

    @staticmethod
    def null() -> "Tracer":
        """The shared no-op tracer (the default everywhere)."""
        return NULL_TRACER

    # ------------------------------------------------------------------
    def _new_id(self, kind: str) -> str:
        with self._lock:
            self._next_id += 1
            return f"{self.name}-{kind}{self._next_id}"

    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)  # ciaolint: allow[LCK002] -- list.append binds no project lock; the name union binds wider

    # ------------------------------------------------------------------
    def trace(self, name: str, *, parent: Optional[TraceContext] = None,
              attrs: Optional[Dict[str, Any]] = None) -> _ActiveSpan:
        """A context manager opening a span named *name*.

        The parent is, in order of preference: the explicit *parent*
        context (used when re-rooting under a wire-propagated context),
        else the ambient span of the current thread/context, else none —
        in which case this span roots a fresh trace id.
        """
        if parent is None:
            parent = _CURRENT.get()
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = self._new_id("t")
            parent_id = None
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=self._new_id("s"),
            parent_id=parent_id,
            attrs=dict(attrs) if attrs else {},
        )
        return _ActiveSpan(self, span)

    def current(self) -> Optional[TraceContext]:
        """The ambient span context, for attaching to a wire header."""
        return _CURRENT.get()

    def adopt(self, records: Iterable[Dict[str, Any]]) -> List[Span]:
        """File span records produced elsewhere (e.g. server-side)."""
        adopted = [Span.from_dict(r) for r in records]
        with self._lock:
            self._finished.extend(adopted)  # ciaolint: allow[LCK002] -- list.extend binds no project lock; the name union binds wider
        return adopted

    # ------------------------------------------------------------------
    def spans(self, trace_id: Optional[str] = None) -> List[Span]:
        """Finished spans, optionally restricted to one trace."""
        with self._lock:
            found = list(self._finished)
        if trace_id is not None:
            found = [s for s in found if s.trace_id == trace_id]
        return found

    def drain(self, trace_id: Optional[str] = None) -> List[Span]:
        """Remove and return finished spans (one trace, or all)."""
        with self._lock:
            if trace_id is None:
                drained = self._finished
                self._finished = []
            else:
                drained = [s for s in self._finished
                           if s.trace_id == trace_id]
                self._finished = [s for s in self._finished
                                  if s.trace_id != trace_id]
        return drained

    # ------------------------------------------------------------------
    def span_tree(self, trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """Finished spans as nested dicts (children under parents).

        Spans whose parent is absent from the record set (e.g. the
        client kept its root span open) surface as roots.
        """
        spans = self.spans(trace_id)
        by_id = {s.span_id: s.to_dict() for s in spans}
        for node in by_id.values():
            node["children"] = []
        roots: List[Dict[str, Any]] = []
        for span in spans:
            node = by_id[span.span_id]
            parent = by_id.get(span.parent_id) if span.parent_id else None
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        for node in by_id.values():
            node["children"].sort(key=lambda c: c["start"])
        roots.sort(key=lambda c: c["start"])
        return roots

    def format_tree(self, trace_id: Optional[str] = None) -> str:
        """The span tree as indented text (for demos and debugging)."""
        lines: List[str] = []

        def _walk(node: Dict[str, Any], depth: int) -> None:
            duration_ms = max(0.0, node["end"] - node["start"]) * 1000.0
            lines.append(
                f"{'  ' * depth}{node['name']}  "
                f"[{duration_ms:.3f} ms]  ({node['span_id']})"
            )
            for child in node["children"]:
                _walk(child, depth + 1)

        for root in self.span_tree(trace_id):
            _walk(root, 0)
        return "\n".join(lines)

    def chrome_trace(self, trace_id: Optional[str] = None) -> Dict[str, Any]:
        """Chrome ``about:tracing`` JSON for the finished spans.

        Timestamps are re-based to the earliest span start, so traces
        merged from two perf_counter domains (client + adopted server
        spans) still render on one non-negative timeline.
        """
        spans = self.spans(trace_id)
        base = min((s.start for s in spans), default=0.0)
        events = [
            {
                "name": s.name,
                "ph": "X",
                "ts": (s.start - base) * 1_000_000.0,
                "dur": s.duration * 1_000_000.0,
                "pid": 1,
                "tid": 1,
                "args": {
                    "trace_id": s.trace_id,
                    "span_id": s.span_id,
                    "parent_id": s.parent_id,
                    **s.attrs,
                },
            }
            for s in sorted(spans, key=lambda s: s.start)
        ]
        return {"traceEvents": events, "displayTimeUnit": "ms"}


class NullTracer(Tracer):
    """Disabled tracer: stateless, shared, every call a no-op."""

    def __init__(self) -> None:
        self.name = "null"

    @property
    def enabled(self) -> bool:
        return False

    def trace(self, name: str, *, parent: Optional[TraceContext] = None,
              attrs: Optional[Dict[str, Any]] = None) -> _ActiveSpan:
        return _NULL_SPAN_CONTEXT  # type: ignore[return-value]

    def current(self) -> Optional[TraceContext]:
        return None

    def adopt(self, records: Iterable[Dict[str, Any]]) -> List[Span]:
        return []

    def spans(self, trace_id: Optional[str] = None) -> List[Span]:
        return []

    def drain(self, trace_id: Optional[str] = None) -> List[Span]:
        return []

    def _record(self, span: Span) -> None:
        pass


#: The shared disabled tracer (what ``Tracer.null()`` returns).
NULL_TRACER = NullTracer()


def resolve_tracer(tracer: Optional[Tracer]) -> Tracer:
    """``tracer`` if given, else the shared null tracer."""
    return tracer if tracer is not None else NULL_TRACER
