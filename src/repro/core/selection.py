"""Predicate selection under a knapsack budget (paper §V-C).

Maximizing the submodular benefit ``f(S)`` subject to
``Σ_{p∈S} cost(p) ≤ B`` is NP-hard; the paper combines two greedy
heuristics, each of which can be arbitrarily bad alone:

* **Algorithm 1 (naive greedy)** — repeatedly add the feasible clause with
  the highest absolute benefit ``f(S ∪ {p})``.
* **Algorithm 2 (benefit-cost greedy)** — repeatedly add the feasible
  clause with the highest marginal benefit per unit cost.

Taking the better of the two results is guaranteed at least
``½(1 − 1/e) · OPT ≈ 0.316 · OPT`` (Khuller, Moss & Naor 1999).

Extensions beyond the paper, exercised by the ablation bench:

* :func:`celf_greedy` — the benefit-cost greedy accelerated with lazy
  marginal-gain evaluation (CELF); identical output, far fewer evaluations.
* :func:`exhaustive_optimum` — brute force, the test oracle for the bound.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from .objective import SelectionObjective
from .predicates import Clause

#: The constant of the Khuller–Moss–Naor guarantee: ½(1 − 1/e).
APPROXIMATION_GUARANTEE = 0.5 * (1.0 - 2.718281828459045 ** -1.0)


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one selection algorithm run.

    Attributes:
        selected: Clauses in pick order (convert to a set for membership).
        objective_value: ``f(selected)``.
        total_cost: Σ cost of the selected clauses (≤ budget always).
        budget: The budget the run respected.
        algorithm: Which algorithm produced the result.
        evaluations: Number of marginal-gain evaluations performed — the
            metric the CELF ablation compares.
    """

    selected: Tuple[Clause, ...]
    objective_value: float
    total_cost: float
    budget: float
    algorithm: str
    evaluations: int = 0

    @property
    def selected_set(self) -> FrozenSet[Clause]:
        """The selected clauses as a set."""
        return frozenset(self.selected)

    def __len__(self) -> int:
        return len(self.selected)


def _check_inputs(objective: SelectionObjective,
                  costs: Mapping[Clause, float], budget: float) -> None:
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    missing = [
        c for c in objective.workload.candidate_pool if c not in costs
    ]
    if missing:
        raise ValueError(
            f"missing costs for {len(missing)} clauses, "
            f"first: {missing[0].sql()}"
        )
    negative = [c for c, cost in costs.items() if cost < 0]
    if negative:
        raise ValueError("clause costs must be non-negative")


def naive_greedy(objective: SelectionObjective,
                 costs: Mapping[Clause, float],
                 budget: float) -> SelectionResult:
    """Paper Algorithm 1: pick the feasible clause with highest f(S ∪ {p}).

    Ignores cost differences entirely, so a huge near-duplicate clause can
    crowd out several cheap ones — the failure mode Algorithm 2 covers.
    """
    _check_inputs(objective, costs, budget)
    pool = list(objective.workload.candidate_pool)
    selected: List[Clause] = []
    selected_set: FrozenSet[Clause] = frozenset()
    spent = 0.0
    evaluations = 0
    while True:
        best: Optional[Clause] = None
        best_gain = -1.0
        for candidate in pool:
            if candidate in selected_set:
                continue
            if spent + costs[candidate] > budget + 1e-12:
                continue
            gain = objective.marginal_gain(selected_set, candidate)
            evaluations += 1
            # Strict improvement keeps tie-breaking on canonical pool order.
            if gain > best_gain + 1e-15:
                best, best_gain = candidate, gain
        if best is None:
            break
        selected.append(best)
        selected_set = selected_set | {best}
        spent += costs[best]
    return SelectionResult(
        selected=tuple(selected),
        objective_value=objective.value(selected_set),
        total_cost=spent,
        budget=budget,
        algorithm="naive_greedy",
        evaluations=evaluations,
    )


def ratio_greedy(objective: SelectionObjective,
                 costs: Mapping[Clause, float],
                 budget: float) -> SelectionResult:
    """Paper Algorithm 2: pick the highest marginal benefit-cost ratio.

    Zero-cost clauses (possible when a pattern is priced below the model's
    resolution) are treated as infinitely good and taken first — they can
    only help.
    """
    _check_inputs(objective, costs, budget)
    pool = list(objective.workload.candidate_pool)
    selected: List[Clause] = []
    selected_set: FrozenSet[Clause] = frozenset()
    spent = 0.0
    evaluations = 0
    while True:
        best: Optional[Clause] = None
        best_ratio = -1.0
        for candidate in pool:
            if candidate in selected_set:
                continue
            cost = costs[candidate]
            if spent + cost > budget + 1e-12:
                continue
            gain = objective.marginal_gain(selected_set, candidate)
            evaluations += 1
            ratio = gain / cost if cost > 0 else float("inf")
            if ratio > best_ratio + 1e-15:
                best, best_ratio = candidate, ratio
        if best is None:
            break
        selected.append(best)
        selected_set = selected_set | {best}
        spent += costs[best]
    return SelectionResult(
        selected=tuple(selected),
        objective_value=objective.value(selected_set),
        total_cost=spent,
        budget=budget,
        algorithm="ratio_greedy",
        evaluations=evaluations,
    )


def select_predicates(objective: SelectionObjective,
                      costs: Mapping[Clause, float],
                      budget: float,
                      use_celf: bool = True) -> SelectionResult:
    """CIAO's selector: run both greedies, keep the better f(S).

    This is the ``≥ ½(1 − 1/e) · OPT`` combination of §V-C.  With
    ``use_celf`` the benefit-cost arm runs the lazy CELF variant, which
    returns the same set with far fewer marginal-gain evaluations.
    """
    by_benefit = naive_greedy(objective, costs, budget)
    by_ratio = (
        celf_greedy(objective, costs, budget) if use_celf
        else ratio_greedy(objective, costs, budget)
    )
    winner = max(by_benefit, by_ratio, key=lambda r: r.objective_value)
    return SelectionResult(
        selected=winner.selected,
        objective_value=winner.objective_value,
        total_cost=winner.total_cost,
        budget=budget,
        algorithm=f"max({by_benefit.algorithm}, {by_ratio.algorithm})",
        evaluations=by_benefit.evaluations + by_ratio.evaluations,
    )


def celf_greedy(objective: SelectionObjective,
                costs: Mapping[Clause, float],
                budget: float) -> SelectionResult:
    """Benefit-cost greedy with lazy evaluation (CELF; Leskovec et al.).

    Submodularity means a clause's marginal gain only shrinks as S grows,
    so a stale upper bound that is already below the current best cannot
    win.  We keep a max-heap of (possibly stale) ratios and only refresh the
    top — typically a large constant-factor reduction in evaluations, which
    the selection ablation bench measures.
    """
    _check_inputs(objective, costs, budget)
    pool = list(objective.workload.candidate_pool)
    selected: List[Clause] = []
    selected_set: FrozenSet[Clause] = frozenset()
    spent = 0.0
    evaluations = 0

    def ratio_of(gain: float, clause: Clause) -> float:
        cost = costs[clause]
        return gain / cost if cost > 0 else float("inf")

    # Heap entries: (-ratio, tie_breaker, clause, round_computed)
    heap: List[Tuple[float, int, Clause, int]] = []
    for order, candidate in enumerate(pool):
        gain = objective.marginal_gain(selected_set, candidate)
        evaluations += 1
        heapq.heappush(
            heap, (-ratio_of(gain, candidate), order, candidate, 0)
        )
    current_round = 0
    while heap:
        neg_ratio, order, candidate, computed_round = heapq.heappop(heap)
        if candidate in selected_set:
            continue
        if spent + costs[candidate] > budget + 1e-12:
            # Infeasible *now*; keep it aside in case nothing else fits
            # either (it can never become feasible again — spent only
            # grows — so dropping is safe; we simply drop).
            continue
        if computed_round != current_round:
            gain = objective.marginal_gain(selected_set, candidate)
            evaluations += 1
            heapq.heappush(
                heap, (-ratio_of(gain, candidate), order, candidate,
                       current_round)
            )
            continue
        selected.append(candidate)
        selected_set = selected_set | {candidate}
        spent += costs[candidate]
        current_round += 1
    return SelectionResult(
        selected=tuple(selected),
        objective_value=objective.value(selected_set),
        total_cost=spent,
        budget=budget,
        algorithm="celf_greedy",
        evaluations=evaluations,
    )


def exhaustive_optimum(objective: SelectionObjective,
                       costs: Mapping[Clause, float],
                       budget: float,
                       max_pool: int = 20) -> SelectionResult:
    """Brute-force OPT for small pools — the approximation-bound oracle.

    Refuses pools larger than *max_pool* (2^n subsets) rather than running
    for hours.
    """
    _check_inputs(objective, costs, budget)
    pool = list(objective.workload.candidate_pool)
    if len(pool) > max_pool:
        raise ValueError(
            f"pool of {len(pool)} clauses exceeds max_pool={max_pool}"
        )
    best_set: FrozenSet[Clause] = frozenset()
    best_value = 0.0
    best_cost = 0.0
    evaluations = 0
    for mask in range(1 << len(pool)):
        subset = [pool[i] for i in range(len(pool)) if mask >> i & 1]
        cost = sum(costs[c] for c in subset)
        if cost > budget + 1e-12:
            continue
        value = objective.value(frozenset(subset))
        evaluations += 1
        if value > best_value + 1e-15:
            best_set = frozenset(subset)
            best_value = value
            best_cost = cost
    return SelectionResult(
        selected=tuple(sorted(best_set)),
        objective_value=best_value,
        total_cost=best_cost,
        budget=budget,
        algorithm="exhaustive",
        evaluations=evaluations,
    )
