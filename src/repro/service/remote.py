"""RemoteSession: the client half of the service conversation.

A :class:`RemoteSession` talks to a :class:`~repro.service.service.CiaoService`
over any :class:`~repro.transport.base.Channel` — normally a
:class:`~repro.transport.sockets.SocketChannel` dialed from an address,
but an explicitly constructed channel (including one wrapped in
Lossy/Latency decorators) can be injected for fault-injection tests.

The surface mirrors the in-process session: fetch the pushdown plan,
:meth:`load` a source (client-side filtering runs *here*, on this
process's :class:`~repro.client.device.SimulatedClient`, exactly as the
paper's client-assisted design prescribes), :meth:`commit`, and
:meth:`query` — remote results decode into the same
:class:`~repro.engine.executor.QueryResult` dataclasses local execution
returns.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from ..client.device import DEFAULT_SHIP_BATCH, SimulatedClient
from ..client.protocol import encode_frame_batch
from ..core.optimizer import PushdownPlan
from ..core.plan_io import loads_plan
from ..data.randomness import DEFAULT_SEED
from ..engine.executor import QueryResult
from ..obs.metrics import Metrics
from ..obs.tracing import Tracer, resolve_tracer
from ..rawjson.chunks import DEFAULT_CHUNK_SIZE
from ..transport.base import Channel, TransportError
from ..transport.sockets import SocketChannel
from ..transport import wire
from ..transport.wire import Message, encode_message
from .results import result_from_payload


class RemoteError(RuntimeError):
    """The service replied with an error, or the conversation broke."""


class RemoteBusyError(RemoteError):
    """The service is saturated (admission BUSY); back off and retry."""


class RemoteSession:
    """A client-side session speaking the service wire protocol.

    Args:
        address: ``(host, port)`` of a running service; a fresh
            :class:`SocketChannel` is dialed.  Mutually exclusive with
            *channel*.
        channel: An already-open channel to converse over — inject a
            decorated (lossy/latent) channel here for fault testing.
        client_id: Identity used for admission fairness and default
            ingest source ids.
        chunk_size: Records per chunk for :meth:`load`'s client.
        timeout: Per-reply wait; ``None`` waits forever.
        tracer: A :class:`repro.obs.Tracer`.  When given, every
            :meth:`query`/:meth:`snapshot_query` opens a client-side
            span, propagates its context in the wire header, and adopts
            the server-side spans shipped back in the RESULT reply — one
            exported trace spans both processes.
        metrics: A :class:`repro.obs.Metrics` registry for the dialed
            socket's byte/frame counters (ignored when *channel* is
            injected — instrument the channel yourself).

    The constructor performs the HELLO/WELCOME handshake, so a
    constructed session is known-good.  Context-manager friendly.
    """

    def __init__(self, address: Optional[Tuple[str, int]] = None, *,
                 channel: Optional[Channel] = None,
                 client_id: str = "remote-client",
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 seed: int = DEFAULT_SEED,
                 timeout: Optional[float] = 30.0,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[Metrics] = None):
        if (address is None) == (channel is None):
            raise ValueError(
                "pass exactly one of address=(host, port) or channel="
            )
        if channel is None:
            channel = SocketChannel.connect(address, metrics=metrics)
        self.channel = channel
        self.tracer = resolve_tracer(tracer)
        self.client_id = client_id
        self.chunk_size = chunk_size
        self.seed = seed
        self.timeout = timeout
        self.last_client: Optional[SimulatedClient] = None
        self._closed = False
        welcome = self._request(wire.HELLO, {
            "client_id": client_id,
            "protocol": wire.PROTOCOL_VERSION,
        }, expect=wire.WELCOME)
        self.server_mode: str = str(welcome.header.get("mode", ""))

    # ------------------------------------------------------------------
    def _request(self, tag: int, header: Optional[Dict[str, Any]] = None,
                 body: bytes = b"",
                 expect: Optional[int] = None) -> Message:
        """Send one message and wait for the service's reply."""
        if self._closed:
            raise RemoteError("session is closed")
        self.channel.send(encode_message(tag, header or {}, body))
        payload = self.channel.receive_wait(self.timeout)
        if payload is None:
            raise RemoteError(
                f"no reply to {wire.tag_name(tag)} within "
                f"{self.timeout} s (connection "
                f"{'closed' if self.channel.closed else 'idle'})"
            )
        reply = wire.decode_message(payload)
        if reply.tag == wire.BUSY:
            raise RemoteBusyError(
                reply.header.get("error", "service saturated")
            )
        if reply.tag == wire.ERROR:
            raise RemoteError(
                reply.header.get("error", "unspecified service error")
            )
        if expect is not None and reply.tag != expect:
            raise RemoteError(
                f"expected {wire.tag_name(expect)} in reply to "
                f"{wire.tag_name(tag)}, got {reply.name}"
            )
        return reply

    # ------------------------------------------------------------------
    def fetch_plan(self) -> Optional[PushdownPlan]:
        """The service's pushdown plan (``None`` if it has none)."""
        reply = self._request(wire.GET_PLAN, expect=wire.PLAN)
        if not reply.header.get("present"):
            return None
        return loads_plan(reply.body.decode("utf-8"))

    def load(self, source, *, n_records: Optional[int] = None,
             source_id: Optional[str] = None,
             batch_size: int = DEFAULT_SHIP_BATCH) -> int:
        """Client-filter *source* and stream its chunks to the service.

        Fetches the plan, runs this process's
        :class:`~repro.client.device.SimulatedClient` over the records
        (predicate bit-vectors computed client-side), and ships encoded
        chunk frames in batches of *batch_size* per CHUNKS message —
        every batch is acknowledged, so a returned count is a received
        count.  Returns the number of chunk frames the service accepted.

        Call :meth:`commit` (after all participating clients finish) to
        seal the load; on streaming deployments, :meth:`snapshot_query`
        works before the commit.
        """
        # Imported here (not at module top): source coercion pulls in the
        # api layer, which imports transport; keep the client-facing
        # entry lazy so service/* never creates an import cycle.
        from ..api.source import as_source

        src = as_source(source, seed=self.seed, n_records=n_records)
        plan = self.fetch_plan()
        client = SimulatedClient(self.client_id, plan, self.chunk_size)
        self.last_client = client
        self._request(wire.OPEN_INGEST, {
            "source_id": source_id or self.client_id,
        }, expect=wire.INGEST_ACK)
        accepted = 0
        pending = []
        for chunk in client.process(src.records()):
            pending.append(chunk)
            if len(pending) >= batch_size:
                accepted += self._ship(pending)
                pending = []
        if pending:
            accepted += self._ship(pending)
        self._request(wire.END_INGEST, {}, expect=wire.INGEST_ACK)
        return accepted

    def _ship(self, chunks) -> int:
        """Send one CHUNKS batch; returns the acknowledged frame count."""
        reply = self._request(
            wire.CHUNKS, {"frames": len(chunks)},
            encode_frame_batch(chunks), expect=wire.INGEST_ACK,
        )
        return int(reply.header.get("frames_accepted", 0))

    def commit(self) -> Dict[str, Any]:
        """Seal the remote load; returns the service's report summary."""
        reply = self._request(wire.COMMIT, expect=wire.COMMITTED)
        return dict(reply.header.get("report", {}))

    # ------------------------------------------------------------------
    def query(self, sql: str) -> QueryResult:
        """Run *sql* on the service's finalized store."""
        return self._traced_query(sql, snapshot=False)

    def snapshot_query(self, sql: str) -> QueryResult:
        """Run *sql* against the service's loaded-so-far snapshot."""
        return self._traced_query(sql, snapshot=True)

    def _traced_query(self, sql: str, snapshot: bool) -> QueryResult:
        """One QUERY round trip, wrapped in a client-side span.

        The span's context rides the wire header; the service executes
        under it and returns its finished span records in the RESULT
        header, which are adopted here — so a single trace id covers
        ``remote.query`` on this side and plan/scan/aggregate on the
        server side.  With the (default) null tracer this is exactly the
        pre-obs request path.
        """
        header: Dict[str, Any] = {"sql": sql, "snapshot": snapshot}
        if not self.tracer.enabled:
            reply = self._request(wire.QUERY, header, expect=wire.RESULT)
            return result_from_payload(reply.body)
        with self.tracer.trace(
            "remote.query", attrs={"sql": sql, "snapshot": snapshot},
        ) as span:
            wire.attach_trace(header, span.trace_id, span.span_id)
            reply = self._request(wire.QUERY, header, expect=wire.RESULT)
            spans = reply.header.get("spans")
            if isinstance(spans, list):
                self.tracer.adopt(
                    s for s in spans if isinstance(s, dict)
                )
            return result_from_payload(reply.body)

    def stats(self, query_log_tail: int = 0) -> Dict[str, Any]:
        """Poll the service's live STATS document.

        Includes connection/admission accounting and the service-side
        metrics snapshot; *query_log_tail* > 0 additionally requests the
        most recent N query-log records.
        """
        reply = self._request(
            wire.STATS, {"query_log_tail": int(query_log_tail)},
            expect=wire.STATS,
        )
        try:
            doc = json.loads(reply.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RemoteError(f"malformed STATS reply: {exc}") from exc
        if not isinstance(doc, dict):
            raise RemoteError(
                f"STATS reply must be a JSON object, got "
                f"{type(doc).__name__}"
            )
        return doc

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Say BYE (best effort) and close the channel (idempotent)."""
        if self._closed:
            return
        try:
            self._request(wire.BYE, expect=wire.BYE)
        except (RemoteError, TransportError, wire.WireError):
            pass  # the goodbye is a courtesy, not a contract
        self._closed = True
        self.channel.close()

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
