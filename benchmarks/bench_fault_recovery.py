"""Fault recovery: manifest rebuild cost and chaos-schedule overhead.

Two legs:

1. **Recovery time vs sealed-part count** — durable streaming servers
   are checkpointed at increasing sealed-part counts, then rebuilt with
   :meth:`CiaoServer.recover`.  Reported: wall time per rebuild and the
   per-part cost.  Asserted: every recovery answers ``COUNT(*)``
   identically to the pre-crash server — recovery is a correctness
   feature first, its speed rides along in the JSON payload.

2. **Throughput under a 10% fault schedule** — the same remote load is
   driven twice through a :class:`CiaoService`, once clean and once
   through a :class:`FaultyChannel` with a seeded 10% fault plan
   (disconnects, stalls, drops, truncation, corruption) and a retrying
   client.  Reported: records/s for both legs and the overhead factor.
   Asserted: the chaotic leg loses nothing (exact row count) and its
   overhead stays bounded — retries cost time, never data.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_fault_recovery.py``
(set ``REPRO_BENCH_SMOKE=1`` for a <60 s smoke configuration).
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro.api import CiaoSession, DeploymentConfig
from repro.bench import emit, emit_json
from repro.client.protocol import encode_chunk
from repro.rawjson import JsonChunk, dump_record
from repro.recovery import RetryPolicy
from repro.server import CiaoServer
from repro.service import CiaoService, RemoteSession
from repro.transport import FaultPlan, SocketChannel, faulty_dialer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N_SHARDS = 2
CHUNK_RECORDS = 100 if SMOKE else 250
PART_COUNTS = (4, 8) if SMOKE else (8, 32, 64)
CHAOS_RECORDS = 400 if SMOKE else 2000
FAULT_RATE = 0.1
#: Pathology guard for the chaos leg, not a performance claim: injected
#: stalls and reply timeouts dominate, so the bound is generous.
MAX_OVERHEAD_FACTOR = 50.0

_PAYLOAD = {"config": {
    "smoke": SMOKE, "chunk_records": CHUNK_RECORDS,
    "part_counts": list(PART_COUNTS), "chaos_records": CHAOS_RECORDS,
    "fault_rate": FAULT_RATE,
}}


def sealed_server(path, n_chunks):
    """A durable streaming server checkpointed at ~n_chunks sealed parts."""
    server = CiaoServer(path, n_shards=N_SHARDS, shard_mode="thread",
                        seal_interval=1, durable=True)
    ingest = server.open_ingest_session("bench")
    for cid in range(n_chunks):
        records = [
            dump_record({"k": (cid * CHUNK_RECORDS + i) % 7, "n": i})
            for i in range(CHUNK_RECORDS)
        ]
        ingest.ingest_sequenced(
            encode_chunk(JsonChunk(cid, records)),
            seq=cid + 1, client_id="bench",
        )
    assert server.checkpoint() is True
    return server


def test_recovery_time_vs_sealed_parts(benchmark, tmp_path, results_dir):
    def experiment():
        rows = []
        for n_chunks in PART_COUNTS:
            root = tmp_path / f"parts-{n_chunks}"
            server = sealed_server(root, n_chunks)
            before = server.query("SELECT COUNT(*) FROM t").scalar()
            started = time.perf_counter()
            recovered = CiaoServer.recover(root)
            wall = time.perf_counter() - started
            after = recovered.query("SELECT COUNT(*) FROM t").scalar()
            parts = len(recovered.sealed_parts())
            rows.append({
                "sealed_parts": parts,
                "recover_s": wall,
                "per_part_ms": wall * 1e3 / max(parts, 1),
                "rows_before": before,
                "rows_after": after,
            })
        return rows

    rows = run_once(benchmark, experiment)
    _PAYLOAD["recovery_time"] = rows
    emit(
        "fault_recovery_time",
        "recovery time vs sealed parts: " + ", ".join(
            f"{r['sealed_parts']} parts -> {r['recover_s'] * 1e3:.1f} ms"
            for r in rows
        ),
        results_dir,
    )
    emit_json("BENCH_fault_recovery", _PAYLOAD, results_dir)
    for row in rows:
        assert row["rows_after"] == row["rows_before"]


def _timed_remote_load(tmp_path, leg, plan):
    config = DeploymentConfig(mode="sharded", n_shards=N_SHARDS,
                              shard_mode="thread", seal_interval=4,
                              durable=True)
    session = CiaoSession(config=config, data_dir=tmp_path / leg)
    with CiaoService(session, checkpoint_every=8,
                     idle_timeout=60.0) as service:
        if plan is None:
            remote = RemoteSession(address=service.address,
                                   client_id="bench", chunk_size=10)
        else:
            dial, _ = faulty_dialer(
                lambda: SocketChannel.connect(service.address), plan,
            )
            remote = RemoteSession(
                channel_factory=dial, client_id="bench", chunk_size=10,
                retry=RetryPolicy(max_attempts=10, base_delay=0.01,
                                  max_delay=0.05, seed=plan.seed),
                timeout=1.0,
            )
        started = time.perf_counter()
        remote.load("yelp", n_records=CHAOS_RECORDS, source_id="bench",
                    batch_size=2)
        remote.commit()
        wall = time.perf_counter() - started
        count = remote.query("SELECT COUNT(*) FROM t").scalar()
        remote.close()
    session.close()
    return {"wall_s": wall, "records_per_s": CHAOS_RECORDS / wall,
            "rows_committed": count}


def test_throughput_under_faults(benchmark, tmp_path, results_dir):
    def experiment():
        clean = _timed_remote_load(tmp_path, "clean", None)
        plan = FaultPlan.generate(seed=17, n_ops=800,
                                  fault_rate=FAULT_RATE)
        chaotic = _timed_remote_load(tmp_path, "chaos", plan)
        return {
            "clean": clean,
            "chaotic": chaotic,
            "injected_faults": len(plan),
            "overhead_factor": chaotic["wall_s"] / clean["wall_s"],
        }

    result = run_once(benchmark, experiment)
    _PAYLOAD["fault_throughput"] = result
    emit(
        "fault_recovery_throughput",
        f"remote load of {CHAOS_RECORDS} records: "
        f"clean {result['clean']['records_per_s']:.0f} rec/s, "
        f"under {FAULT_RATE:.0%} faults "
        f"{result['chaotic']['records_per_s']:.0f} rec/s "
        f"({result['overhead_factor']:.2f}x wall)",
        results_dir,
    )
    emit_json("BENCH_fault_recovery", _PAYLOAD, results_dir)
    assert result["clean"]["rows_committed"] == CHAOS_RECORDS
    assert result["chaotic"]["rows_committed"] == CHAOS_RECORDS
    assert result["overhead_factor"] < MAX_OVERHEAD_FACTOR
