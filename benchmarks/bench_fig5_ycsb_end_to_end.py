"""Fig. 5 — end-to-end experiments on the YCSB customer dataset.

Budgets 0–125 µs/record.  YCSB records carry 25 attributes with nested
structures, so the loading (full-parse) cost dominates and partial loading
has the most room; workload C (uniform) is the paper's "challenging" case
where the aggregate numbers barely move — Fig. 6 then drills into it.
"""

from conftest import config_for, run_once

from repro.bench import (
    BUDGET_GRIDS,
    emit,
    emit_json,
    end_to_end_sweep,
    headline_speedups,
    metrics_table,
    speedup_summary,
    sweep_payload,
)

PARAMS = config_for("ycsb", n_records=2500, n_queries=50)


def test_fig5_ycsb_end_to_end(benchmark, tmp_path, results_dir):
    def experiment():
        return end_to_end_sweep(
            "ycsb",
            tmp_path,
            config=PARAMS["config"],
            n_queries=PARAMS["n_queries"],
            budgets=BUDGET_GRIDS["ycsb"],
        )

    sweep = run_once(benchmark, experiment)
    sections = []
    for label, runs in sweep.items():
        sections.append(metrics_table(runs, f"Fig 5 — workload {label}"))
        sections.append(speedup_summary(runs[0], runs[1:]))
    best = headline_speedups(sweep)
    sections.append(
        "best speedups across Fig 5: "
        f"loading {best['loading']:.1f}x, query {best['query']:.1f}x, "
        f"end-to-end {best['end_to_end']:.1f}x"
    )
    emit("fig5_ycsb_end_to_end", "\n\n".join(sections), results_dir)
    emit_json("fig5_ycsb_end_to_end", {
        "sweep": sweep_payload(sweep),
        "headline_speedups": best,
    }, results_dir)

    # The paper's observation: C's aggregate result shows little partial
    # loading; A engages it.
    assert any(m.partial_loading for m in sweep["A"][1:])
