"""Synthetic stand-in for the paper's YCSB/fakeit customer dataset.

The authors generated 14.4M customer objects (20 GB) with the ``fakeit``
JSON generator: 25 attributes including name, children, address, phone,
email and visited places.  This generator reproduces that shape — 25
top-level attributes, including nested objects and arrays that exercise the
full JSON parser — and aligns the Table II predicate templates:

==============================  ===========  ============================
Template                        #Candidates  Realized here by
==============================  ===========  ============================
``isActive = <boolean>``        2            true with p = 0.6
``linear_score = <int>``        100          uniform 0..99
``weighted_score = <int>``      100          Zipf-skewed 0..99
``phone_country = <string>``    3            weighted country codes
``age_group = <string>``        4            weighted age bands
``age_by_group = <int>``        100          uniform 0..99
``url_domain LIKE <string>``    12           weighted TLD-ish domains
``url_site LIKE <string>``      14           weighted site names
``email LIKE <string>``         2            two mail providers
==============================  ===========  ============================
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from .base import DatasetGenerator
from .textgen import city, full_name, hex_id, sentence, street_address
from .zipf import WeightedSampler, ZipfSampler

#: Probability that ``isActive`` is true.
ACTIVE_PROB = 0.6

PHONE_COUNTRIES: List[Tuple[str, float]] = [
    ("+1", 0.5), ("+44", 0.3), ("+86", 0.2),
]

AGE_GROUPS: List[Tuple[str, float]] = [
    ("18-25", 0.25), ("26-40", 0.40), ("41-65", 0.25), ("65+", 0.10),
]

URL_DOMAINS: List[str] = [
    "alpha.example", "beta.example", "gamma.example", "delta.example",
    "epsilon.example", "zeta.example", "eta.example", "theta.example",
    "iota.example", "kappa.example", "lambda.example", "mu.example",
]

URL_SITES: List[str] = [
    "portal", "shop", "blog", "news", "docs", "forum", "wiki",
    "mail", "cloud", "static", "media", "api", "auth", "cdn",
]

EMAIL_PROVIDERS: List[str] = ["mailbox.example", "postbox.example"]

MEMBERSHIPS: List[Tuple[str, float]] = [
    ("free", 0.6), ("silver", 0.25), ("gold", 0.12), ("platinum", 0.03),
]

DEVICE_OSES: List[str] = ["android", "ios", "windows", "linux", "macos"]

LOCALES: List[str] = ["en_US", "en_GB", "zh_CN", "de_DE", "fr_FR", "es_ES"]


class YcsbGenerator(DatasetGenerator):
    """Generator for synthetic fakeit-style customer records."""

    name = "ycsb"

    def __init__(self, seed: int):
        super().__init__(seed)
        rng = self._rng
        self._phone = WeightedSampler(
            [c for c, _ in PHONE_COUNTRIES],
            [w for _, w in PHONE_COUNTRIES], rng,
        )
        self._age_group = WeightedSampler(
            [g for g, _ in AGE_GROUPS], [w for _, w in AGE_GROUPS], rng
        )
        self._membership = WeightedSampler(
            [m for m, _ in MEMBERSHIPS], [w for _, w in MEMBERSHIPS], rng
        )
        self._weighted_score = ZipfSampler(100, 0.9, rng)
        # Domains and sites are mildly skewed so LIKE predicates on them
        # span a range of selectivities.
        self._domains = ZipfSampler(len(URL_DOMAINS), 0.8, rng)
        self._sites = ZipfSampler(len(URL_SITES), 0.8, rng)

    def record(self) -> Dict[str, Any]:
        """One customer object with 25 top-level attributes."""
        rng = self._rng
        domain = URL_DOMAINS[self._domains.draw()]
        site = URL_SITES[self._sites.draw()]
        provider = EMAIL_PROVIDERS[0 if rng.random() < 0.7 else 1]
        name = full_name(rng)
        local_part = name.lower().replace(" ", ".")
        n_children = rng.choices([0, 1, 2, 3], weights=[45, 25, 20, 10])[0]
        n_places = rng.randint(0, 4)
        return {
            "customer_id": hex_id(rng, 16),
            "isActive": rng.random() < ACTIVE_PROB,
            "linear_score": rng.randrange(100),
            "weighted_score": self._weighted_score.draw(),
            "phone_country": self._phone.draw(),
            "phone_number": f"{rng.randint(200, 999)}-{rng.randint(1000, 9999)}",
            "age_group": self._age_group.draw(),
            "age_by_group": rng.randrange(100),
            "url": f"https://{site}.{domain}/u/{rng.randrange(10_000)}",
            "email": f"{local_part}@{provider}",
            "first_name": name.split(" ")[0],
            "last_name": name.split(" ")[1],
            "company": f"{city(rng)} {rng.choice(['Labs', 'Corp', 'LLC'])}",
            "address": {
                "street": street_address(rng),
                "city": city(rng),
                "zip": f"{rng.randint(10_000, 99_999)}",
            },
            "children": [full_name(rng) for _ in range(n_children)],
            "visited_places": [city(rng) for _ in range(n_places)],
            "registered": (
                f"{rng.randint(2010, 2020):04d}-"
                f"{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
            ),
            "balance": round(rng.uniform(0, 10_000), 2),
            "notes": sentence(rng, rng.randint(4, 10)),
            "membership": self._membership.draw(),
            "device_os": rng.choice(DEVICE_OSES),
            "locale": rng.choice(LOCALES),
            "newsletter": rng.random() < 0.35,
            "referral_code": hex_id(rng, 8),
            "login_count": rng.randrange(1000),
        }
