"""JSON chunks: the unit of transfer between clients and the server.

Clients batch records into chunks (paper §III assumes e.g. 1 000 objects per
chunk) and attach one bit-vector per pushed-down predicate.  A chunk is the
granularity at which the server makes partial-loading decisions and at which
bit-vectors are carried into Parquet-lite block metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence

from ..bitvec.bitvector import BitVector, union_all

DEFAULT_CHUNK_SIZE = 1000


@dataclass
class JsonChunk:
    """A batch of raw JSON records plus per-predicate validity bit-vectors.

    Attributes:
        chunk_id: Monotone sequence number assigned by the producing client.
        records: Raw single-line JSON texts, in arrival order.
        bitvectors: Mapping from predicate id to a bit-vector of
            ``len(records)`` bits; bit ``i`` says record ``i`` *may* satisfy
            that predicate.
    """

    chunk_id: int
    records: List[str]
    bitvectors: Dict[int, BitVector] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for pred_id, bv in self.bitvectors.items():
            if len(bv) != len(self.records):
                raise ValueError(
                    f"bit-vector for predicate {pred_id} has {len(bv)} bits "
                    f"but the chunk holds {len(self.records)} records"
                )

    def __len__(self) -> int:
        return len(self.records)

    @property
    def predicate_ids(self) -> List[int]:
        """Ids of the predicates annotated on this chunk, sorted."""
        return sorted(self.bitvectors)

    def attach(self, predicate_id: int, bv: BitVector) -> None:
        """Attach a predicate bit-vector, validating its length."""
        if len(bv) != len(self.records):
            raise ValueError(
                f"bit-vector has {len(bv)} bits for {len(self.records)} records"
            )
        self.bitvectors[predicate_id] = bv

    def load_mask(self) -> BitVector:
        """Union of all predicate vectors: which records to load eagerly.

        With no annotations at all (budget 0 / baseline), every record must
        be loaded, so the mask is all ones.
        """
        if not self.bitvectors:
            return BitVector.ones(len(self.records))
        return union_all([self.bitvectors[p] for p in self.predicate_ids])

    def loaded_ratio(self) -> float:
        """Fraction of records the load mask selects (paper's loading ratio)."""
        if not self.records:
            return 0.0
        return self.load_mask().count() / len(self.records)

    def iter_records(self) -> Iterator[str]:
        """Iterate raw record texts."""
        return iter(self.records)

    def total_bytes(self) -> int:
        """Payload size of the raw records (network accounting)."""
        return sum(len(r) for r in self.records)

    def split_by_mask(self, mask: BitVector) -> tuple:
        """Partition record indices by *mask*: (selected, rejected)."""
        if len(mask) != len(self.records):
            raise ValueError("mask length does not match chunk size")
        selected = list(mask.iter_set())
        rejected = list((~mask).iter_set())
        return selected, rejected


def chunk_records(records: Iterable[str],
                  chunk_size: int = DEFAULT_CHUNK_SIZE,
                  start_id: int = 0) -> Iterator[JsonChunk]:
    """Group an iterable of raw JSON lines into :class:`JsonChunk` batches.

    The final chunk may be short.  ``chunk_size`` bounds bit-vector length
    and therefore the granularity of partial loading; the chunk-size ablation
    bench sweeps it.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    buffer: List[str] = []
    chunk_id = start_id
    for record in records:
        buffer.append(record)
        if len(buffer) == chunk_size:
            yield JsonChunk(chunk_id, buffer)
            buffer = []
            chunk_id += 1
    if buffer:
        yield JsonChunk(chunk_id, buffer)


def concat_chunks(chunks: Sequence[JsonChunk]) -> JsonChunk:
    """Merge chunks (and their aligned bit-vectors) into one.

    All chunks must annotate the same predicate ids; used by tests and by
    the chunk-size ablation to re-batch a stream.
    """
    if not chunks:
        raise ValueError("cannot concatenate zero chunks")
    ids = set(chunks[0].bitvectors)
    for chunk in chunks[1:]:
        if set(chunk.bitvectors) != ids:
            raise ValueError("chunks annotate different predicate sets")
    records: List[str] = []
    for chunk in chunks:
        records.extend(chunk.records)
    merged = JsonChunk(chunks[0].chunk_id, records)
    for pred_id in ids:
        vec = chunks[0].bitvectors[pred_id]
        for chunk in chunks[1:]:
            vec = vec.concat(chunk.bitvectors[pred_id])
        merged.attach(pred_id, vec)
    return merged
