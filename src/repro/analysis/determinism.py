"""Determinism checker for simulation, data-generation, and engine paths.

The reproduction's experiments (simulate/, data/, engine/, workload/)
must be replayable: the same seed and config produce the same plans,
the same synthetic rows, and the same measurements.  Two things quietly
break that:

``DET001``
    Wall-clock reads — ``time.time()``, ``time.time_ns()``,
    ``datetime.now()``/``utcnow()``/``today()``.  Timing *measurement*
    is fine (``time.perf_counter`` / ``monotonic`` are not flagged);
    feeding wall-clock values into decisions or generated data is not.
``DET002``
    The process-global random generator — ``random.random()``,
    ``random.randint(...)`` etc., or a seedless ``random.Random()``.
    Anything stochastic must draw from an explicitly seeded
    ``random.Random(seed)`` instance threaded through the config.

Scope: modules whose role is ``simulate``, ``data``, ``engine``, or
``workload`` (path-inferred, or declared with
``# ciaolint: module-role=...``).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from .findings import Finding
from .model import Project, SourceModule
from .registry import Checker, register

#: attribute -> owning module name, for wall-clock reads.
_WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
}

_DET_ROLES = ("simulate", "data", "engine", "workload")


def _dotted(expr: ast.AST) -> List[str]:
    """``a.b.c`` -> ``["a", "b", "c"]`` (empty if not a plain dotted name)."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


@register
class DeterminismChecker(Checker):
    name = "determinism"
    description = (
        "simulate/data/engine paths avoid wall clocks and the global RNG"
    )
    rules = {
        "DET001": "wall-clock read on a deterministic path",
        "DET002": "global/unseeded random on a deterministic path",
    }

    def check(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for module in project.by_role(*_DET_ROLES):
            findings.extend(self._check_module(module))
        return findings

    def _check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if len(dotted) < 2:
                continue
            owner, attr = dotted[-2], dotted[-1]
            if (owner, attr) in _WALL_CLOCK:
                findings.append(Finding(
                    path=module.rel_path, line=node.lineno,
                    col=node.col_offset, rule="DET001",
                    checker=self.name,
                    message=(
                        f"{owner}.{attr}() on a deterministic path: "
                        f"replays diverge run-to-run — take the clock "
                        f"as an input (or use perf_counter/monotonic "
                        f"for pure measurement)"
                    ),
                ))
            elif owner == "random" and attr == "Random":
                if not node.args and not node.keywords:
                    findings.append(Finding(
                        path=module.rel_path, line=node.lineno,
                        col=node.col_offset, rule="DET002",
                        checker=self.name,
                        message=(
                            "random.Random() without a seed: pass the "
                            "experiment seed so runs replay"
                        ),
                    ))
            elif owner == "random" and attr not in ("Random", "SystemRandom"):
                findings.append(Finding(
                    path=module.rel_path, line=node.lineno,
                    col=node.col_offset, rule="DET002",
                    checker=self.name,
                    message=(
                        f"random.{attr}() uses the process-global RNG: "
                        f"draw from a seeded random.Random(seed) "
                        f"instance threaded through the config"
                    ),
                ))
        return findings
