"""Fleet run reporting: per-client and aggregate accounting.

The :class:`FleetReport` is the contract every fleet scenario (drift,
churn, flaky networks) checks against: per-client throughput and budget
utilization, aggregate load accounting with the no-record-loss invariant
(``received == loaded + sidelined + malformed`` and ``received`` equals
the records handed to the fleet), reassignment and re-allocation counts,
and the run's :class:`~repro.simulate.runtime.CostLedger`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..server.loader import LoadSummary
from ..simulate.runtime import CostLedger


@dataclass
class ClientRunReport:
    """One client's contribution to a fleet load."""

    client_id: str
    platform: str
    speed_factor: float
    share: float
    budget_us: float
    n_pushed: int
    assigned_records: int
    shipped_records: int
    absorbed_records: int
    shipped_chunks: int
    bytes_sent: int
    modeled_us_per_record: float
    prefilter_wall_s: float
    killed: bool
    #: Transmissions a lossy channel dropped (and retransmitted) for
    #: this client — loss costs bytes, never records.
    messages_dropped: int = 0

    @property
    def device_records_per_s(self) -> float:
        """Records retired per second of on-device prefiltering time."""
        if self.prefilter_wall_s <= 0:
            return 0.0
        return self.shipped_records / self.prefilter_wall_s

    @property
    def budget_utilization(self) -> float:
        """Modeled spend as a fraction of the allocated budget."""
        if self.budget_us <= 0:
            return 0.0
        return (self.modeled_us_per_record * self.speed_factor
                / self.budget_us)


@dataclass
class FleetReport:
    """Aggregate outcome of one coordinated fleet load."""

    clients: List[ClientRunReport]
    summary: LoadSummary
    total_records: int
    wall_seconds: float
    reassignment_events: int = 0
    reassigned_records: int = 0
    reassignments: List[Tuple[str, str, int]] = field(default_factory=list)
    realloc_rounds: int = 0
    chunks_by_source: Dict[str, int] = field(default_factory=dict)
    ledger: CostLedger = field(default_factory=CostLedger)

    # ------------------------------------------------------------------
    @property
    def records_per_second(self) -> float:
        """Aggregate fleet loading throughput (wall clock)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.summary.received / self.wall_seconds

    @property
    def killed_clients(self) -> List[str]:
        """Ids of clients that died mid-load."""
        return [c.client_id for c in self.clients if c.killed]

    @property
    def messages_dropped(self) -> int:
        """Fleet-wide dropped (retransmitted) transmissions."""
        return sum(c.messages_dropped for c in self.clients)

    @property
    def no_record_loss(self) -> bool:
        """The fleet-wide accounting invariant.

        Every record handed to the fleet arrived at the server exactly
        once and was either loaded, sidelined, or quarantined malformed —
        even across client deaths and partition reassignment.
        """
        s = self.summary
        return (s.received == self.total_records
                and s.received == s.loaded + s.sidelined + s.malformed)

    def client(self, client_id: str) -> ClientRunReport:
        """One client's row."""
        for report in self.clients:
            if report.client_id == client_id:
                return report
        raise KeyError(client_id)

    def describe(self) -> str:
        """Paper-style fleet table plus the aggregate footer."""
        # Imported here: reporting sits in the bench layer, which imports
        # broadly; the fleet data model must stay importable on its own.
        from ..bench.reporting import fleet_table

        return fleet_table(self)
