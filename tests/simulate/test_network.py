"""Unit tests for the simulated transport channels."""

import pytest

from repro.simulate import FileChannel, LinkModel, MemoryChannel


@pytest.mark.parametrize("make_channel", [
    lambda tmp: MemoryChannel(),
    lambda tmp: FileChannel(tmp / "spool"),
])
class TestChannelContract:
    def test_fifo_order(self, tmp_path, make_channel):
        channel = make_channel(tmp_path)
        channel.send(b"one")
        channel.send(b"two")
        assert channel.receive() == b"one"
        assert channel.receive() == b"two"
        assert channel.receive() is None

    def test_pending_and_len(self, tmp_path, make_channel):
        channel = make_channel(tmp_path)
        assert len(channel) == 0
        channel.send(b"x")
        assert channel.pending() == 1
        channel.receive()
        assert channel.pending() == 0

    def test_drain(self, tmp_path, make_channel):
        channel = make_channel(tmp_path)
        for i in range(5):
            channel.send(f"m{i}".encode())
        assert [m.decode() for m in channel.drain()] == [
            f"m{i}" for i in range(5)
        ]

    def test_stats(self, tmp_path, make_channel):
        channel = make_channel(tmp_path)
        channel.send(b"abcd")
        channel.send(b"ef")
        channel.receive()
        assert channel.stats.messages_sent == 2
        assert channel.stats.bytes_sent == 6
        assert channel.stats.messages_received == 1

    def test_type_checked(self, tmp_path, make_channel):
        channel = make_channel(tmp_path)
        with pytest.raises(TypeError):
            channel.send("not bytes")


class TestFileChannelPersistence:
    def test_spool_survives_reopen(self, tmp_path):
        a = FileChannel(tmp_path / "spool")
        a.send(b"persisted")
        b = FileChannel(tmp_path / "spool")
        assert b.pending() == 1
        assert b.receive() == b"persisted"

    def test_gap_is_skipped_not_stalled(self, tmp_path):
        # A crashed consumer that deleted one file out of order must not
        # wedge the channel on the missing number forever.
        channel = FileChannel(tmp_path / "spool")
        for i in range(4):
            channel.send(b"m%d" % i)
        (tmp_path / "spool" / "000000001.msg").unlink()
        assert channel.receive() == b"m0"
        assert channel.receive() == b"m2"
        assert channel.receive() == b"m3"
        assert channel.receive() is None

    def test_pending_counts_files_on_disk(self, tmp_path):
        channel = FileChannel(tmp_path / "spool")
        for i in range(5):
            channel.send(b"x%d" % i)
        (tmp_path / "spool" / "000000002.msg").unlink()
        # Not 5 (counter arithmetic): only 4 messages still exist.
        assert channel.pending() == 4
        resumed = FileChannel(tmp_path / "spool")
        assert resumed.pending() == 4
        assert len(list(resumed.drain())) == 4
        assert resumed.pending() == 0

    def test_resume_ignores_non_numeric_msg_files(self, tmp_path):
        spool = tmp_path / "spool"
        channel = FileChannel(spool)
        channel.send(b"real")
        (spool / "notes.msg").write_bytes(b"junk someone dropped here")
        resumed = FileChannel(spool)
        assert resumed.pending() == 1
        assert resumed.receive() == b"real"


class TestBatchedFraming:
    """send_batch/drain_chunks round chunk frames through one message."""

    def frames(self):
        from repro.client import encode_chunk
        from repro.rawjson import JsonChunk, dump_record

        return [
            encode_chunk(JsonChunk(i, [dump_record({"v": i})]))
            for i in range(5)
        ]

    @pytest.mark.parametrize("make_channel", [
        lambda tmp: MemoryChannel(),
        lambda tmp: FileChannel(tmp / "spool"),
    ])
    def test_round_trip(self, tmp_path, make_channel):
        frames = self.frames()
        channel = make_channel(tmp_path)
        channel.send_batch(frames[:3])
        channel.send(frames[3])
        channel.send_batch(frames[4:])
        # 3 messages on the wire, 5 chunk frames delivered.
        assert channel.stats.messages_sent == 3
        assert channel.stats.bytes_sent == sum(len(f) for f in frames)
        assert list(channel.drain_chunks()) == frames

    def test_empty_batch_sends_nothing(self, tmp_path):
        channel = MemoryChannel()
        channel.send_batch([])
        assert channel.pending() == 0
        assert channel.stats.messages_sent == 0

    def test_batch_type_checked(self, tmp_path):
        channel = MemoryChannel()
        with pytest.raises(TypeError):
            channel.send_batch(["not bytes"])

    def test_drain_chunks_passes_single_frames_through(self, tmp_path):
        frames = self.frames()
        channel = MemoryChannel()
        for frame in frames:
            channel.send(frame)
        assert list(channel.drain_chunks()) == frames


class TestLinkModel:
    def test_transfer_time(self):
        link = LinkModel(bandwidth_mbps=8.0, latency_us=100.0)
        # 1000 bytes = 8000 bits at 8 Mbps = 1000 µs + latency.
        assert link.transfer_time_us(1000) == pytest.approx(1100.0)

    def test_zero_payload_costs_latency(self):
        assert LinkModel(latency_us=50).transfer_time_us(0) == 50

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            LinkModel().transfer_time_us(-1)


class TestSendFrames:
    """send_frames: the shared one-frame-vs-batch flush dispatch."""

    def frames(self):
        from repro.client import encode_chunk
        from repro.rawjson import JsonChunk, dump_record

        return [
            encode_chunk(JsonChunk(i, [dump_record({"v": i})]))
            for i in range(3)
        ]

    def test_empty_sends_nothing(self):
        channel = MemoryChannel()
        channel.send_frames([])
        assert channel.stats.messages_sent == 0

    def test_single_frame_sent_directly(self):
        frames = self.frames()
        channel = MemoryChannel()
        channel.send_frames(frames[:1])
        assert channel.stats.messages_sent == 1
        assert channel.receive() == frames[0]

    def test_many_frames_become_one_message(self):
        frames = self.frames()
        channel = MemoryChannel()
        channel.send_frames(frames)
        assert channel.stats.messages_sent == 1
        assert [bytes(f) for f in channel.drain_chunks()] == frames
