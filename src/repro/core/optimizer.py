"""The CIAO optimizer facade: workload + statistics + budget → pushdown plan.

Ties together the pieces of §V: clause statistics feed the objective and the
cost model, the combined greedy picks the clause set, and the result is
packaged as the *predicate hashmap* of Fig. 2 — predicate ids and pattern
strings — which is exactly what gets shipped to clients and retained by the
server for bit-vector resolution at load and query time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from .budgets import Budget
from .cost_model import CostModel
from .objective import SelectionObjective
from .patterns import CompiledClause, compile_clause
from .predicates import Clause, Query, Workload
from .selection import SelectionResult, select_predicates


@dataclass(frozen=True)
class PushdownEntry:
    """One pushed-down predicate as the clients and server see it.

    Attributes:
        predicate_id: Dense id; bit-vectors are keyed by it end to end.
        clause: The source clause (server-side verification semantics).
        compiled: Pattern strings and matching strategy (client-side).
        selectivity: The estimate used during selection.
        cost_us: Modeled per-record evaluation cost in µs.
    """

    predicate_id: int
    clause: Clause
    compiled: CompiledClause
    selectivity: float
    cost_us: float


class PushdownPlan:
    """The output of optimization: Fig. 2's predicate hashmap.

    Maps predicate ids to pattern strings for clients, and SQL clause keys
    back to ids for the server's query-time lookup.
    """

    def __init__(self, entries: List[PushdownEntry], budget: Budget,
                 selection: SelectionResult):
        self.entries = list(entries)
        self.budget = budget
        self.selection = selection
        self._by_clause: Dict[Clause, PushdownEntry] = {
            e.clause: e for e in self.entries
        }
        self._by_sql: Dict[str, PushdownEntry] = {
            e.clause.sql(): e for e in self.entries
        }

    # ------------------------------------------------------------------
    @property
    def predicate_ids(self) -> List[int]:
        """All pushed predicate ids, ascending."""
        return [e.predicate_id for e in self.entries]

    @property
    def clauses(self) -> List[Clause]:
        """The pushed clauses in id order."""
        return [e.clause for e in self.entries]

    def lookup(self, clause: Clause) -> Optional[PushdownEntry]:
        """Entry for *clause*, or None if it was not pushed down."""
        return self._by_clause.get(clause)

    def lookup_sql(self, sql: str) -> Optional[PushdownEntry]:
        """Entry by SQL text — the hashmap access of Fig. 2."""
        return self._by_sql.get(sql)

    def ids_for_query(self, query: Query) -> List[int]:
        """Predicate ids of the query's clauses that were pushed down."""
        return [
            self._by_clause[c].predicate_id
            for c in query.clauses
            if c in self._by_clause
        ]

    def covers_query(self, query: Query) -> bool:
        """True if at least one clause of *query* was pushed down.

        A covered query can be answered from the Parquet-lite store alone
        (plus bit-vector skipping); an uncovered query must also scan the
        raw JSON sideline.
        """
        return any(c in self._by_clause for c in query.clauses)

    def total_cost_us(self) -> float:
        """Modeled per-record client cost of the plan."""
        return sum(e.cost_us for e in self.entries)

    def restrict(self, budget: Budget) -> "PushdownPlan":
        """A sub-plan for a weaker client, preserving global predicate ids.

        Takes entries in id (greedy pick) order while their cumulative
        cost fits *budget*.  Heterogeneous fleets need every client to use
        the *same* id for the same clause — re-optimizing per client would
        renumber them — so sub-plans are prefixes of the global plan.
        """
        kept: List[PushdownEntry] = []
        spent = 0.0
        for entry in self.entries:
            if spent + entry.cost_us > budget.us + 1e-12:
                break
            kept.append(entry)
            spent += entry.cost_us
        selection = SelectionResult(
            selected=tuple(e.clause for e in kept),
            objective_value=float("nan"),
            total_cost=spent,
            budget=budget.us,
            algorithm=f"restrict({self.selection.algorithm})",
        )
        return PushdownPlan(kept, budget, selection)

    def expected_benefit(self) -> float:
        """f(S) of the selected set."""
        return self.selection.objective_value

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return (
            f"PushdownPlan(predicates={len(self.entries)}, "
            f"cost={self.total_cost_us():.3f}µs/record of {self.budget}, "
            f"f(S)={self.expected_benefit():.4f})"
        )

    def describe(self) -> str:
        """Multi-line plan listing for reports and examples."""
        lines = [repr(self)]
        for e in self.entries:
            patterns = ", ".join(
                repr(p) for spec in e.compiled.specs for p in spec.patterns
            )
            lines.append(
                f"  [{e.predicate_id}] {e.clause.sql()}  "
                f"sel={e.selectivity:.3f} cost={e.cost_us:.3f}µs  "
                f"patterns: {patterns}"
            )
        return "\n".join(lines)


class CiaoOptimizer:
    """Plan predicate pushdown for one workload on one dataset.

    Args:
        workload: Prospective queries with frequency estimates.
        selectivities: Per-clause selectivity estimates (from
            :mod:`repro.workload.selectivity` or known ground truth).
        cost_model: Calibrated for the target client hardware and dataset.
    """

    def __init__(self, workload: Workload,
                 selectivities: Mapping[Clause, float],
                 cost_model: CostModel):
        self.workload = workload
        self.cost_model = cost_model
        self.objective = SelectionObjective(workload, selectivities)
        self._selectivities = dict(selectivities)
        self.costs: Dict[Clause, float] = {
            clause: cost_model.clause_cost(clause, sel)
            for clause, sel in self._selectivities.items()
        }

    def plan(self, budget: Budget, use_celf: bool = True) -> PushdownPlan:
        """Select predicates within *budget* and package the plan.

        Predicate ids are assigned in greedy pick order, matching the
        paper's workflow where ids are handed out as predicates are chosen.
        """
        result = select_predicates(
            self.objective, self.costs, budget.us, use_celf=use_celf
        )
        entries = [
            PushdownEntry(
                predicate_id=i,
                clause=clause,
                compiled=compile_clause(clause),
                selectivity=self._selectivities[clause],
                cost_us=self.costs[clause],
            )
            for i, clause in enumerate(result.selected)
        ]
        return PushdownPlan(entries, budget, result)

    def plan_sweep(self, budgets) -> List[Tuple[Budget, PushdownPlan]]:
        """Plans for a budget sweep (the Figs 3–5 x-axis)."""
        return [(b, self.plan(b)) for b in budgets]


def manual_plan(clauses: List[Clause],
                selectivities: Mapping[Clause, float],
                cost_model: CostModel) -> PushdownPlan:
    """A pushdown plan with an explicitly chosen clause set.

    The sensitivity micro-benchmarks (paper §VII-E) push a *fixed* number
    of predicates ("we push down 2 predicates to the client") instead of
    letting the optimizer choose; this constructor packages such a set with
    the same id/pattern bookkeeping the optimizer would produce.  The
    budget recorded on the plan is exactly the set's total cost.
    """
    costs = {
        c: cost_model.clause_cost(c, selectivities[c]) for c in clauses
    }
    total = sum(costs.values())
    entries = [
        PushdownEntry(
            predicate_id=i,
            clause=c,
            compiled=compile_clause(c),
            selectivity=selectivities[c],
            cost_us=costs[c],
        )
        for i, c in enumerate(clauses)
    ]
    selection = SelectionResult(
        selected=tuple(clauses),
        objective_value=float("nan"),
        total_cost=total,
        budget=total,
        algorithm="manual",
    )
    return PushdownPlan(entries, Budget(total), selection)
