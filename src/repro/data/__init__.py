"""Synthetic dataset generators substituting the paper's three datasets."""

from .base import DatasetGenerator
from .randomness import DEFAULT_SEED, SeedSequence, derive_seed, rng_stream
from .winlog import WinLogGenerator
from .ycsb import YcsbGenerator
from .yelp import YelpGenerator
from .zipf import WeightedSampler, ZipfSampler, zipf_choice, zipf_weights

#: Registry keyed by the dataset names used throughout benches and docs.
GENERATORS = {
    "yelp": YelpGenerator,
    "winlog": WinLogGenerator,
    "ycsb": YcsbGenerator,
}


def make_generator(name: str, seed: int = DEFAULT_SEED) -> DatasetGenerator:
    """Instantiate a dataset generator by name ('yelp'/'winlog'/'ycsb')."""
    try:
        cls = GENERATORS[name]
    except KeyError:
        known = ", ".join(sorted(GENERATORS))
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None
    return cls(seed)


__all__ = [
    "DEFAULT_SEED",
    "DatasetGenerator",
    "GENERATORS",
    "SeedSequence",
    "WeightedSampler",
    "WinLogGenerator",
    "YcsbGenerator",
    "YelpGenerator",
    "ZipfSampler",
    "derive_seed",
    "make_generator",
    "rng_stream",
    "zipf_choice",
    "zipf_weights",
]
