"""The fleet coordinator: N concurrent clients, one sharded server.

Architecture (one box per thread)::

    partition ──▶ client worker 0 ── channel 0 ──┐
    (Zipf shares) client worker 1 ── channel 1 ──┤   drain loop    sharded
                  ...                            ├──▶ (sessions, ─▶ ingest
                  client worker N ── channel N ──┘   re-allocation) pipeline

* **Client workers** run one :class:`~repro.client.device.SimulatedClient`
  each: take a chunk's worth of raw records from their work queue,
  annotate with their allocated plan prefix, encode, and ship onto their
  private channel in frame batches.  Shipping blocks while the channel
  holds :attr:`max_pending` undelivered messages — bounded per-channel
  backpressure, so a flooding fleet holds at most
  ``n_clients * max_pending`` messages plus the pipeline's own bounded
  queues in memory.  :attr:`max_active` optionally gates how many workers
  run concurrently (admission control).
* **The drain loop** (the caller's thread) moves messages from every
  channel into per-client :class:`~repro.server.ciao.IngestSession`\\ s,
  round-robin with a bounded take per visit so no channel starves the
  others, and periodically re-allocates budgets from observed throughput.
* **Straggler reassignment.**  Work queues are shared state: a worker
  whose own queue runs dry *steals* the oldest pending records from the
  neediest sibling — always from one that is dead (killed mid-load), or
  from a live one still holding at least a chunk's worth.  A dead
  client's remaining partition is therefore absorbed by whoever finishes
  first, with per-event accounting in the report; a merely slow client
  sheds load the same way.  Records a dying worker had in hand but never
  shipped are returned to its queue first, so the fleet-wide invariant
  ``received == loaded + sidelined + malformed == all records`` survives
  any single-client death.

Consistency model: the fleet result is equivalent to serial single-client
ingest of the union of the partitions — the engine scans a table as the
unordered union of its Parquet parts plus sideline, and every record lands
in exactly one shipped chunk regardless of which client ships it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, \
    Tuple, Union

from ..analysis.annotations import guarded_by
from ..analysis.sanitizer import make_condition
from ..client.device import DEFAULT_SHIP_BATCH, SimulatedClient
from ..client.protocol import encode_chunk
from ..core.budgets import Budget, ClientProfile
from ..core.optimizer import PushdownPlan
from ..server.ciao import CiaoServer, IngestSession
from ..transport import Channel, ChannelLike, per_client_channels
from ..simulate.runtime import LOADING, PREFILTERING, CostLedger
from .allocation import FleetAllocation, FleetBudgetAllocator, \
    uniform_allocation
from .population import ClientPopulation, FleetClientSpec
from .report import ClientRunReport, FleetReport

#: Undelivered messages a channel may hold before its sender blocks.
DEFAULT_MAX_PENDING = 8

#: Sleep while waiting out backpressure or an empty work pool.
_POLL_SECONDS = 0.0005

#: Sentinel marking "no plan swap pending" (None is a valid plan).
_NO_SWAP = object()

#: Sentinel from ``_take_work(can_wait=False)``: no work available right
#: now, but the pool is not exhausted — flush buffered frames and retry.
_EMPTY_NOW = object()


@dataclass
class _Worker:
    """Mutable per-client state shared between threads.

    The work ``queue`` and the in-hand counter are guarded by the
    coordinator's condition lock; counters written by the worker thread
    (``shipped_*``) are read by the drain loop only for monotone
    progress estimates, which tolerate staleness.
    """

    spec: FleetClientSpec
    client: SimulatedClient
    channel: Channel
    session: IngestSession
    queue: Deque[str]
    assigned: int
    budget_us: float = 0.0
    shipped_records: int = 0
    shipped_chunks: int = 0
    absorbed_records: int = 0
    bytes_sent: int = 0
    chunks_emitted: int = 0
    #: Records claimed from a queue but not yet shipped or returned;
    #: guarded by the coordinator's condition lock.
    in_hand: int = 0
    killed: bool = False
    #: False only while gated behind admission control — such a worker
    #: cannot consume its own queue, so siblings may drain it fully.
    started: bool = True
    done: bool = False
    pending_plan: object = _NO_SWAP
    ledger: CostLedger = field(default_factory=CostLedger)
    thread: Optional[threading.Thread] = None


class FleetCoordinator:
    """Run a heterogeneous client fleet against one CIAO server.

    Args:
        server: The target server (state ``"loading"``).  Sharded servers
            get true pipeline parallelism; serial ones still get the
            coordination semantics.
        population: The fleet (a :class:`ClientPopulation` or a plain
            sequence of :class:`FleetClientSpec`).
        global_plan: Fleet-wide optimized pushdown plan; each client
            executes its allocated prefix.  ``None`` ships unannotated.
        aggregate_budget: Mean per-record budget across the fleet
            (calibrated-machine µs).  ``None`` gives every client the
            full *global_plan*.
        chunk_size: Records per chunk.
        batch_size: Chunk frames concatenated per channel message
            (framing amortization; measured default
            :data:`~repro.client.device.DEFAULT_SHIP_BATCH`).
        max_pending: Per-channel backpressure bound, in messages.
        max_active: Admission control — concurrently running client
            workers (``None`` = all at once).
        channel_factory: Per-client transport — a ``client_id ->
            Channel`` factory, or any declarative spec
            :func:`repro.simulate.network.per_client_channels` accepts
            (a :class:`~repro.simulate.network.ChannelSpec`, ``"memory"``,
            ``"file:<dir>"``); defaults to in-memory channels.  Lossy
            specs derive an independent, replayable drop seed per client.
        realloc_interval: Re-allocate budgets from observed throughput
            every this many chunks drained (``None`` disables — required
            for bit-for-bit deterministic client ledgers).
    """

    def __init__(self, server: CiaoServer,
                 population: ClientPopulation | Sequence[FleetClientSpec],
                 global_plan: Optional[PushdownPlan] = None,
                 aggregate_budget: Optional[Budget] = None,
                 chunk_size: int = 500,
                 batch_size: int = DEFAULT_SHIP_BATCH,
                 max_pending: int = DEFAULT_MAX_PENDING,
                 max_active: Optional[int] = None,
                 channel_factory: Union[
                     Callable[[str], Channel], ChannelLike, None
                 ] = None,
                 realloc_interval: Optional[int] = None):
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if max_active is not None and max_active < 1:
            raise ValueError("max_active must be >= 1 or None")
        if realloc_interval is not None and realloc_interval < 1:
            raise ValueError("realloc_interval must be >= 1 or None")
        if not isinstance(population, ClientPopulation):
            population = ClientPopulation(list(population))
        self.server = server
        self.population = population
        self.global_plan = global_plan
        self.aggregate_budget = aggregate_budget
        self.chunk_size = chunk_size
        self.batch_size = batch_size
        self.max_pending = max_pending
        self.max_active = max_active
        self.realloc_interval = realloc_interval
        self._channel_factory = per_client_channels(channel_factory)
        self._allocator: Optional[FleetBudgetAllocator] = None
        if global_plan is not None and aggregate_budget is not None:
            self._allocator = FleetBudgetAllocator(
                global_plan, aggregate_budget
            )
        self._workers: List[_Worker] = []
        self._by_id: Dict[str, _Worker] = {}
        self._cond = make_condition("FleetCoordinator._cond")
        self._admission = (
            threading.Semaphore(max_active) if max_active else None
        )
        self._reassignment_events = 0  # guarded-by: _cond
        self._reassigned_records = 0  # guarded-by: _cond
        self._reassignments: List[Tuple[str, str, int]] = []  # guarded-by: _cond
        self._realloc_rounds = 0
        self._profiles: List[ClientProfile] = []
        self._ran = False

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def kill_client(self, client_id: str) -> None:
        """Simulate *client_id* dying right now (cooperative, at the next
        chunk/backpressure boundary).  Its unshipped records stay in its
        queue for survivors to absorb."""
        worker = self._by_id[client_id]
        worker.killed = True
        with self._cond:
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------
    def run(self, records: Sequence[str],
            finalize: bool = True) -> FleetReport:
        """Load *records* through the fleet; returns the report.

        Partitions the input across the population, allocates budgets,
        runs every client worker concurrently, drains their channels into
        per-client ingest sessions, and (by default) finalizes the server
        so the report carries the merged load summary.
        """
        if self._ran:
            raise RuntimeError("a FleetCoordinator runs exactly once")
        self._ran = True
        records = list(records)
        partition = self.population.partition(records)
        allocation = self._initial_allocation()
        self._profiles = self.population.profiles()

        for spec in self.population:
            plan = allocation.plans.get(spec.client_id)
            budget = allocation.budgets.get(spec.client_id, Budget(0))
            client = SimulatedClient(
                spec.client_id,
                plan=plan,
                chunk_size=self.chunk_size,
                speed_factor=spec.speed_factor,
            )
            channel = self._channel_factory(spec.client_id)
            worker = _Worker(
                spec=spec,
                client=client,
                channel=channel,
                session=self.server.open_ingest_session(spec.client_id),
                queue=deque(partition[spec.client_id]),
                assigned=len(partition[spec.client_id]),
                budget_us=budget.us,
                started=self._admission is None,
            )
            self._workers.append(worker)
            self._by_id[spec.client_id] = worker

        start = time.perf_counter()
        for worker in self._workers:
            worker.thread = threading.Thread(
                target=self._worker_loop, args=(worker,), daemon=True
            )
            worker.thread.start()
        self._drain_loop()
        for worker in self._workers:
            worker.thread.join(timeout=30.0)
        summary = None
        if finalize:
            summary = self.server.finalize_loading()
        wall = time.perf_counter() - start
        return self._build_report(records, summary, wall)

    def _initial_allocation(self) -> FleetAllocation:
        if self._allocator is not None:
            return self._allocator.allocate(self.population.profiles())
        return uniform_allocation(
            self.global_plan, [s.client_id for s in self.population]
        )

    # ------------------------------------------------------------------
    # Client worker side
    # ------------------------------------------------------------------
    def _worker_loop(self, worker: _Worker) -> None:
        if self._admission is not None:
            self._admission.acquire()
        worker.started = True
        # (payload, raw records) pairs annotated but not yet shipped.
        unshipped: List[Tuple[bytes, List[str]]] = []
        try:
            self._worker_body(worker, unshipped)
        except BaseException:  # ciaolint: allow[API006] -- re-raised below; siblings must be unwedged first
            # An unexpected client-side crash must not wedge the fleet:
            # hand back what can be handed back, zero the in-hand count
            # so siblings' termination check converges, and die loudly.
            worker.killed = True
            self._return_records(worker, unshipped)
            with self._cond:
                worker.in_hand = 0
                self._cond.notify_all()
            raise
        finally:
            worker.done = True
            with self._cond:
                self._cond.notify_all()
            if self._admission is not None:
                self._admission.release()

    def _worker_body(self, worker: _Worker,
                     unshipped: List[Tuple[bytes, List[str]]]) -> None:
        while True:
            if worker.pending_plan is not _NO_SWAP:
                # Swap-and-clear under the lock: _reallocate (drain
                # thread) may store a newer plan between our read and
                # the reset, and that round must not be silently lost.
                with self._cond:
                    pending = worker.pending_plan
                    worker.pending_plan = _NO_SWAP
                if pending is not _NO_SWAP:
                    worker.client.update_plan(pending)
            if worker.killed:
                self._return_records(worker, unshipped)
                return
            # Block waiting for work only with an empty ship buffer:
            # a waiter holding unshipped (in-hand) records would count
            # as "may still produce" for every *other* waiter's
            # exhaustion check, and two such waiters deadlock.
            batch = self._take_work(worker, can_wait=not unshipped)
            if batch is _EMPTY_NOW:
                if not self._flush(worker, unshipped):
                    self._return_records(worker, unshipped)
                    return
                continue
            if batch is None:
                break
            with worker.ledger.timed(PREFILTERING):
                for chunk in worker.client.process(
                    batch, start_chunk_id=worker.chunks_emitted
                ):
                    worker.chunks_emitted += 1
                    unshipped.append(
                        (encode_chunk(chunk), chunk.records)
                    )
            after = worker.spec.kill_after_chunks
            if after is not None and worker.chunks_emitted >= after:
                # Fault injection: ship exactly the first *after* chunks,
                # then die — deterministically, regardless of how frames
                # are batched.  The unclaimed queue stays for survivors.
                if unshipped and not self._flush(worker, unshipped):
                    self._return_records(worker, unshipped)
                    return
                worker.killed = True
                continue
            if len(unshipped) >= self.batch_size:
                if not self._flush(worker, unshipped):
                    self._return_records(worker, unshipped)
                    return
        # Work pool exhausted — or this worker was killed while it
        # waited for work; a dead client must not ship its buffer.
        if worker.killed:
            self._return_records(worker, unshipped)
        elif unshipped and not self._flush(worker, unshipped):
            self._return_records(worker, unshipped)

    def _take_work(self, worker: _Worker, can_wait: bool = True):
        """Claim up to one chunk of records — own queue first, then steal.

        Returns ``None`` when the fleet's work pool is exhausted (all
        queues empty and nothing in flight in any worker's hands), and
        :data:`_EMPTY_NOW` when nothing is claimable right now but the
        pool may still refill and *can_wait* is False.
        """
        with self._cond:
            while True:
                if worker.killed:
                    return None
                if worker.queue:
                    return self._claim(worker, worker.queue,
                                       self.chunk_size)
                picked = self._pick_victim(worker)
                if picked is not None:
                    victim, limit = picked
                    batch = self._claim(worker, victim.queue, limit)
                    worker.absorbed_records += len(batch)
                    self._reassignment_events += 1
                    self._reassigned_records += len(batch)
                    self._reassignments.append(
                        (victim.spec.client_id, worker.spec.client_id,
                         len(batch))
                    )
                    return batch
                # Exhausted iff no queue holds records and no *other*
                # worker might still return claimed ones (a sibling's
                # in-hand records either ship — gone for good — or come
                # back to a queue when it dies; this worker's own buffer
                # is flushed by itself after leaving).
                if not any(w.queue for w in self._workers) and not any(
                    w.in_hand for w in self._workers if w is not worker
                ):
                    return None
                if not can_wait:
                    return _EMPTY_NOW
                self._cond.wait(timeout=0.01)

    @guarded_by("_cond")
    def _claim(self, worker: _Worker, queue: Deque[str],
               limit: int) -> List[str]:
        n = min(self.chunk_size, limit, len(queue))
        batch = [queue.popleft() for _ in range(n)]
        worker.in_hand += n
        return batch

    @guarded_by("_cond")
    def _pick_victim(self, thief: _Worker
                     ) -> Optional[Tuple[_Worker, int]]:
        """The neediest sibling to steal from (with a take limit), or None.

        Workers that cannot make progress themselves — dead (killed, or
        exited with a non-empty queue) or still gated behind admission
        control — are fully stealable.  Live ones are only relieved of
        backlog *beyond* their final chunk: every running client gets to
        ship at least one chunk of its own partition, and the tail of a
        healthy load is not churned between clients.
        """
        best: Optional[_Worker] = None
        best_key = None
        best_limit = 0
        for other in self._workers:
            if other is thief or not other.queue:
                continue
            backlog = len(other.queue)
            blocked = other.killed or other.done or not other.started
            limit = backlog if blocked else backlog - self.chunk_size
            if limit <= 0:
                continue
            key = (blocked, backlog)
            if best_key is None or key > best_key:
                best, best_key, best_limit = other, key, limit
        if best is None:
            return None
        return best, best_limit

    def _flush(self, worker: _Worker,
               unshipped: List[Tuple[bytes, List[str]]]) -> bool:
        """Ship the buffered frames as one message; False if killed while
        waiting out backpressure (records then still belong to the
        worker's in-hand set)."""
        while worker.channel.pending() >= self.max_pending:
            if worker.killed:
                return False
            time.sleep(_POLL_SECONDS)
        payloads = [payload for payload, _ in unshipped]
        worker.channel.send_frames(payloads)
        shipped = sum(len(raws) for _, raws in unshipped)
        worker.bytes_sent += sum(len(p) for p in payloads)
        worker.shipped_records += shipped
        worker.shipped_chunks += len(unshipped)
        unshipped.clear()
        with self._cond:
            worker.in_hand -= shipped
            self._cond.notify_all()
        return True

    def _return_records(self, worker: _Worker,
                        unshipped: List[Tuple[bytes, List[str]]]) -> None:
        """Put a dying worker's in-hand records back for reassignment."""
        raws = [raw for _, chunk_raws in unshipped for raw in chunk_raws]
        unshipped.clear()
        if not raws:
            return
        with self._cond:
            worker.queue.extendleft(reversed(raws))
            worker.in_hand -= len(raws)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Server side: drain + re-allocation
    # ------------------------------------------------------------------
    def _drain_loop(self) -> None:
        drained_chunks = 0
        next_realloc = self.realloc_interval
        while True:
            moved = False
            for worker in self._workers:
                # Bounded take per visit: a fast client cannot starve
                # its siblings' channels.
                for _ in range(self.max_pending):
                    payload = worker.channel.receive()
                    if payload is None:
                        break
                    drained_chunks += worker.session.ingest(payload)
                    moved = True
            if (next_realloc is not None
                    and drained_chunks >= next_realloc):
                self._reallocate()
                next_realloc = drained_chunks + self.realloc_interval
            if moved:
                continue
            if all(w.done for w in self._workers) and all(
                w.channel.pending() == 0 for w in self._workers
            ):
                return
            time.sleep(_POLL_SECONDS)

    def _reallocate(self) -> None:
        """Feed observed throughput back into the budget allocation."""
        if self._allocator is None:
            return
        throughput: Dict[str, float] = {}
        for worker in self._workers:
            if worker.killed:
                continue  # dead clients drop out of the allocation
            wall = worker.ledger.wall_seconds.get(PREFILTERING, 0.0)
            if wall > 0 and worker.shipped_records > 0:
                throughput[worker.spec.client_id] = (
                    worker.shipped_records / wall
                )
        if not throughput:
            return
        allocation = self._allocator.reallocate(
            self._profiles, throughput
        )
        # Remember the blended factors so the next round starts from them.
        self._profiles = [
            ClientProfile(
                client_id=p.client_id,
                speed_factor=allocation.speed_factors.get(
                    p.client_id, p.speed_factor
                ),
                slack_us_per_record=p.slack_us_per_record,
            )
            for p in self._profiles
        ]
        with self._cond:
            for worker in self._workers:
                cid = worker.spec.client_id
                if worker.killed or worker.done:
                    continue
                if cid in allocation.plans:
                    worker.budget_us = allocation.budgets[cid].us
                    worker.pending_plan = allocation.plans[cid]
        self._realloc_rounds += 1

    # ------------------------------------------------------------------
    def _build_report(self, records: Sequence[str],
                      summary, wall: float) -> FleetReport:
        ledger = CostLedger()
        clients: List[ClientRunReport] = []
        for worker in self._workers:
            stats = worker.client.stats
            ledger = ledger.merge(worker.ledger)
            ledger.charge(PREFILTERING, stats.modeled_us)
            clients.append(
                ClientRunReport(
                    client_id=worker.spec.client_id,
                    platform=worker.spec.platform,
                    speed_factor=worker.spec.speed_factor,
                    share=worker.spec.share,
                    budget_us=worker.budget_us,
                    n_pushed=(
                        len(worker.client.plan)
                        if worker.client.plan is not None else 0
                    ),
                    assigned_records=worker.assigned,
                    shipped_records=worker.shipped_records,
                    absorbed_records=worker.absorbed_records,
                    shipped_chunks=worker.shipped_chunks,
                    bytes_sent=worker.bytes_sent,
                    modeled_us_per_record=stats.modeled_us_per_record(),
                    prefilter_wall_s=worker.ledger.wall_seconds.get(
                        PREFILTERING, 0.0
                    ),
                    killed=worker.killed,
                    messages_dropped=worker.channel.stats.messages_dropped,
                )
            )
        if summary is None:
            summary = self.server.load_summary
        ledger.charge_wall(LOADING, summary.wall_seconds)
        return FleetReport(
            clients=clients,
            summary=summary,
            total_records=len(records),
            wall_seconds=wall,
            reassignment_events=self._reassignment_events,
            reassigned_records=self._reassigned_records,
            reassignments=list(self._reassignments),
            realloc_rounds=self._realloc_rounds,
            chunks_by_source=dict(self.server.ingest_sources),
            ledger=ledger,
        )
