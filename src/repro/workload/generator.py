"""Query workload generation (paper §VII-C and Table III).

Every query instantiates the single template
``SELECT COUNT(*) FROM <dataset> WHERE <conjunctive predicates>``.
To build a query we assign each pool predicate an inclusion probability,
scaled so the *expected* number of predicates per query is fixed (3 in the
paper), and draw each predicate independently:

* **uniform** — every predicate equally likely (workload C);
* **zipfian(s)** — probability proportional to ``1/rank^s``, so a few hot
  predicates recur across many queries (workloads A and B).

Queries that draw no predicate are rejected and resampled, which is why the
realized per-query counts (Table III's Min/Max) start at 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..core.predicates import Clause, Query, Workload
from ..data.zipf import zipf_weights
from .pool import PredicatePool


@dataclass(frozen=True)
class SelectionDistribution:
    """How pool predicates are drawn into queries.

    ``exponent = 0`` is the uniform distribution; larger exponents
    concentrate inclusion probability on low ranks.  (The paper parameterizes
    its numpy Zipfian so that a *smaller* parameter is *more* skewed; we
    record the paper label separately in the canonical workload specs and
    always use the standard "larger exponent = more skew" here.)
    """

    exponent: float

    def inclusion_probabilities(self, pool_size: int,
                                expected_predicates: float) -> List[float]:
        """Per-rank inclusion probabilities summing to the expected count.

        Probabilities are capped at 1; mass lost to capping is re-spread
        over uncapped ranks so the expectation stays (approximately) fixed.
        """
        if expected_predicates <= 0:
            raise ValueError("expected predicate count must be positive")
        if expected_predicates > pool_size:
            raise ValueError(
                f"cannot expect {expected_predicates} predicates from a "
                f"pool of {pool_size}"
            )
        weights = zipf_weights(pool_size, self.exponent)
        probs = [w * expected_predicates for w in weights]
        # Redistribute the excess of capped ranks (≥ 1.0) onto the rest.
        for _ in range(32):
            excess = sum(p - 1.0 for p in probs if p > 1.0)
            if excess <= 1e-12:
                break
            uncapped_weight = sum(
                weights[i] for i, p in enumerate(probs) if p < 1.0
            )
            if uncapped_weight <= 0:
                break
            for i, p in enumerate(probs):
                if p > 1.0:
                    probs[i] = 1.0
                elif p < 1.0:
                    probs[i] = min(
                        1.0, p + excess * weights[i] / uncapped_weight
                    )
        return [min(1.0, p) for p in probs]


UNIFORM = SelectionDistribution(0.0)


def zipfian(exponent: float) -> SelectionDistribution:
    """A Zipfian selection distribution with the given exponent."""
    if exponent < 0:
        raise ValueError("Zipf exponents must be non-negative")
    return SelectionDistribution(exponent)


def generate_query(pool: PredicatePool,
                   probabilities: Sequence[float],
                   rng: random.Random,
                   max_predicates: Optional[int] = None,
                   name: str = "") -> Query:
    """Draw one query; resample until it has ≥ 1 predicate.

    ``max_predicates`` optionally rejects overly long conjunctions, used by
    the micro-benchmarks that fix the exact predicate count per query.
    """
    for _ in range(10_000):
        chosen: List[Clause] = [
            pool[i] for i, p in enumerate(probabilities)
            if rng.random() < p
        ]
        if not chosen:
            continue
        if max_predicates is not None and len(chosen) > max_predicates:
            continue
        return Query(tuple(chosen), name=name)
    raise RuntimeError(
        "rejected 10000 query draws; inclusion probabilities are degenerate"
    )


def generate_workload(pool: PredicatePool,
                      n_queries: int,
                      expected_predicates: float,
                      distribution: SelectionDistribution,
                      rng: random.Random,
                      max_predicates: Optional[int] = None) -> Workload:
    """Generate a full workload in the paper's style."""
    if n_queries <= 0:
        raise ValueError("need at least one query")
    probabilities = distribution.inclusion_probabilities(
        len(pool), expected_predicates
    )
    queries = tuple(
        generate_query(pool, probabilities, rng,
                       max_predicates=max_predicates, name=f"q{i}")
        for i in range(n_queries)
    )
    return Workload(queries, dataset=pool.dataset)


def fixed_size_query(pool: PredicatePool, ranks: Sequence[int],
                     name: str = "") -> Query:
    """A query over explicit pool ranks (micro-benchmark construction)."""
    return Query(tuple(pool.subset(ranks)), name=name)


def overlap_statistics(workload: Workload) -> Tuple[float, float]:
    """(mean queries per distinct clause, max queries per clause).

    The first number is the paper's informal "predicate overlap": how many
    queries an average pushed-down predicate would serve.
    """
    counts = list(workload.clause_query_counts().values())
    return sum(counts) / len(counts), float(max(counts))
