"""A virtual clock for deterministic experiment timing.

Wall-clock timings of a pure-Python prototype vary run to run and cannot
match the paper's C++/Spark testbed anyway, so experiments report *two*
time axes: real wall-clock (honest, noisy) and virtual time advanced by the
calibrated cost model (deterministic, comparable across runs).  The virtual
clock is the spine of the second axis.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator


class VirtualClock:
    """Monotone microsecond counter advanced explicitly by components."""

    def __init__(self, start_us: float = 0.0):
        if start_us < 0:
            raise ValueError("clocks cannot start before zero")
        self._now_us = float(start_us)

    @property
    def now_us(self) -> float:
        """Current virtual time in microseconds."""
        return self._now_us

    @property
    def now_seconds(self) -> float:
        """Current virtual time in seconds."""
        return self._now_us / 1e6

    def advance(self, microseconds: float) -> float:
        """Advance the clock and return the new time.

        Negative advances are rejected: virtual time is monotone by
        construction, which keeps experiment traces well-ordered.
        """
        if microseconds < 0:
            raise ValueError(f"cannot advance by {microseconds} µs")
        self._now_us += microseconds
        return self._now_us

    @contextmanager
    def window(self) -> Iterator["ClockWindow"]:
        """Measure virtual time spent inside a with-block."""
        window = ClockWindow(self, self._now_us)
        yield window
        window.close(self._now_us)

    def __repr__(self) -> str:
        return f"VirtualClock({self._now_us:.1f}µs)"


class ClockWindow:
    """Elapsed-virtual-time probe produced by :meth:`VirtualClock.window`."""

    def __init__(self, clock: VirtualClock, start_us: float):
        self._clock = clock
        self.start_us = start_us
        self.end_us: float | None = None

    def close(self, end_us: float) -> None:
        """Seal the window at *end_us* (called by the context manager)."""
        self.end_us = end_us

    @property
    def elapsed_us(self) -> float:
        """Virtual microseconds elapsed inside the window so far/at close."""
        end = self.end_us if self.end_us is not None else self._clock.now_us
        return end - self.start_us
