"""Finding model for ciaolint: one rule violation at one source location.

Findings are plain, ordered, hashable values so the engine can sort,
deduplicate, diff against a baseline, and serialize them without any
checker-specific knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: Repo-relative POSIX path of the offending file.
        line: 1-based line number.
        col: 0-based column offset.
        rule: Stable rule id (e.g. ``LCK001``) — what to put in an
            ``allow[...]`` marker or a baseline justification.
        checker: The owning checker's group name (e.g.
            ``lock-discipline``) — what ``--select`` matches.
        message: Human-readable description of the violation.
    """

    path: str
    line: int
    col: int
    rule: str
    checker: str
    message: str

    def render(self) -> str:
        """The one-line text form: ``path:line:col: RULE [checker] msg``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.checker}] {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (stable key order via dataclass field order)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "checker": self.checker,
            "message": self.message,
        }

    def baseline_key(self) -> Dict[str, str]:
        """The identity a baseline entry matches on.

        Line/column are deliberately excluded so an unrelated edit above
        a baselined finding does not resurrect it.
        """
        return {"rule": self.rule, "path": self.path,
                "message": self.message}
