"""Unit tests for the simulated transport channels."""

import pytest

from repro.simulate import FileChannel, LinkModel, MemoryChannel


@pytest.mark.parametrize("make_channel", [
    lambda tmp: MemoryChannel(),
    lambda tmp: FileChannel(tmp / "spool"),
])
class TestChannelContract:
    def test_fifo_order(self, tmp_path, make_channel):
        channel = make_channel(tmp_path)
        channel.send(b"one")
        channel.send(b"two")
        assert channel.receive() == b"one"
        assert channel.receive() == b"two"
        assert channel.receive() is None

    def test_pending_and_len(self, tmp_path, make_channel):
        channel = make_channel(tmp_path)
        assert len(channel) == 0
        channel.send(b"x")
        assert channel.pending() == 1
        channel.receive()
        assert channel.pending() == 0

    def test_drain(self, tmp_path, make_channel):
        channel = make_channel(tmp_path)
        for i in range(5):
            channel.send(f"m{i}".encode())
        assert [m.decode() for m in channel.drain()] == [
            f"m{i}" for i in range(5)
        ]

    def test_stats(self, tmp_path, make_channel):
        channel = make_channel(tmp_path)
        channel.send(b"abcd")
        channel.send(b"ef")
        channel.receive()
        assert channel.stats.messages_sent == 2
        assert channel.stats.bytes_sent == 6
        assert channel.stats.messages_received == 1

    def test_type_checked(self, tmp_path, make_channel):
        channel = make_channel(tmp_path)
        with pytest.raises(TypeError):
            channel.send("not bytes")


class TestFileChannelPersistence:
    def test_spool_survives_reopen(self, tmp_path):
        a = FileChannel(tmp_path / "spool")
        a.send(b"persisted")
        b = FileChannel(tmp_path / "spool")
        assert b.pending() == 1
        assert b.receive() == b"persisted"

    def test_gap_is_skipped_not_stalled(self, tmp_path):
        # A crashed consumer that deleted one file out of order must not
        # wedge the channel on the missing number forever.
        channel = FileChannel(tmp_path / "spool")
        for i in range(4):
            channel.send(b"m%d" % i)
        (tmp_path / "spool" / "000000001.msg").unlink()
        assert channel.receive() == b"m0"
        assert channel.receive() == b"m2"
        assert channel.receive() == b"m3"
        assert channel.receive() is None

    def test_pending_counts_files_on_disk(self, tmp_path):
        channel = FileChannel(tmp_path / "spool")
        for i in range(5):
            channel.send(b"x%d" % i)
        (tmp_path / "spool" / "000000002.msg").unlink()
        # Not 5 (counter arithmetic): only 4 messages still exist.
        assert channel.pending() == 4
        resumed = FileChannel(tmp_path / "spool")
        assert resumed.pending() == 4
        assert len(list(resumed.drain())) == 4
        assert resumed.pending() == 0

    def test_resume_ignores_non_numeric_msg_files(self, tmp_path):
        spool = tmp_path / "spool"
        channel = FileChannel(spool)
        channel.send(b"real")
        (spool / "notes.msg").write_bytes(b"junk someone dropped here")
        resumed = FileChannel(spool)
        assert resumed.pending() == 1
        assert resumed.receive() == b"real"


class TestBatchedFraming:
    """send_batch/drain_chunks round chunk frames through one message."""

    def frames(self):
        from repro.client import encode_chunk
        from repro.rawjson import JsonChunk, dump_record

        return [
            encode_chunk(JsonChunk(i, [dump_record({"v": i})]))
            for i in range(5)
        ]

    @pytest.mark.parametrize("make_channel", [
        lambda tmp: MemoryChannel(),
        lambda tmp: FileChannel(tmp / "spool"),
    ])
    def test_round_trip(self, tmp_path, make_channel):
        frames = self.frames()
        channel = make_channel(tmp_path)
        channel.send_batch(frames[:3])
        channel.send(frames[3])
        channel.send_batch(frames[4:])
        # 3 messages on the wire, 5 chunk frames delivered.
        assert channel.stats.messages_sent == 3
        assert channel.stats.bytes_sent == sum(len(f) for f in frames)
        assert list(channel.drain_chunks()) == frames

    def test_empty_batch_sends_nothing(self, tmp_path):
        channel = MemoryChannel()
        channel.send_batch([])
        assert channel.pending() == 0
        assert channel.stats.messages_sent == 0

    def test_batch_type_checked(self, tmp_path):
        channel = MemoryChannel()
        with pytest.raises(TypeError):
            channel.send_batch(["not bytes"])

    def test_drain_chunks_passes_single_frames_through(self, tmp_path):
        frames = self.frames()
        channel = MemoryChannel()
        for frame in frames:
            channel.send(frame)
        assert list(channel.drain_chunks()) == frames


class TestLinkModel:
    def test_transfer_time(self):
        link = LinkModel(bandwidth_mbps=8.0, latency_us=100.0)
        # 1000 bytes = 8000 bits at 8 Mbps = 1000 µs + latency.
        assert link.transfer_time_us(1000) == pytest.approx(1100.0)

    def test_zero_payload_costs_latency(self):
        assert LinkModel(latency_us=50).transfer_time_us(0) == 50

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            LinkModel().transfer_time_us(-1)


class TestSendFrames:
    """send_frames: the shared one-frame-vs-batch flush dispatch."""

    def frames(self):
        from repro.client import encode_chunk
        from repro.rawjson import JsonChunk, dump_record

        return [
            encode_chunk(JsonChunk(i, [dump_record({"v": i})]))
            for i in range(3)
        ]

    def test_empty_sends_nothing(self):
        channel = MemoryChannel()
        channel.send_frames([])
        assert channel.stats.messages_sent == 0

    def test_single_frame_sent_directly(self):
        frames = self.frames()
        channel = MemoryChannel()
        channel.send_frames(frames[:1])
        assert channel.stats.messages_sent == 1
        assert channel.receive() == frames[0]

    def test_many_frames_become_one_message(self):
        frames = self.frames()
        channel = MemoryChannel()
        channel.send_frames(frames)
        assert channel.stats.messages_sent == 1
        assert [bytes(f) for f in channel.drain_chunks()] == frames


# ----------------------------------------------------------------------
# Decorator channels + the declarative factory
# ----------------------------------------------------------------------
from pathlib import Path

from repro.simulate import (
    ChannelSpec,
    LatencyChannel,
    LossyChannel,
    make_channel,
)
from repro.simulate.network import per_client_channels


class TestLossyChannel:
    def test_requires_explicit_seed(self):
        with pytest.raises(ValueError, match="seed"):
            LossyChannel(MemoryChannel(), drop_rate=0.1, seed=None)

    def test_drop_rate_bounds(self):
        with pytest.raises(ValueError, match="drop_rate"):
            LossyChannel(MemoryChannel(), drop_rate=1.0, seed=1)
        with pytest.raises(ValueError, match="drop_rate"):
            LossyChannel(MemoryChannel(), drop_rate=-0.1, seed=1)

    def test_deterministic_drop_sequence(self):
        """Same seed → byte-for-byte identical drop accounting."""
        counts = []
        for _ in range(2):
            channel = LossyChannel(MemoryChannel(), drop_rate=0.5, seed=42)
            for i in range(100):
                channel.send(f"m{i}".encode())
            counts.append(channel.stats.messages_dropped)
        assert counts[0] == counts[1]
        assert counts[0] > 0

    def test_reliable_delivery_despite_drops(self):
        """Drops are retransmitted: every payload arrives, in order."""
        channel = LossyChannel(MemoryChannel(), drop_rate=0.6, seed=7)
        payloads = [f"m{i}".encode() for i in range(50)]
        for p in payloads:
            channel.send(p)
        assert list(channel.drain()) == payloads
        assert channel.stats.messages_dropped > 0

    def test_drops_cost_bytes_not_data(self):
        channel = LossyChannel(MemoryChannel(), drop_rate=0.5, seed=3)
        for _ in range(40):
            channel.send(b"x" * 10)
        sent = channel.stats
        # Retransmissions inflate bytes beyond the 40 * 10 payload floor.
        assert sent.bytes_sent == 10 * (40 + sent.messages_dropped)
        assert channel.inner.stats.messages_sent == 40

    def test_different_seeds_differ(self):
        a = LossyChannel(MemoryChannel(), drop_rate=0.5, seed=1)
        b = LossyChannel(MemoryChannel(), drop_rate=0.5, seed=2)
        seq_a, seq_b = [], []
        for i in range(64):
            a.send(b"x")
            b.send(b"x")
            seq_a.append(a.stats.messages_dropped)
            seq_b.append(b.stats.messages_dropped)
        assert seq_a != seq_b


class TestLatencyChannel:
    def test_accumulates_modeled_time(self):
        link = LinkModel(bandwidth_mbps=8.0, latency_us=100.0)
        channel = LatencyChannel(MemoryChannel(), link)
        channel.send(b"x" * 1000)  # 8000 bits / 8 Mbps = 1000 µs + 100
        assert channel.modeled_us == pytest.approx(1100.0)
        channel.send(b"")
        assert channel.modeled_us == pytest.approx(1200.0)

    def test_delegates_delivery(self):
        channel = LatencyChannel(MemoryChannel())
        channel.send(b"hello")
        assert channel.pending() == 1
        assert channel.receive() == b"hello"
        assert channel.stats.messages_received == 1


class TestMakeChannel:
    def test_default_memory(self):
        assert isinstance(make_channel(), MemoryChannel)
        assert isinstance(make_channel("memory"), MemoryChannel)

    def test_file_spec(self, tmp_path):
        channel = make_channel(f"file:{tmp_path / 'spool'}")
        assert isinstance(channel, FileChannel)
        channel = make_channel("file", directory=tmp_path / "spool2")
        assert isinstance(channel, FileChannel)

    def test_instance_passthrough(self):
        channel = MemoryChannel()
        assert make_channel(channel) is channel

    def test_factory_called(self):
        channel = make_channel(lambda: MemoryChannel())
        assert isinstance(channel, MemoryChannel)

    def test_spec_composition_order(self):
        spec = ChannelSpec(drop_rate=0.3, seed=5, link=LinkModel())
        channel = make_channel(spec)
        # Loss outside, latency inside, storage at the core.
        assert isinstance(channel, LossyChannel)
        assert isinstance(channel.inner, LatencyChannel)
        assert isinstance(channel.inner.inner, MemoryChannel)

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown channel spec"):
            make_channel("carrier-pigeon")

    def test_spec_validation(self, tmp_path):
        with pytest.raises(ValueError, match="spool directory"):
            ChannelSpec(kind="file")
        with pytest.raises(ValueError, match="seed"):
            ChannelSpec(drop_rate=0.5)
        with pytest.raises(ValueError, match="kind"):
            ChannelSpec(kind="quantum")


class TestPerClientChannels:
    def test_independent_seeds_per_client(self):
        factory = per_client_channels(ChannelSpec(drop_rate=0.5, seed=9))
        a, b = factory("client-00"), factory("client-01")
        assert isinstance(a, LossyChannel)
        assert a.seed != b.seed
        # Replayable: the same client id re-derives the same seed.
        assert factory("client-00").seed == a.seed

    def test_file_channels_get_subdirectories(self, tmp_path):
        factory = per_client_channels(
            ChannelSpec(kind="file", directory=tmp_path)
        )
        a = factory("c0")
        a.send(b"x")
        assert (tmp_path / "c0").is_dir()

    def test_callable_passthrough(self):
        sentinel = []
        factory = per_client_channels(
            lambda cid: sentinel.append(cid) or MemoryChannel()
        )
        factory("c7")
        assert sentinel == ["c7"]

    def test_shared_instance_rejected(self):
        with pytest.raises(TypeError, match="cannot back a fleet"):
            per_client_channels(MemoryChannel())

    def test_file_string_needs_directory(self):
        with pytest.raises(ValueError, match="spool directory"):
            per_client_channels("file")


class TestDeprecatedShim:
    def test_import_warns_once_and_reexports(self):
        import importlib
        import sys
        import warnings

        import repro.transport as transport

        sys.modules.pop("repro.simulate.network", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            import repro.simulate.network as shim
        fired = [w for w in caught
                 if issubclass(w.category, DeprecationWarning)
                 and "repro.simulate.network is deprecated" in str(w.message)]
        assert len(fired) == 1
        # A cached re-import must not warn again.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.import_module("repro.simulate.network")
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)
                    and "repro.simulate.network" in str(w.message)]
        # Every advertised name resolves to the transport object itself.
        for name in shim.__all__:
            assert getattr(shim, name) is getattr(transport, name)

    def test_simulate_package_import_does_not_warn(self):
        import subprocess
        import sys

        code = (
            "import warnings; warnings.simplefilter('error');"
            "import repro.simulate"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd="/root/repo",
        )
        assert proc.returncode == 0, proc.stderr
