thing = object()
