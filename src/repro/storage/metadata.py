"""File and row-group metadata for Parquet-lite.

The footer is where CIAO's integration with the storage format lives: each
row group carries, besides per-column statistics, the **predicate
bit-vectors** derived from the client chunks whose records were loaded into
it (paper §VI-A: "we store the bit-vector information of this object into
the metadata of each data block of the Parquet file").

The footer is serialized as JSON via our own writer/parser — the format is
self-hosted on the repository's substrates.  Bit-vector payloads are
hex-encoded strings inside it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..bitvec.bitvector import BitVector
from ..rawjson.parser import loads
from ..rawjson.writer import dumps
from .pages import PageStats
from .schema import Schema

#: Format magic / version, first and last bytes of every file.
MAGIC = b"PQL1"


@dataclass
class ColumnChunkMeta:
    """Location and statistics of one column chunk within a row group."""

    offset: int
    length: int
    stats: PageStats

    def to_dict(self) -> Dict[str, Any]:
        """JSON form for the footer."""
        return {
            "offset": self.offset,
            "length": self.length,
            "row_count": self.stats.row_count,
            "null_count": self.stats.null_count,
            "min": self.stats.min_value,
            "max": self.stats.max_value,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ColumnChunkMeta":
        """Inverse of :meth:`to_dict`."""
        return cls(
            offset=data["offset"],
            length=data["length"],
            stats=PageStats(
                row_count=data["row_count"],
                null_count=data["null_count"],
                min_value=data["min"],
                max_value=data["max"],
            ),
        )


@dataclass
class RowGroupMeta:
    """One row group: column locations, row count, and CIAO bit-vectors."""

    row_count: int
    columns: Dict[str, ColumnChunkMeta] = field(default_factory=dict)
    bitvectors: Dict[int, BitVector] = field(default_factory=dict)
    source_chunk_id: Optional[int] = None

    def attach_bitvector(self, predicate_id: int, bv: BitVector) -> None:
        """Attach a derived predicate bit-vector (one bit per loaded row)."""
        if len(bv) != self.row_count:
            raise ValueError(
                f"bit-vector has {len(bv)} bits for a row group of "
                f"{self.row_count} rows"
            )
        self.bitvectors[predicate_id] = bv

    def to_dict(self) -> Dict[str, Any]:
        """JSON form for the footer."""
        return {
            "row_count": self.row_count,
            "source_chunk_id": self.source_chunk_id,
            "columns": {
                name: meta.to_dict() for name, meta in self.columns.items()
            },
            "bitvectors": {
                str(pid): bv.to_bytes().hex()
                for pid, bv in self.bitvectors.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RowGroupMeta":
        """Inverse of :meth:`to_dict`."""
        meta = cls(
            row_count=data["row_count"],
            source_chunk_id=data.get("source_chunk_id"),
        )
        for name, column in data["columns"].items():
            meta.columns[name] = ColumnChunkMeta.from_dict(column)
        for pid, payload in data.get("bitvectors", {}).items():
            meta.bitvectors[int(pid)] = BitVector.from_bytes(
                bytes.fromhex(payload)
            )
        return meta


@dataclass
class FileMeta:
    """The footer: schema, row groups, global row count."""

    schema: Schema
    row_groups: List[RowGroupMeta] = field(default_factory=list)

    @property
    def total_rows(self) -> int:
        """Rows across all row groups."""
        return sum(rg.row_count for rg in self.row_groups)

    @property
    def predicate_ids(self) -> List[int]:
        """All predicate ids annotated anywhere in the file, sorted."""
        ids = set()
        for rg in self.row_groups:
            ids.update(rg.bitvectors)
        return sorted(ids)

    def serialize(self) -> bytes:
        """Footer bytes (JSON, UTF-8)."""
        return dumps(
            {
                "schema": self.schema.to_dict(),
                "row_groups": [rg.to_dict() for rg in self.row_groups],
            }
        ).encode("utf-8")

    @classmethod
    def deserialize(cls, payload: bytes) -> "FileMeta":
        """Inverse of :meth:`serialize`."""
        data = loads(payload.decode("utf-8"))
        meta = cls(schema=Schema.from_dict(data["schema"]))
        meta.row_groups = [
            RowGroupMeta.from_dict(rg) for rg in data["row_groups"]
        ]
        return meta
