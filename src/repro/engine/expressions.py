"""Expression AST for the mini query engine.

The engine evaluates full WHERE expressions over parsed rows — including
predicates CIAO can *not* push down (ranges, inequalities) — because query
results must be exact regardless of what was pushed.  The bridge to the
optimizer is :func:`to_clause`: a best-effort conversion of one conjunct
into a :class:`~repro.core.predicates.Clause`, returning ``None`` when the
conjunct is not client-evaluable (paper §V-A: such clauses are simply not
pushdown candidates).

Null semantics are two-valued: any comparison against an absent/null field
is false, matching the ground-truth semantics in
:meth:`SimplePredicate.evaluate`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..bitvec.bitvector import BitVector
from ..core.predicates import (
    Clause,
    SimplePredicate,
    exact,
    key_present,
    key_value,
    prefix,
    substring,
    suffix,
)


class Expr(ABC):
    """Base expression node."""

    @abstractmethod
    def evaluate(self, row: Mapping[str, Any]) -> Any:
        """Value of this expression on one row."""

    def evaluate_batch(self, batch) -> BitVector:
        """Truth of this expression over every row of a *batch*.

        Returns one bit per batch row (selected or not); the caller
        narrows the batch's selection vector with ``intersect_update``.
        Subclasses override with vectorized kernels; this generic
        fallback evaluates row-at-a-time through a reusable row view and
        is exact for any expression shape.
        """
        view = batch.row_view()
        bits = []
        for index in range(batch.num_rows):
            view.index = index
            bits.append(bool(self.evaluate(view)))
        return BitVector.from_bits(bits)

    @abstractmethod
    def columns(self) -> Set[str]:
        """Column names referenced (for projection pushdown)."""

    @abstractmethod
    def sql(self) -> str:
        """Render back to SQL text."""

    def __str__(self) -> str:
        return self.sql()


@dataclass(frozen=True)
class Column(Expr):
    """A column reference."""

    name: str

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return row.get(self.name)

    def columns(self) -> Set[str]:
        return {self.name}

    def sql(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expr):
    """A constant."""

    value: Any

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return self.value

    def columns(self) -> Set[str]:
        return set()

    def sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _compare_values(values: List[Any], op: str, rhs: Any) -> List[bool]:
    """Vectorized :meth:`Comparison.evaluate` over one column list.

    Replicates the scalar semantics bit-for-bit: null operands are false,
    bool/str kind mismatches are false (``true`` never equates ``1``),
    and un-orderable types compare false instead of raising.
    """
    if rhs is None:
        return [False] * len(values)
    want_bool = isinstance(rhs, bool)
    want_str = isinstance(rhs, str)
    if op == "=":
        if want_bool:
            # True/False are singletons; `is` excludes 1/0 impostors.
            return [v is rhs for v in values]
        if want_str:
            return [isinstance(v, str) and v == rhs for v in values]
        return [
            v == rhs and not isinstance(v, bool) for v in values
        ]
    if op == "!=":
        return [
            v is not None and isinstance(v, bool) == want_bool
            and isinstance(v, str) == want_str and v != rhs
            for v in values
        ]
    compare = _COMPARATORS[op]
    bits = []
    append = bits.append
    for v in values:
        if v is None or isinstance(v, bool) != want_bool \
                or isinstance(v, str) != want_str:
            append(False)
            continue
        try:
            append(bool(compare(v, rhs)))
        except TypeError:
            append(False)
    return bits


@dataclass(frozen=True)
class Comparison(Expr):
    """A binary comparison; false on nulls or type mismatch."""

    left: Expr
    op: str
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        lhs = self.left.evaluate(row)
        rhs = self.right.evaluate(row)
        if lhs is None or rhs is None:
            return False
        if isinstance(lhs, bool) != isinstance(rhs, bool):
            return False  # never equate true/1
        if isinstance(lhs, str) != isinstance(rhs, str):
            return False
        try:
            return bool(_COMPARATORS[self.op](lhs, rhs))
        except TypeError:
            return False

    def evaluate_batch(self, batch) -> BitVector:
        left, right = self.left, self.right
        if isinstance(left, Column) and isinstance(right, Literal):
            return BitVector.from_bits(
                _compare_values(batch.column(left.name), self.op,
                                right.value)
            )
        return super().evaluate_batch(batch)

    def columns(self) -> Set[str]:
        return self.left.columns() | self.right.columns()

    def sql(self) -> str:
        return f"{self.left.sql()} {self.op} {self.right.sql()}"


@dataclass(frozen=True)
class LikeExpr(Expr):
    """SQL LIKE with ``%`` wildcards (no ``_`` support; the paper's
    templates only use ``%``)."""

    column: Expr
    pattern: str

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        value = self.column.evaluate(row)
        if not isinstance(value, str):
            return False
        return like_match(self.pattern, value)

    def evaluate_batch(self, batch) -> BitVector:
        if not isinstance(self.column, Column):
            return super().evaluate_batch(batch)
        match = compile_like(self.pattern)
        return BitVector.from_bits(
            isinstance(v, str) and match(v)
            for v in batch.column(self.column.name)
        )

    def columns(self) -> Set[str]:
        return self.column.columns()

    def sql(self) -> str:
        escaped = self.pattern.replace("'", "''")
        return f"{self.column.sql()} LIKE '{escaped}'"


@dataclass(frozen=True)
class IsNotNull(Expr):
    """``col IS NOT NULL`` (also produced by the paper's ``col != NULL``)."""

    column: Expr

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return self.column.evaluate(row) is not None

    def evaluate_batch(self, batch) -> BitVector:
        if not isinstance(self.column, Column):
            return super().evaluate_batch(batch)
        return BitVector.from_bits(
            v is not None for v in batch.column(self.column.name)
        )

    def columns(self) -> Set[str]:
        return self.column.columns()

    def sql(self) -> str:
        return f"{self.column.sql()} IS NOT NULL"


@dataclass(frozen=True)
class IsNull(Expr):
    """``col IS NULL``."""

    column: Expr

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return self.column.evaluate(row) is None

    def evaluate_batch(self, batch) -> BitVector:
        if not isinstance(self.column, Column):
            return super().evaluate_batch(batch)
        return BitVector.from_bits(
            v is None for v in batch.column(self.column.name)
        )

    def columns(self) -> Set[str]:
        return self.column.columns()

    def sql(self) -> str:
        return f"{self.column.sql()} IS NULL"


@dataclass(frozen=True)
class And(Expr):
    """Conjunction."""

    children: Tuple[Expr, ...]

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return all(child.evaluate(row) for child in self.children)

    def evaluate_batch(self, batch) -> BitVector:
        mask = self.children[0].evaluate_batch(batch)
        for child in self.children[1:]:
            if not mask.any():
                break  # conjunction already dead everywhere
            mask.intersect_update(child.evaluate_batch(batch))
        return mask

    def columns(self) -> Set[str]:
        out: Set[str] = set()
        for child in self.children:
            out |= child.columns()
        return out

    def sql(self) -> str:
        return " AND ".join(
            f"({c.sql()})" if isinstance(c, Or) else c.sql()
            for c in self.children
        )


@dataclass(frozen=True)
class Or(Expr):
    """Disjunction."""

    children: Tuple[Expr, ...]

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return any(child.evaluate(row) for child in self.children)

    def evaluate_batch(self, batch) -> BitVector:
        mask = self.children[0].evaluate_batch(batch)
        for child in self.children[1:]:
            if mask.all():
                break  # disjunction already true everywhere
            mask.union_update(child.evaluate_batch(batch))
        return mask

    def columns(self) -> Set[str]:
        out: Set[str] = set()
        for child in self.children:
            out |= child.columns()
        return out

    def sql(self) -> str:
        return " OR ".join(c.sql() for c in self.children)


@dataclass(frozen=True)
class Not(Expr):
    """Negation."""

    child: Expr

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return not self.child.evaluate(row)

    def evaluate_batch(self, batch) -> BitVector:
        return ~self.child.evaluate_batch(batch)

    def columns(self) -> Set[str]:
        return self.child.columns()

    def sql(self) -> str:
        return f"NOT ({self.child.sql()})"


# ----------------------------------------------------------------------
# LIKE matching
# ----------------------------------------------------------------------
def like_match(pattern: str, value: str) -> bool:
    """Match a ``%``-wildcard LIKE pattern against *value*.

    Segments between ``%`` must appear in order; a leading/trailing
    non-wildcard segment anchors the start/end.
    """
    segments = pattern.split("%")
    if len(segments) == 1:
        return value == pattern
    head, *middle, tail = segments
    if head and not value.startswith(head):
        return False
    if tail and not value.endswith(tail):
        return False
    position = len(head)
    end_limit = len(value) - len(tail)
    for segment in middle:
        if not segment:
            continue
        found = value.find(segment, position, end_limit)
        if found == -1:
            return False
        position = found + len(segment)
    return position <= end_limit


def compile_like(pattern: str) -> Callable[[str], bool]:
    """One-off compile of a LIKE pattern into a ``str -> bool`` matcher.

    The batch engine matches one pattern against a whole column, so the
    common shapes (``'x'``, ``'x%'``, ``'%x'``, ``'%x%'``) collapse to a
    single C-level string method per value instead of re-splitting the
    pattern per row; every other shape falls back to :func:`like_match`.
    Matchers agree with ``like_match(pattern, value)`` on every string.
    """
    segments = pattern.split("%")
    if len(segments) == 1:
        return pattern.__eq__
    if all(not s for s in segments):  # '%', '%%', ...: matches anything
        return lambda value: True
    if len(segments) == 2:
        head, tail = segments
        if not tail:
            return lambda value: value.startswith(head)
        if not head:
            return lambda value: value.endswith(tail)
        floor = len(head) + len(tail)
        return lambda value: (
            len(value) >= floor
            and value.startswith(head) and value.endswith(tail)
        )
    if len(segments) == 3 and not segments[0] and not segments[2]:
        body = segments[1]
        return lambda value: body in value
    return lambda value: like_match(pattern, value)


# ----------------------------------------------------------------------
# Bridging to the optimizer's clause model
# ----------------------------------------------------------------------
def conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Top-level AND factors of *expr* (flattening nested ANDs)."""
    if expr is None:
        return []
    if isinstance(expr, And):
        out: List[Expr] = []
        for child in expr.children:
            out.extend(conjuncts(child))
        return out
    return [expr]


def _simple_from(expr: Expr) -> Optional[SimplePredicate]:
    """One atom → supported SimplePredicate, or None."""
    if isinstance(expr, Comparison) and isinstance(expr.left, Column) \
            and isinstance(expr.right, Literal):
        value = expr.right.value
        if expr.op == "=":
            if isinstance(value, str):
                return exact(expr.left.name, value) if value else None
            if isinstance(value, bool) or isinstance(value, int):
                return key_value(expr.left.name, value)
            return None  # float equality is not pushdown-safe
        if expr.op == "!=" and value is None:
            return key_present(expr.left.name)
        return None
    if isinstance(expr, IsNotNull) and isinstance(expr.column, Column):
        return key_present(expr.column.name)
    if isinstance(expr, LikeExpr) and isinstance(expr.column, Column):
        return _simple_from_like(expr.column.name, expr.pattern)
    return None


def _simple_from_like(column: str, pattern: str
                      ) -> Optional[SimplePredicate]:
    body = pattern.strip("%")
    if not body or "%" in body:
        return None  # multi-segment patterns are not single searches
    starts = pattern.startswith("%")
    ends = pattern.endswith("%")
    if starts and ends:
        return substring(column, body)
    if ends:
        return prefix(column, body)
    if starts:
        return suffix(column, body)
    return exact(column, body)


def to_clause(expr: Expr) -> Optional[Clause]:
    """Convert one conjunct into a pushdown-candidate clause, if supported.

    A conjunct converts iff it is a supported atom or a disjunction of
    supported atoms (paper §V-A).  ``None`` means "evaluate on the server
    only".
    """
    if isinstance(expr, Or):
        atoms = []
        for child in expr.children:
            atom = _simple_from(child)
            if atom is None:
                return None
            atoms.append(atom)
        return Clause(tuple(atoms))
    atom = _simple_from(expr)
    if atom is None:
        return None
    return Clause((atom,))


def predicate_to_expr(pred: SimplePredicate) -> Expr:
    """Inverse bridge: a core predicate as an engine expression."""
    from ..core.predicates import PredicateKind

    column = Column(pred.column)
    kind = pred.kind
    if kind is PredicateKind.EXACT:
        return Comparison(column, "=", Literal(pred.value))
    if kind is PredicateKind.SUBSTRING:
        return LikeExpr(column, f"%{pred.value}%")
    if kind is PredicateKind.PREFIX:
        return LikeExpr(column, f"{pred.value}%")
    if kind is PredicateKind.SUFFIX:
        return LikeExpr(column, f"%{pred.value}")
    if kind is PredicateKind.KEY_PRESENCE:
        return IsNotNull(column)
    if kind is PredicateKind.KEY_VALUE:
        return Comparison(column, "=", Literal(pred.value))
    raise AssertionError(f"unhandled kind {kind}")


def clause_to_expr(clause: Clause) -> Expr:
    """A clause as an engine expression (single atom or OR)."""
    exprs = [predicate_to_expr(p) for p in clause.predicates]
    if len(exprs) == 1:
        return exprs[0]
    return Or(tuple(exprs))


def query_where_expr(clauses: Sequence[Clause]) -> Expr:
    """The conjunction of *clauses* as one expression."""
    exprs = [clause_to_expr(c) for c in clauses]
    if len(exprs) == 1:
        return exprs[0]
    return And(tuple(exprs))
