"""The paper's predicate-skewness factor and skew-targeted workloads.

Section VII-E3 defines, over the N distinct predicates of a workload with
X_i = the number of queries containing predicate i:

    skew = Σ (X_i − X̄)³ / ((N − 1) · σ³),   σ = sqrt(Σ (X_i − X̄)² / N)

(an adjusted Fisher–Pearson sample skewness).  The Fig. 11/12 experiment
builds workloads whose factor hits 0.0 / 0.5 / 2.0; we reproduce that by
searching the (tiny) space of predicate-multiplicity partitions for the one
whose factor is closest to the target, then realizing it as queries.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, List, Sequence, Tuple

from ..core.predicates import Query, Workload
from .pool import PredicatePool


def skewness_factor(counts: Sequence[int]) -> float:
    """The paper's skewness formula over per-predicate query counts.

    Returns 0.0 when the counts are constant (σ = 0): a perfectly uniform
    workload is defined to have zero skew.
    """
    n = len(counts)
    if n == 0:
        raise ValueError("need at least one predicate count")
    if n == 1:
        return 0.0
    mean = sum(counts) / n
    variance = sum((x - mean) ** 2 for x in counts) / n
    if variance == 0:
        return 0.0
    sigma = math.sqrt(variance)
    third_moment = sum((x - mean) ** 3 for x in counts)
    return third_moment / ((n - 1) * sigma ** 3)


def workload_skewness(workload: Workload) -> float:
    """Skewness factor of a workload's clause membership counts."""
    counts = list(workload.clause_query_counts().values())
    return skewness_factor(counts)


def _partitions(total: int, max_part: int, max_parts: int
                ) -> Iterator[Tuple[int, ...]]:
    """Non-increasing integer partitions of *total* under the given caps."""
    def recurse(remaining: int, cap: int, parts: List[int]):
        if remaining == 0:
            yield tuple(parts)
            return
        if len(parts) == max_parts:
            return
        for part in range(min(cap, remaining), 0, -1):
            parts.append(part)
            yield from recurse(remaining - part, part, parts)
            parts.pop()

    yield from recurse(total, max_part, [])


def multiplicities_for_skew(n_queries: int, predicates_per_query: int,
                            target_skew: float) -> Tuple[int, ...]:
    """Predicate multiplicities realizing (approximately) a target skew.

    Searches all partitions of the ``n_queries × predicates_per_query``
    predicate slots into per-predicate counts (each ≤ n_queries, since a
    predicate appears at most once per query) and returns the partition
    whose skewness factor is closest to *target_skew*.  A small penalty on
    the largest multiplicity breaks near-ties toward *less* concentrated
    workloads, so a moderate skew target does not accidentally select a
    partition whose hottest predicate already covers every query — coverage
    growing with the skew level is exactly what Figs 11–12 measure.
    """
    slots = n_queries * predicates_per_query
    if slots > 50:
        raise ValueError(
            f"{slots} predicate slots is too large for exhaustive partition "
            f"search; this builder targets the paper's 5-query micro "
            f"workloads"
        )
    best: Tuple[float, int, Tuple[int, ...]] = (float("inf"), 0, ())
    for partition in _partitions(slots, n_queries, slots):
        error = abs(skewness_factor(partition) - target_skew)
        score = error + 0.05 * max(partition)
        candidate = (score, -len(partition), partition)
        if candidate < best:
            best = candidate
    if not best[2]:
        raise RuntimeError("no feasible multiplicity partition found")
    return best[2]


def workload_with_skewness(pool: PredicatePool,
                           n_queries: int,
                           predicates_per_query: int,
                           target_skew: float,
                           rng: random.Random) -> Workload:
    """Build a workload whose skewness factor approximates *target_skew*.

    Pool clauses are assigned to multiplicities in rank order (rank 0 gets
    the largest count), then each predicate's occurrences are spread over
    queries round-robin from a random offset — guaranteeing no query sees
    the same predicate twice and every query ends with exactly
    ``predicates_per_query`` predicates.
    """
    multiplicities = multiplicities_for_skew(
        n_queries, predicates_per_query, target_skew
    )
    if len(multiplicities) > len(pool):
        raise ValueError(
            f"need {len(multiplicities)} distinct clauses, pool has "
            f"{len(pool)}"
        )
    # Greedy slot-filling: process predicates by decreasing multiplicity,
    # always assigning to the currently-least-filled queries.
    assignments: List[List[int]] = [[] for _ in range(n_queries)]
    for pred_rank, count in enumerate(multiplicities):
        order = sorted(
            range(n_queries),
            key=lambda q: (len(assignments[q]), rng.random()),
        )
        targets = [
            q for q in order if len(assignments[q]) < predicates_per_query
        ][:count]
        if len(targets) < count:
            raise RuntimeError(
                "multiplicity partition is infeasible for the query shape"
            )
        for q in targets:
            assignments[q].append(pred_rank)
    queries = tuple(
        Query(tuple(pool[r] for r in ranks), name=f"q{i}")
        for i, ranks in enumerate(assignments)
    )
    return Workload(queries, dataset=pool.dataset)
