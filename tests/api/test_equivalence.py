"""CiaoSession ≡ the hand-wired path, across every deployment mode.

The acceptance contract of the deployment API: the facade changes *how
much code* a deployment takes, never *what it produces*.

* Per mode, a session run must write **byte-identical** catalog files
  (Parquet-lite parts + raw-JSON sideline) to a hand-wired run of the
  low-level constructors on the same seeded input — proven for serial,
  sharded (round-robin, streaming off → deterministic layout), and a
  deterministic one-client fleet.
* Across modes, serial, sharded, and fleet must agree on the **canonical
  catalog content**: the same multiset of loaded rows and the same
  multiset of sidelined raw records (file layout differs by design —
  shard counts change the part split).
"""

import hashlib

import pytest

from repro.api import (
    Budget,
    CiaoSession,
    ClientPopulation,
    DeploymentConfig,
    FleetClientSpec,
    LineSource,
)
from repro.core import CiaoOptimizer, CostModel, DEFAULT_COEFFICIENTS
from repro.client import SimulatedClient
from repro.data import make_generator
from repro.fleet import FleetCoordinator
from repro.server import CiaoServer
from repro.storage.columnar import ParquetLiteReader
from repro.rawjson.writer import dumps
from repro.workload import estimate_selectivities, table3_workload

SEED = 777
N_RECORDS = 1500
CHUNK_SIZE = 250


@pytest.fixture(scope="module")
def setup():
    generator = make_generator("yelp", SEED)
    lines = list(generator.raw_lines(N_RECORDS))
    workload = table3_workload("yelp", "A", seed=SEED, n_queries=10)
    sels = estimate_selectivities(
        workload.candidate_pool, generator.sample(800)
    )
    model = CostModel(DEFAULT_COEFFICIENTS, 160)
    plan = CiaoOptimizer(workload, sels, model).plan(Budget(4.0))
    return lines, workload, plan, sels


def catalog_files(server):
    """{filename: bytes} of every catalog artifact the server wrote."""
    files = {}
    for path in server.table.parquet_paths:
        files[path.name] = path.read_bytes()
    side = server._side_store.path
    files[side.name] = side.read_bytes() if side.exists() else b""
    return files


def catalog_digest(server):
    """Order-insensitive digest of the catalog *content*.

    Hashes the sorted multiset of loaded rows (canonical JSON) and the
    sorted multiset of sidelined raw records — the split partial loading
    actually decides — independent of part layout and arrival order.
    """
    rows = []
    for path in server.table.parquet_paths:
        with ParquetLiteReader(path) as reader:
            rows.extend(
                dumps(row, sort_keys=True) for row in reader.iter_rows()
            )
    sideline = [raw for _, raw in server._side_store.iter_raw()]
    digest = hashlib.sha256()
    for row in sorted(rows):
        digest.update(row.encode("utf-8"))
    digest.update(b"\x00--sideline--\x00")
    for raw in sorted(sideline):
        digest.update(raw.encode("utf-8"))
    return len(rows), len(sideline), digest.hexdigest()


def session_run(tmp_path, tag, config, setup):
    lines, workload, plan, _ = setup
    session = CiaoSession(
        workload, source=LineSource(lines), config=config,
        data_dir=tmp_path / tag, seed=SEED, plan=plan,
    )
    report = session.load().result()
    assert report.no_record_loss
    return session


# ----------------------------------------------------------------------
# Hand-wired reference paths (the pre-facade wiring, verbatim)
# ----------------------------------------------------------------------
def hand_serial(tmp_path, setup):
    lines, workload, plan, _ = setup
    server = CiaoServer(tmp_path / "hand-serial", plan=plan,
                        workload=workload)
    client = SimulatedClient("hand", plan=plan, chunk_size=CHUNK_SIZE)
    for chunk in client.process(iter(lines)):
        server.ingest(chunk)
    server.finalize_loading()
    return server


def hand_sharded(tmp_path, setup):
    lines, workload, plan, _ = setup
    server = CiaoServer(
        tmp_path / "hand-sharded", plan=plan, workload=workload,
        n_shards=2, shard_mode="thread", dispatch="round-robin",
        seal_interval=None,
    )
    client = SimulatedClient("hand", plan=plan, chunk_size=CHUNK_SIZE)
    for chunk in client.process(iter(lines)):
        server.ingest(chunk)
    server.finalize_loading()
    return server


def hand_fleet(tmp_path, setup, population):
    lines, workload, plan, _ = setup
    server = CiaoServer(
        tmp_path / "hand-fleet", plan=plan, workload=workload,
        n_shards=2, shard_mode="thread", dispatch="round-robin",
        seal_interval=None,
    )
    coordinator = FleetCoordinator(
        server, population, global_plan=plan,
        chunk_size=CHUNK_SIZE, batch_size=1,
    )
    report = coordinator.run(lines)
    assert report.no_record_loss
    return server


def solo_population():
    """A deterministic one-client fleet (full share, reference speed)."""
    return ClientPopulation([
        FleetClientSpec("session-client", platform="local",
                        speed_factor=1.0, share=1.0),
    ])


# ----------------------------------------------------------------------
SERIAL = DeploymentConfig(mode="serial", chunk_size=CHUNK_SIZE,
                          ship_batch=1)
SHARDED = DeploymentConfig(mode="sharded", n_shards=2,
                           shard_mode="thread", dispatch="round-robin",
                           seal_interval=None, chunk_size=CHUNK_SIZE,
                           ship_batch=1)


def fleet_cfg():
    return DeploymentConfig(
        mode="fleet", n_shards=2, shard_mode="thread",
        dispatch="round-robin", seal_interval=None,
        chunk_size=CHUNK_SIZE, ship_batch=1,
        population=solo_population(),
    )


class TestByteIdentityWithHandWiredPath:
    def test_serial(self, tmp_path, setup):
        hand = hand_serial(tmp_path, setup)
        session = session_run(tmp_path, "api-serial", SERIAL, setup)
        assert catalog_files(session.server) == catalog_files(hand)
        session.close()

    def test_sharded(self, tmp_path, setup):
        hand = hand_sharded(tmp_path, setup)
        session = session_run(tmp_path, "api-sharded", SHARDED, setup)
        assert catalog_files(session.server) == catalog_files(hand)
        session.close()

    def test_fleet(self, tmp_path, setup):
        hand = hand_fleet(tmp_path, setup, solo_population())
        session = session_run(tmp_path, "api-fleet", fleet_cfg(), setup)
        assert catalog_files(session.server) == catalog_files(hand)
        session.close()


class TestCrossModeContentEquivalence:
    def test_serial_sharded_fleet_same_catalog_content(self, tmp_path,
                                                       setup):
        lines, workload, plan, _ = setup
        digests = {}
        for tag, config in (("serial", SERIAL), ("sharded", SHARDED),
                            ("fleet", fleet_cfg())):
            session = session_run(tmp_path, f"x-{tag}", config, setup)
            digests[tag] = catalog_digest(session.server)
            session.close()
        assert digests["serial"] == digests["sharded"] == digests["fleet"]
        loaded, sidelined, _ = digests["serial"]
        assert loaded + sidelined == N_RECORDS

    def test_multi_client_fleet_content_matches_serial(self, tmp_path,
                                                       setup):
        """A real heterogeneous fleet (nondeterministic interleaving)
        still produces the same canonical catalog content."""
        population = ClientPopulation.generate(4, seed=SEED)
        config = DeploymentConfig(
            mode="fleet", n_shards=2, shard_mode="thread",
            chunk_size=CHUNK_SIZE, population=population,
        )
        serial = session_run(tmp_path, "mc-serial", SERIAL, setup)
        fleet = session_run(tmp_path, "mc-fleet", config, setup)
        assert catalog_digest(serial.server) == \
            catalog_digest(fleet.server)
        serial.close()
        fleet.close()

    def test_query_equivalence_across_modes(self, tmp_path, setup):
        lines, workload, plan, _ = setup
        answers = {}
        for tag, config in (("serial", SERIAL), ("sharded", SHARDED),
                            ("fleet", fleet_cfg())):
            session = session_run(tmp_path, f"q-{tag}", config, setup)
            answers[tag] = [
                session.query(q.sql("t")).scalar()
                for q in workload.queries
            ]
            session.close()
        assert answers["serial"] == answers["sharded"] == answers["fleet"]
