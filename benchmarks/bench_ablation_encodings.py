"""Ablation — storage encodings: size and scan cost.

Parquet-lite picks PLAIN / DICTIONARY / RLE per column heuristically; this
bench forces each encoding over the same dataset and reports file size and
full-scan time, plus what the heuristic chose.
"""

import time

from conftest import run_once

from repro.bench import emit, emit_json, format_table
from repro.data import make_generator
from repro.storage import (
    Encoding,
    ParquetLiteReader,
    page_encoding,
    write_records,
)


def test_ablation_encodings(benchmark, tmp_path, results_dir):
    gen = make_generator("yelp", 20210223)
    records = list(gen.generate(3000))

    def experiment():
        rows = []
        for label, encoding in [
            ("plain", Encoding.PLAIN),
            ("dictionary", Encoding.DICTIONARY),
            ("rle", Encoding.RLE),
            ("auto", None),
        ]:
            path = tmp_path / f"{label}.pql"
            write_records(path, records, row_group_size=500,
                          encoding=encoding)
            size = path.stat().st_size
            with ParquetLiteReader(path) as reader:
                start = time.perf_counter()
                count = sum(1 for _ in reader.iter_rows())
                scan = time.perf_counter() - start
            assert count == len(records)
            rows.append((label, size / 1024, scan))
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        ["encoding", "file size (KiB)", "full scan (s)"], rows
    )

    # What did the heuristic actually choose per column?
    auto_path = tmp_path / "auto.pql"
    with ParquetLiteReader(auto_path) as reader:
        meta = reader.meta.row_groups[0]
        chosen = []
        reader_file = open(auto_path, "rb")
        for name, chunk in meta.columns.items():
            reader_file.seek(chunk.offset)
            tag = page_encoding(reader_file.read(chunk.length))
            chosen.append((name, tag.value))
        reader_file.close()
    choices = format_table(["column", "chosen encoding"], chosen)
    emit(
        "ablation_encodings",
        f"== Encoding ablation ==\n{table}\n\n"
        f"heuristic choices (first row group):\n{choices}",
        results_dir,
    )
    emit_json("ablation_encodings", {
        "headers": ["encoding", "file size (KiB)", "full scan (s)"],
        "rows": [list(row) for row in rows],
        "heuristic_choices": {name: tag for name, tag in chosen},
    }, results_dir)

    sizes = {label: size for label, size, _ in rows}
    # Dictionary beats plain on this dataset (low-cardinality columns),
    # and auto is never worse than plain.
    assert sizes["dictionary"] < sizes["plain"]
    assert sizes["auto"] <= sizes["plain"] * 1.01
