"""The CIAO server facade: plan registration, ingestion, and querying.

Wires the whole server side together (Fig. 1, right):

* holds the pushdown plan (Fig. 2's predicate hashmap) and decides the
  partial-loading policy;
* ingests encoded chunks from a channel — or :class:`JsonChunk` objects
  directly — through the client-assisted loader;
* registers the loaded table in a catalog and answers SQL through the mini
  engine, with bit-vector skipping planned automatically — for sharded
  servers even *while* loading, against a consistent loaded-so-far
  snapshot of the ingest stream.

Partial-loading policy (``partial_loading='auto'``): enabled iff the plan
covers every query of the prospective workload, i.e. each query has at
least one pushed-down clause.  Then no prospective query ever needs the
sideline (§VI-B), so sidelining records cannot hurt those queries.  With an
uncovered workload the server loads everything — the paper's workload-C
behaviour, where loading shows no win but skipping still helps covered
queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..analysis.annotations import guarded_by
from ..analysis.sanitizer import make_lock, make_rlock
from ..client.protocol import decode_chunk, decode_chunk_stream, split_frames
from ..core.optimizer import PushdownPlan
from ..core.plan_io import dumps_plan, loads_plan
from ..core.predicates import Query, Workload
from ..engine.catalog import Catalog, TableEntry
from ..engine.executor import Executor, QueryResult
from ..obs.metrics import Metrics, resolve_metrics
from ..obs.querylog import QueryLog
from ..obs.tracing import Tracer
from ..rawjson.chunks import JsonChunk
from ..recovery.ledger import IngestLedger
from ..recovery.manifest import Manifest
from ..transport import Channel
from ..storage.columnar import ParquetLiteError, ParquetLiteReader
from ..storage.jsonstore import (
    CompositeSidelineView,
    JsonSideStore,
    SidelineView,
)
from ..storage.schema import Schema
from .loader import ClientAssistedLoader, LoadSummary
from .pipeline import DEFAULT_SEAL_INTERVAL, ShardedIngestPipeline

_SHARD_MODES = ("process", "thread")
_DISPATCH_MODES = ("work-stealing", "round-robin")
_PARTIAL_LOADING_MODES = ("auto", "on", "off")


def validate_server_options(shard_mode: str = "process",
                            dispatch: str = "work-stealing",
                            partial_loading: str = "auto",
                            n_shards: int = 1) -> None:
    """The single validation path for server deployment knobs.

    Shared by :class:`ServerConfig` (at construction), the
    :class:`CiaoServer` constructor, and the deployment-level
    :class:`repro.api.DeploymentConfig`, so an invalid option produces
    the same error message no matter which layer it entered through —
    the two paths cannot drift apart.
    """
    if shard_mode not in _SHARD_MODES:
        raise ValueError(
            f"shard_mode must be one of {_SHARD_MODES}, "
            f"got {shard_mode!r}"
        )
    if dispatch not in _DISPATCH_MODES:
        raise ValueError(
            f"dispatch must be one of {_DISPATCH_MODES}, "
            f"got {dispatch!r}"
        )
    if partial_loading not in _PARTIAL_LOADING_MODES:
        raise ValueError(
            f"partial_loading must be 'auto', 'on' or 'off', "
            f"got {partial_loading!r}"
        )
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")


@dataclass
class ServerConfig:
    """Construction options for :class:`CiaoServer`.

    Consume with :meth:`CiaoServer.from_config`, which forwards every
    field; the plan and prospective workload stay separate arguments
    because they are produced per session by the optimizer, not part of
    deployment configuration.  Options are validated at construction
    through the same :func:`validate_server_options` path the server
    itself uses.
    """

    data_dir: Path
    table_name: str = "t"
    partial_loading: str = "auto"  # 'auto' | 'on' | 'off'
    schema: Optional[Schema] = None
    n_shards: int = 1
    shard_mode: str = "process"  # 'process' | 'thread'
    dispatch: str = "work-stealing"  # 'work-stealing' | 'round-robin'
    seal_interval: Optional[int] = DEFAULT_SEAL_INTERVAL
    #: Maintain a crash-atomic manifest so the server can be rebuilt via
    #: :meth:`CiaoServer.recover` after a kill -9.
    durable: bool = False

    def __post_init__(self) -> None:
        validate_server_options(
            shard_mode=self.shard_mode,
            dispatch=self.dispatch,
            partial_loading=self.partial_loading,
            n_shards=self.n_shards,
        )


class IngestSession:
    """One data source's ingest stream into a loading server.

    Multi-source loads (fleets of clients) open one session per source via
    :meth:`CiaoServer.open_ingest_session`.  A session is a thin tagged
    facade over the server's ingest path: every chunk it forwards is
    accounted to its ``source_id`` (and, on sharded servers, tagged
    through to the pipeline's per-source counters), so reports can
    attribute server-side load to individual clients.  Sessions close
    individually (:meth:`close`, or as a context manager); the server
    closes any still-open sessions at ``finalize_loading``.
    """

    def __init__(self, server: "CiaoServer", source_id: str):
        self._server = server
        self.source_id = source_id
        self.chunks = 0
        self.bytes = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        """True once the session no longer accepts chunks."""
        return self._closed

    def ingest(self, chunk: Union[JsonChunk, bytes]) -> int:
        """Ingest one chunk or encoded message; returns frames ingested.

        Encoded payloads may carry several batched frames; each counts
        separately, exactly like :meth:`CiaoServer.ingest`.
        """
        if self._closed:
            raise RuntimeError(
                f"ingest session {self.source_id!r} is closed"
            )
        self._server._check_loading("ingest")
        frames = self._server._ingest_any(chunk, source=self.source_id)
        self.chunks += frames
        if isinstance(chunk, (bytes, bytearray, memoryview)):
            self.bytes += len(chunk)
        return frames

    def ingest_sequenced(self, chunk: bytes, *, seq: int,
                         client_id: str) -> Tuple[int, bool]:
        """Ingest one sequenced batch; returns ``(frames, duplicate)``.

        The exactly-once path for retrying clients: *seq* is the
        client's monotonic batch number for this ``(client_id,
        source_id)`` stream, deduped by the server's ingest ledger.  A
        duplicate batch (already applied — the client's ack was lost)
        returns ``(0, True)`` without touching storage.  Only encoded
        payloads travel this path; it is what CHUNKS messages carry.
        """
        if self._closed:
            raise RuntimeError(
                f"ingest session {self.source_id!r} is closed"
            )
        if not isinstance(chunk, (bytes, bytearray, memoryview)):
            raise TypeError("sequenced ingest carries encoded payloads")
        self._server._check_loading("ingest")
        frames, duplicate = self._server._ingest_sequenced(
            chunk, source=self.source_id, client_id=client_id, seq=seq
        )
        if not duplicate:
            self.chunks += frames
            self.bytes += len(chunk)
        return frames, duplicate

    def reopen(self) -> None:
        """Accept chunks again (a reconnecting client resumed the stream)."""
        self._closed = False

    def drain_channel(self, channel: Channel) -> int:
        """Drain a channel through this session; returns messages drained."""
        count = 0
        for payload in channel.drain():
            self.ingest(payload)
            count += 1
        return count

    def close(self) -> None:
        """Stop accepting chunks on this session (idempotent)."""
        self._closed = True

    def __enter__(self) -> "IngestSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CiaoServer:
    """One CIAO server instance managing one table.

    With ``n_shards > 1`` ingestion runs through a
    :class:`~repro.server.pipeline.ShardedIngestPipeline`: encoded chunks
    are fanned across shard workers (decode + parse + write each, pulled
    from a shared work-stealing deque by default) and the shard outputs
    are merged into the catalog at :meth:`finalize_loading`.  Query
    results are identical to serial ingest.

    Lifecycle: a server starts in state ``"loading"`` and moves to
    ``"finalized"`` at :meth:`finalize_loading`; ingesting into a
    finalized server raises ``RuntimeError`` (its storage is sealed — a
    new server/session is needed to load more data).  Sharded servers are
    queryable *while* loading: :meth:`query` scans a consistent
    loaded-so-far snapshot (sealed shard parts + sideline watermarks),
    matching serial ingest of exactly the covered chunks.  ``load_summary``
    is only complete once loading has finalized in sharded mode.
    """

    def __init__(self, data_dir: str | Path,
                 plan: Optional[PushdownPlan] = None,
                 workload: Optional[Workload] = None,
                 table_name: str = "t",
                 partial_loading: str = "auto",
                 schema: Optional[Schema] = None,
                 n_shards: int = 1,
                 shard_mode: str = "process",
                 dispatch: str = "work-stealing",
                 seal_interval: Optional[int] = DEFAULT_SEAL_INTERVAL,
                 metrics: Optional[Metrics] = None,
                 tracer: Optional[Tracer] = None,
                 query_log: Optional[QueryLog] = None,
                 durable: bool = False,
                 generation: int = 0):
        validate_server_options(
            shard_mode=shard_mode,
            dispatch=dispatch,
            partial_loading=partial_loading,
            n_shards=n_shards,
        )
        if generation < 0:
            raise ValueError(f"generation must be >= 0, got {generation}")
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.plan = plan
        self.workload = workload
        self.table_name = table_name
        self.durable = durable
        #: Recovery generation: bumped on every :meth:`recover`, and
        #: suffixed into this generation's storage paths so a recovered
        #: server never collides with the files it inherited.
        self.generation = generation
        self.partial_loading_enabled = self._decide_partial_loading(
            partial_loading
        )
        gen_stem = (
            f"{table_name}.g{generation}" if generation else table_name
        )
        self._side_store = JsonSideStore(
            self.data_dir / f"{gen_stem}.sideline.jsonl"
        )
        self._parquet_path = self.data_dir / f"{gen_stem}.pql"
        required_ids = plan.predicate_ids if plan is not None else None
        self._loader: Optional[ClientAssistedLoader] = None
        self._pipeline: Optional[ShardedIngestPipeline] = None
        if n_shards > 1:
            self._pipeline = ShardedIngestPipeline(
                self._parquet_path,
                self._side_store,
                n_shards=n_shards,
                partial_loading=self.partial_loading_enabled,
                schema=schema,
                required_predicate_ids=required_ids,
                mode=shard_mode,
                dispatch=dispatch,
                seal_interval=seal_interval,
                metrics=metrics,
            )
        else:
            self._loader = ClientAssistedLoader(
                self._parquet_path,
                self._side_store,
                partial_loading=self.partial_loading_enabled,
                schema=schema,
                required_predicate_ids=required_ids,
                metrics=metrics,
            )
        self._sessions: Dict[str, IngestSession] = {}  # guarded-by: _ingest_lock
        self.catalog = Catalog()
        self._table = TableEntry(
            name=table_name,
            parquet_paths=[],
            side_store=self._side_store,
            pushdown=(
                {e.clause: e.predicate_id for e in plan.entries}
                if plan is not None else {}
            ),
        )
        self.catalog.register(self._table)
        self._executor = Executor(self.catalog, metrics=metrics,
                                  tracer=tracer, query_log=query_log)
        self._loading_finalized = False  # guarded-by: _lifecycle_lock
        #: Compaction view: original sealed-part path → the compacted
        #: part that replaced it.  Kept flat (targets that are
        #: themselves replaced are rewritten in place), so resolving a
        #: path is one lookup, never a chain walk.
        # guarded-by: _lifecycle_lock
        self._compaction_remap: Dict[str, Path] = {}
        #: Bumped on every committed compaction; composed into the
        #: snapshot version token so a swap is never mistaken for an
        #: unchanged snapshot.
        self._compaction_epoch = 0  # guarded-by: _lifecycle_lock
        # Serializes query() against finalize_loading(): a loading
        # server may be queried from one thread while another thread
        # finalizes (session load jobs, fleet coordinators), and the
        # finalize mutates the catalog entry a query scans.  Reentrant
        # because a serial query() auto-finalizes through the same lock.
        self._lifecycle_lock = make_rlock("CiaoServer._lifecycle_lock")
        # Serializes chunk submission: the serial loader buffers rows and
        # the sharded pipeline's submit() assumes one submitting thread,
        # but remote serving (CiaoService) ingests from one router thread
        # per connection.  Also guards _sessions registration and the
        # ingest ledger.  Ordering: finalize_loading() and checkpoint()
        # take _lifecycle_lock then _ingest_lock; ingest paths take
        # _ingest_lock alone — the graph stays acyclic.
        self._ingest_lock = make_lock("CiaoServer._ingest_lock")
        self._schema = schema
        self._metrics = resolve_metrics(metrics)
        self._m_checkpoints = self._metrics.counter("recovery.checkpoints")
        self._m_manifest_writes = self._metrics.counter(
            "recovery.manifest_writes"
        )
        self._m_duplicates = self._metrics.counter(
            "recovery.duplicates_dropped"
        )
        #: Deployment knobs as resolved at construction — persisted in
        #: the manifest so recovery rebuilds an equivalent server.
        self._options: Dict[str, Any] = {
            "n_shards": n_shards,
            "shard_mode": shard_mode,
            "dispatch": dispatch,
            "seal_interval": seal_interval,
            "partial_loading": (
                "on" if self.partial_loading_enabled else "off"
            ),
        }
        self._ledger = IngestLedger()  # guarded-by: _ingest_lock
        #: Ledger watermarks as of the last manifest write: the durable
        #: cut clients may safely prune their replay buffers to.
        # guarded-by: _ingest_lock
        self._durable_seqs: Dict[Tuple[str, str], int] = {}
        #: Parts and sideline records inherited from a previous
        #: generation via recover(); fixed for this server's lifetime.
        self._recovered_parts: List[Path] = []
        self._recovered_sideline = 0
        self._summary_baseline: Optional[LoadSummary] = None
        self._manifest_events: List[str] = []  # guarded-by: _lifecycle_lock
        self._manifest: Optional[Manifest] = None
        if durable:
            self._manifest = Manifest(
                Manifest.path_for(self.data_dir, table_name)
            )
            # A pre-existing manifest belongs to the generation being
            # recovered: leave it durable until recover() (or the first
            # checkpoint) writes this generation's state over it.
            if not self._manifest.exists:
                with self._lifecycle_lock, self._ingest_lock:
                    self._manifest_events.append("created")
                    self._write_manifest_locked(
                        "loading", [], [], LoadSummary()
                    )

    @classmethod
    def from_config(cls, config: ServerConfig,
                    plan: Optional[PushdownPlan] = None,
                    workload: Optional[Workload] = None,
                    metrics: Optional[Metrics] = None,
                    tracer: Optional[Tracer] = None,
                    query_log: Optional[QueryLog] = None) -> "CiaoServer":
        """Build a server from a :class:`ServerConfig`.

        The optional *plan*/*workload* are the per-session optimizer
        outputs and *metrics*/*tracer*/*query_log* the observability
        sinks; everything else comes from the config.
        """
        return cls(
            config.data_dir,
            plan=plan,
            workload=workload,
            table_name=config.table_name,
            partial_loading=config.partial_loading,
            schema=config.schema,
            n_shards=config.n_shards,
            shard_mode=config.shard_mode,
            dispatch=config.dispatch,
            seal_interval=config.seal_interval,
            metrics=metrics,
            tracer=tracer,
            query_log=query_log,
            durable=config.durable,
        )

    @property
    def state(self) -> str:
        """Explicit lifecycle state: ``"loading"`` or ``"finalized"``."""
        return "finalized" if self._loading_finalized else "loading"

    @property
    def manifest_revision(self) -> Optional[int]:
        """The durable manifest's current revision; ``None`` if not durable."""
        if self._manifest is None:
            return None
        return self._manifest.revision

    @property
    def deployment_options(self) -> Dict[str, Any]:
        """The deployment knobs as resolved at construction."""
        return dict(self._options)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def ingest(self, chunk: Union[JsonChunk, bytes]) -> None:
        """Ingest one chunk (decoded or wire-encoded).

        Sharded servers forward encoded payloads verbatim — the shard
        worker decodes them off the submitting thread.  Encoded payloads
        may carry several batched frames
        (:func:`repro.client.protocol.encode_frame_batch`); each frame is
        ingested as its own chunk.

        Raises ``RuntimeError`` once the server is finalized: storage is
        sealed at that point, so feeding it more data would be silently
        lost — start a new server/session instead.
        """
        self._check_loading("ingest")
        self._ingest_any(chunk, source=None)

    def _ingest_any(self, chunk: Union[JsonChunk, bytes],
                    source: Optional[str] = None) -> int:
        """Shared ingest core; returns the number of frames ingested.

        Safe to call from many threads: remote serving ingests from one
        router thread per connection, while the serial loader and the
        pipeline's ``submit`` both assume a single submitter.
        """
        if not isinstance(chunk, (bytes, bytearray, memoryview)):
            self._ingest_one(chunk, source)
            return 1
        if self._pipeline is not None:
            count = 0
            with self._ingest_lock:
                for frame in split_frames(chunk):
                    self._pipeline.submit(frame, source=source)
                    count += 1
            return count
        count = 0
        with self._ingest_lock:
            for decoded in decode_chunk_stream(chunk):
                self._loader.ingest(decoded)
                count += 1
        return count

    def _ingest_one(self, chunk: JsonChunk,
                    source: Optional[str] = None) -> None:
        with self._ingest_lock:
            if self._pipeline is not None:
                self._pipeline.submit(chunk, source=source)
            else:
                self._loader.ingest(chunk)

    def _ingest_sequenced(self, chunk: bytes, source: str,
                          client_id: str, seq: int) -> Tuple[int, bool]:
        """Ledger-deduped ingest of one encoded batch.

        Admission, ingest, and the watermark advance happen in one
        ingest-lock critical section, so "the ledger says applied" and
        "the rows are in storage" can never disagree — the invariant
        that makes client replays exactly-once.
        """
        with self._ingest_lock:
            if not self._ledger.admit(client_id, source, seq):
                self._m_duplicates.inc()
                return 0, True
            count = 0
            if self._pipeline is not None:
                for frame in split_frames(chunk):
                    self._pipeline.submit(frame, source=source)
                    count += 1
            else:
                for decoded in decode_chunk_stream(chunk):
                    self._loader.ingest(decoded)
                    count += 1
            self._ledger.advance(client_id, source, seq)
            return count, False

    def ledger_last(self, client_id: str, source_id: str) -> int:
        """The ingest ledger's watermark for one client stream."""
        with self._ingest_lock:
            return self._ledger.last(client_id, source_id)

    def durable_seq(self, client_id: str, source_id: str) -> int:
        """The stream's last *durable* batch — safe to prune replays to.

        For a durable server this is the watermark as of the last
        manifest write (an acked-but-uncheckpointed batch still dies
        with the process, so the client must keep it).  A non-durable
        server has nothing to recover into — a crash loses the whole
        table regardless — so its live watermark is the honest answer.
        """
        with self._ingest_lock:
            if self._manifest is None:
                return self._ledger.last(client_id, source_id)
            return self._durable_seqs.get((client_id, source_id), 0)

    def ledger_records(self) -> List[List[Any]]:
        """JSON-safe ledger snapshot (for STATS and diagnostics)."""
        with self._ingest_lock:
            return self._ledger.to_records()

    def ingest_channel(self, channel: Channel) -> int:
        """Drain a channel; returns the number of chunk frames ingested.

        Batched messages (``Channel.send_batch``) are split back into
        individual chunk frames, so the count is chunks, not messages.
        Frames coming off ``drain_chunks`` are already split, so they go
        straight to the loader/pipeline without :meth:`ingest`'s re-split
        (each split walks the frame header).
        """
        self._check_loading("ingest_channel")
        count = 0
        for frame in channel.drain_chunks():
            with self._ingest_lock:
                if self._pipeline is not None:
                    self._pipeline.submit(frame)
                else:
                    self._loader.ingest(decode_chunk(frame))
            count += 1
        return count

    def open_ingest_session(self, source_id: str) -> IngestSession:
        """Open a tagged ingest stream for one data source.

        Fleet loads open one session per client so server-side accounting
        (:attr:`ingest_sources`, and the sharded pipeline's
        ``submitted_by_source``) can attribute chunks to their origin.
        Source ids are single-use per server: reusing one — even after
        its session closed — raises ``ValueError``, because per-source
        accounting would conflate the two streams.
        """
        self._check_loading("open_ingest_session")
        with self._ingest_lock:
            existing = self._sessions.get(source_id)
            if existing is not None and not existing.closed:
                raise ValueError(
                    f"ingest session {source_id!r} is already open"
                )
            if existing is not None:
                raise ValueError(
                    f"source {source_id!r} already ingested on this "
                    f"server; per-source accounting would conflate the "
                    f"two streams"
                )
            session = IngestSession(self, source_id)
            self._sessions[source_id] = session
            return session

    def resume_ingest_session(self, source_id: str) -> IngestSession:
        """Reopen (or create) the ingest stream for a returning source.

        The reconnect path: unlike :meth:`open_ingest_session`, reusing
        a source id here is the *point* — the returning client is the
        same source continuing the same stream, so its accounting keeps
        accumulating and the ingest ledger keeps deduping its replays.
        """
        self._check_loading("resume_ingest_session")
        with self._ingest_lock:
            existing = self._sessions.get(source_id)
            if existing is not None:
                existing.reopen()
                return existing
            session = IngestSession(self, source_id)
            self._sessions[source_id] = session
            return session

    @property
    def ingest_sources(self) -> Dict[str, int]:
        """Chunk frames ingested per source id (open + closed sessions)."""
        with self._ingest_lock:
            return {
                source_id: session.chunks
                for source_id, session in self._sessions.items()
            }

    def _check_loading(self, operation: str) -> None:
        if self._loading_finalized:
            raise RuntimeError(
                f"{operation}() on a finalized server: loading sealed at "
                f"finalize_loading(); create a new server/session to load "
                f"more data into table {self.table_name!r}"
            )

    def finalize_loading(self) -> LoadSummary:
        """Seal storage and make the table queryable; idempotent.

        For a sharded server this is the merge point: shard loaders are
        sealed, their Parquet parts registered (shard-major order) and
        their sidelines folded into the table's store.
        """
        with self._lifecycle_lock, self._ingest_lock:
            for session in self._sessions.values():
                session.close()  # ciaolint: allow[LCK002] -- IngestSession.close only flips a flag; `.close()` name union binds wider
            if self._pipeline is not None:
                summary = self._pipeline.finalize()
                parquet_paths = self._pipeline.parquet_paths
            else:
                summary = self._loader.finalize()
                parquet_paths = self._loader.parquet_paths
            summary = self._merge_baseline(summary)
            if not self._loading_finalized:
                self._table.clear_snapshot()
                self._table.parquet_paths = self._remap_parts(
                    list(self._recovered_parts) + list(parquet_paths)
                )
                self._table.invalidate()
                self._loading_finalized = True
            if self._manifest is not None:
                self._manifest_events.append("finalized")
                self._write_manifest_locked(
                    "finalized",
                    self._table.parquet_paths,
                    [(self._side_store.path,
                      self._side_store.record_count)],
                    summary,
                )
            return summary

    @property
    def load_summary(self) -> LoadSummary:
        """Loading statistics so far.

        Mid-load a sharded-streaming server reports the chunks covered by
        the current snapshot (the same view queries see); once finalized,
        the complete merged summary.  With streaming disabled
        (``seal_interval=None``) the sharded summary stays empty until
        :meth:`finalize_loading` has run.
        """
        if self._pipeline is not None:
            if (not self._loading_finalized
                    and self._pipeline.seal_interval is not None):
                return self._merge_baseline(
                    self._pipeline.snapshot().summary
                )
            return self._merge_baseline(self._pipeline.summary)
        return self._merge_baseline(self._loader.summary)

    def _merge_baseline(self, summary: LoadSummary) -> LoadSummary:
        """Fold the recovered generations' counts into *summary*.

        A recovered server's own loader/pipeline only saw this
        generation's chunks; the baseline carries everything the
        manifest proved durable before the crash, so totals reflect the
        whole table.  Per-chunk reports exist only for this
        generation's chunks — the baseline is counts, by design.
        """
        baseline = self._summary_baseline
        if baseline is None:
            return summary
        return LoadSummary(
            chunks=baseline.chunks + summary.chunks,
            received=baseline.received + summary.received,
            loaded=baseline.loaded + summary.loaded,
            sidelined=baseline.sidelined + summary.sidelined,
            malformed=baseline.malformed + summary.malformed,
            wall_seconds=baseline.wall_seconds + summary.wall_seconds,
            reports=list(summary.reports),
        )

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def query(self, sql: str) -> QueryResult:
        """Execute one SQL statement against the loaded table.

        Sharded servers answer queries **while loading**: the statement
        runs against a consistent loaded-so-far snapshot (sealed shard
        parts plus per-shard sideline watermarks), so results equal serial
        ingest of exactly the chunks covered so far — no auto-finalize,
        and ingestion keeps running.  Repeated mid-load *aggregate*
        queries are incremental: sealed parts are immutable, so the
        engine caches per-part partial aggregates by (part, query
        fingerprint) and each successive snapshot query scans only the
        parts sealed since it last ran plus the sideline delta
        (:mod:`repro.engine.snapcache`; answers are identical to a cold
        scan of the same snapshot).  Serial (``n_shards=1``) servers —
        and sharded servers with streaming disabled
        (``seal_interval=None``) — keep the historical convenience
        behavior: the first query finalizes loading, because without
        sealed parts there is nothing consistent to scan mid-load.  Call
        :meth:`finalize_loading` explicitly to seal either kind.

        Queries serialize against a concurrent :meth:`finalize_loading`
        (and against each other): a statement sees either a consistent
        mid-load snapshot or the final table, never the transition.
        """
        with self._lifecycle_lock:
            if not self._loading_finalized:
                if (self._pipeline is not None
                        and self._pipeline.seal_interval is not None):
                    self._refresh_snapshot()
                else:
                    self.finalize_loading()
            return self._executor.execute(sql)

    @guarded_by("_lifecycle_lock")
    def _refresh_snapshot(self) -> None:
        """Point the table at the pipeline's latest loaded-so-far view.

        The pipeline reports its own sealed parts; parts a compactor
        already replaced are remapped to their compacted merge, and the
        compaction epoch rides the version token so the swap registers
        as a change even when the pipeline's counter did not move.
        """
        snap = self._pipeline.snapshot()
        views = list(snap.sideline_views)
        if self._recovered_sideline:
            # Records materialized into this generation's main sideline
            # file by recover(); shard folding only appends after them.
            views.insert(0, SidelineView(self._side_store.path,
                                         self._recovered_sideline))
        self._table.apply_snapshot(
            (snap.version, self._compaction_epoch),
            self._remap_parts(
                list(self._recovered_parts) + list(snap.parquet_paths)
            ),
            CompositeSidelineView(self._side_store.path, views),
        )

    # ------------------------------------------------------------------
    # Compaction (repro.compact drives these)
    # ------------------------------------------------------------------
    @guarded_by("_lifecycle_lock")
    def _remap_parts(self, parquet_paths: Iterable[Path]) -> List[Path]:
        """Resolve raw sealed-part paths through the compaction remap.

        Several inputs of one merge resolve to the same output; the
        first occurrence keeps its position and later ones drop, so the
        resolved list preserves ingest order with no duplicates.
        """
        resolved: List[Path] = []
        seen: set = set()
        for path in parquet_paths:
            target = self._compaction_remap.get(str(Path(path)))
            if target is None:
                target = Path(path)
            key = str(target)
            if key not in seen:
                seen.add(key)
                resolved.append(target)
        return resolved

    def sealed_parts(self) -> List[Path]:
        """The immutable parts a compactor may rewrite right now.

        Finalized servers expose the table's full part list; streaming
        sharded servers expose the current snapshot's sealed parts
        (through the compaction remap, so already-replaced parts never
        reappear).  A still-loading serial server — or a sharded one
        with streaming disabled — has no sealed immutable parts yet and
        returns an empty list.
        """
        with self._lifecycle_lock:
            if self._loading_finalized:
                return list(self._table.parquet_paths)
            if (self._pipeline is not None
                    and self._pipeline.seal_interval is not None):
                snap = self._pipeline.snapshot()
                return self._remap_parts(
                    list(self._recovered_parts)
                    + list(snap.parquet_paths)
                )
            return list(self._remap_parts(self._recovered_parts))

    def commit_compaction(self, inputs: Iterable[Path],
                          output: Path | str) -> None:
        """Atomically swap compacted *inputs* for their merged *output*.

        Holding the lifecycle lock makes the swap atomic with respect
        to queries (a statement holds the same lock for its whole
        execution): every query sees either the old parts or the new
        part, never a mix.  The remap is updated first — flattening any
        earlier entries that pointed at a part now being replaced — so
        pipeline snapshots and ``finalize_loading`` keep resolving to
        live parts no matter when they run.
        """
        output = Path(output)
        with self._lifecycle_lock:
            replaced = {str(Path(p)) for p in inputs}
            for key, target in list(self._compaction_remap.items()):
                if str(target) in replaced:
                    self._compaction_remap[key] = output
            for key in replaced:
                self._compaction_remap[key] = output
            self._compaction_epoch += 1
            if self._loading_finalized:
                self._table.swap_parts(
                    [Path(p) for p in inputs], output
                )
                if self._manifest is not None:
                    with self._ingest_lock:
                        self._manifest_events.append(
                            f"compaction epoch={self._compaction_epoch}"
                        )
                        self._write_manifest_locked(
                            "finalized",
                            self._table.parquet_paths,
                            [(self._side_store.path,
                              self._side_store.record_count)],
                            self.load_summary,
                        )
            elif (self._pipeline is not None
                    and self._pipeline.seal_interval is not None
                    and self._table.in_snapshot_mode):
                # Re-derive the snapshot view through the updated remap;
                # the bumped epoch forces the apply even when the
                # pipeline's own version counter did not move.
                self._refresh_snapshot()
                if self._manifest is not None:
                    # A compactor running remove_inputs=True may unlink
                    # manifest-listed parts; refresh the manifest past
                    # the swap so recovery never chases deleted files.
                    # Best effort: a quiesce timeout leaves the previous
                    # (stale but readable) revision in place.
                    try:
                        self._checkpoint_streaming_locked(
                            timeout=30.0,
                            event=(f"compaction epoch="
                                   f"{self._compaction_epoch}"),
                        )
                    except TimeoutError:
                        pass

    # ------------------------------------------------------------------
    # Durability: the manifest, checkpoints, and crash recovery
    # ------------------------------------------------------------------
    def checkpoint(self, timeout: float = 30.0) -> bool:
        """Write a durable manifest revision; returns True if one landed.

        The durable cut: quiesce the pipeline so every submitted chunk
        is sealed or sidelined, then atomically record the sealed
        parts, sideline watermarks, ledger, and summary *as of that
        moment*.  A kill -9 after this call loses nothing at or before
        it.  Returns ``False`` when there is nothing checkpointable:
        a non-durable server, or a mid-load server whose storage has no
        sealed mid-load state (serial, or streaming disabled).
        """
        if self._manifest is None:
            return False
        with self._lifecycle_lock:
            if self._loading_finalized:
                with self._ingest_lock:
                    self._manifest_events.append("checkpoint")
                    self._write_manifest_locked(
                        "finalized",
                        self._table.parquet_paths,
                        [(self._side_store.path,
                          self._side_store.record_count)],
                        self.load_summary,
                    )
                self._m_checkpoints.inc()
                return True
            if (self._pipeline is None
                    or self._pipeline.seal_interval is None):
                return False
            self._checkpoint_streaming_locked(timeout, "checkpoint")
            self._m_checkpoints.inc()
            return True

    @guarded_by("_lifecycle_lock")
    def _checkpoint_streaming_locked(self, timeout: float,
                                     event: str) -> None:
        """Quiesce the streaming pipeline and persist its state."""
        with self._ingest_lock:
            self._pipeline.quiesce(timeout)
            snap = self._pipeline.snapshot()
            parts = self._remap_parts(
                list(self._recovered_parts) + list(snap.parquet_paths)
            )
            sidelines: List[Tuple[Path, int]] = []
            if self._recovered_sideline:
                sidelines.append(
                    (self._side_store.path, self._recovered_sideline)
                )
            for view in snap.sideline_views:
                sidelines.append((view.path, view.record_count))
            self._manifest_events.append(event)
            self._write_manifest_locked(
                "loading", parts, sidelines,
                self._merge_baseline(snap.summary),
            )

    def _relpath(self, path: Path) -> str:
        path = Path(path)
        try:
            return str(path.relative_to(self.data_dir))
        except ValueError:
            return str(path)

    @guarded_by("_lifecycle_lock", "_ingest_lock")
    def _write_manifest_locked(self, state: str,
                               parts: Iterable[Path],
                               sidelines: Iterable[Tuple[Path, int]],
                               summary: LoadSummary) -> None:
        """Compose and atomically persist one manifest revision.

        Requires both the lifecycle and ingest locks: the part list,
        the ledger, and the summary must all describe the same instant.
        """
        part_records = []
        for path in parts:
            path = Path(path)
            record: Dict[str, Any] = {"path": self._relpath(path)}
            try:
                record["bytes"] = path.stat().st_size
            except OSError:
                record["bytes"] = None
            part_records.append(record)
        sideline_records = [
            {"path": self._relpath(path), "records": int(records)}
            for path, records in sidelines
            if records
        ]
        doc = {
            "table": self.table_name,
            "generation": self.generation,
            "state": state,
            "plan": dumps_plan(self.plan) if self.plan is not None else None,
            "schema": (
                self._schema.to_dict() if self._schema is not None
                else None
            ),
            "options": dict(self._options),
            "parts": part_records,
            "sideline": sideline_records,
            "summary": {
                "chunks": summary.chunks,
                "received": summary.received,
                "loaded": summary.loaded,
                "sidelined": summary.sidelined,
                "malformed": summary.malformed,
                "wall_seconds": summary.wall_seconds,
            },
            "ledger": self._ledger.to_records(),
            "compaction_epoch": self._compaction_epoch,
            "events": list(self._manifest_events),
        }
        self._manifest.write(doc)
        self._durable_seqs = self._ledger.snapshot()
        self._m_manifest_writes.inc()

    @staticmethod
    def _validate_part(path: Path) -> bool:
        """Whether *path* is a readable, footer-intact Parquet-lite part."""
        try:
            reader = ParquetLiteReader(path)
        except (ParquetLiteError, OSError, ValueError):
            return False
        reader.close()
        return True

    @classmethod
    def recover(cls, data_dir: str | Path,
                table_name: str = "t",
                workload: Optional[Workload] = None,
                metrics: Optional[Metrics] = None,
                tracer: Optional[Tracer] = None,
                query_log: Optional[QueryLog] = None) -> "CiaoServer":
        """Rebuild a durable server from its manifest after a crash.

        Reads the manifest's last complete revision, validates every
        listed part (a torn or missing file is quarantined — renamed
        aside and counted, never trusted and never fatal), re-plays the
        durable sideline prefix into a fresh generation's store, and
        restores the plan, schema, summary counts, and ingest ledger.
        The result is a live server one generation up: a finalized
        manifest yields a finalized, queryable server; a mid-load
        manifest yields a loading server that reconnecting clients
        resume into (their replays deduped from the recovered ledger).
        Answers over the recovered sealed set are byte-identical to a
        never-crashed server over the same parts.
        """
        data_dir = Path(data_dir)
        manifest, doc = Manifest.load(
            Manifest.path_for(data_dir, table_name)
        )
        mx = resolve_metrics(metrics)
        m_recovered = mx.counter("recovery.parts_recovered")
        m_quarantined = mx.counter("recovery.parts_quarantined")
        m_sideline_lost = mx.counter("recovery.sideline_records_lost")
        parts: List[Path] = []
        quarantined: List[str] = []
        for record in doc.get("parts", []):
            path = data_dir / str(record.get("path", ""))
            if cls._validate_part(path):
                parts.append(path)
                m_recovered.inc()
                continue
            m_quarantined.inc()
            quarantined.append(str(record.get("path", "")))
            if path.exists():
                try:
                    path.rename(
                        path.parent / (path.name + ".quarantined")
                    )
                except OSError:
                    pass  # unreadable either way; recovery proceeds
        plan_text = doc.get("plan")
        plan = loads_plan(plan_text) if plan_text else None
        schema_doc = doc.get("schema")
        schema = (
            Schema.from_dict(schema_doc) if schema_doc else None
        )
        options = doc.get("options", {})
        generation = int(doc.get("generation", 0)) + 1
        server = cls(
            data_dir,
            plan=plan,
            workload=workload,
            table_name=table_name,
            partial_loading=str(
                options.get("partial_loading", "off")
            ),
            schema=schema,
            n_shards=int(options.get("n_shards", 1)),
            shard_mode=str(options.get("shard_mode", "thread")),
            dispatch=str(options.get("dispatch", "work-stealing")),
            seal_interval=options.get("seal_interval"),
            metrics=metrics,
            tracer=tracer,
            query_log=query_log,
            durable=True,
            generation=generation,
        )
        server._manifest.revision = manifest.revision
        server._recovered_parts = parts
        # Materialize the durable sideline prefix into this generation's
        # main store: CompositeSidelineView scans views, not the raw
        # file, so the recovered records must be a view over data this
        # generation owns (shard folding appends after them).
        pairs: List[Tuple[int, str]] = []
        expected = 0
        for record in doc.get("sideline", []):
            records = int(record.get("records", 0))
            expected += records
            view_path = data_dir / str(record.get("path", ""))
            if view_path.exists():
                pairs.extend(SidelineView(view_path, records).iter_raw())
        if len(pairs) < expected:
            m_sideline_lost.inc(expected - len(pairs))
        if pairs:
            server._side_store.append_pairs(pairs)
        server._recovered_sideline = server._side_store.record_count
        summary_doc = doc.get("summary") or {}
        server._summary_baseline = LoadSummary(
            chunks=int(summary_doc.get("chunks", 0)),
            received=int(summary_doc.get("received", 0)),
            loaded=int(summary_doc.get("loaded", 0)),
            sidelined=int(summary_doc.get("sidelined", 0)),
            malformed=int(summary_doc.get("malformed", 0)),
            wall_seconds=float(summary_doc.get("wall_seconds", 0.0)),
        )
        with server._lifecycle_lock, server._ingest_lock:
            server._ledger = IngestLedger.from_records(
                doc.get("ledger", [])
            )
            server._manifest_events = list(doc.get("events", []))
            event = f"recovered generation={generation}"
            if quarantined:
                event += f" quarantined={','.join(quarantined)}"
            server._manifest_events.append(event)
            if doc.get("state") == "finalized":
                server._table.parquet_paths = list(parts)
                server._table.invalidate()
                server._loading_finalized = True
                server._write_manifest_locked(
                    "finalized", parts,
                    [(server._side_store.path,
                      server._side_store.record_count)],
                    server._summary_baseline,
                )
            else:
                sidelines: List[Tuple[Path, int]] = []
                if server._recovered_sideline:
                    sidelines.append((server._side_store.path,
                                      server._recovered_sideline))
                server._write_manifest_locked(
                    "loading", parts, sidelines,
                    server._summary_baseline,
                )
        return server

    def quiesce(self, timeout: float = 30.0) -> None:
        """Wait until every ingested chunk is visible to queries.

        Useful to make "query the prefix ingested so far" deterministic
        in tests and benchmarks.  A serial server is always caught up; a
        sharded server with streaming disabled (``seal_interval=None``)
        cannot expose mid-load state, so quiescing it raises
        ``RuntimeError`` (finalize instead).
        """
        if self._pipeline is not None and not self._loading_finalized:
            self._pipeline.quiesce(timeout)

    def run_workload(self, queries: Iterable[Query]
                     ) -> List[QueryResult]:
        """Execute core-model queries via their SQL renderings."""
        return [self.query(q.sql(self.table_name)) for q in queries]

    @property
    def table(self) -> TableEntry:
        """The managed table's catalog entry."""
        return self._table

    def update_plan(self, plan: PushdownPlan) -> None:
        """Swap in a replanned pushdown registry (adaptive replanning).

        Affects the query path immediately: queries matching the new
        plan's clauses resolve to its predicate ids.  Row groups loaded
        before the new predicates existed have no vectors for them and
        are scanned fully (the engine's missing-vector rule), so answers
        stay exact; data ingested by future sessions carries the new
        annotations.  Retained clauses keep their ids (see
        :mod:`repro.core.adaptive`), so their historical vectors keep
        skipping.
        """
        self.plan = plan
        self._table.pushdown = {
            e.clause: e.predicate_id for e in plan.entries
        }

    # ------------------------------------------------------------------
    def _decide_partial_loading(self, mode: str) -> bool:
        # The mode itself was validated up front by
        # validate_server_options; only policy resolution happens here.
        if mode == "on":
            return True
        if mode == "off":
            return False
        if self.plan is None or len(self.plan) == 0:
            return False
        if self.workload is None:
            # No prospective workload to check coverage against: be
            # conservative, exactly like a baseline server.
            return False
        return all(self.plan.covers_query(q) for q in self.workload)
