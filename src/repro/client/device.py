"""A simulated client device (edge sensor / log shipper).

The device consumes raw records, batches them into chunks, runs the
pushdown plan's predicates, and emits encoded chunks onto a channel.  It
keeps a ledger of the client-side cost in both axes: wall-clock (what this
Python process actually spent matching) and modeled µs (what the calibrated
cost model charges — the number the budget constrains).

A ``speed_factor`` < 1 makes the device an under-powered client: its
*virtual* cost is scaled up accordingly, which is how heterogeneous-client
experiments exercise :func:`repro.core.budgets.allocate_budgets`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional

from ..core.optimizer import PushdownPlan
from ..rawjson.chunks import DEFAULT_CHUNK_SIZE, JsonChunk, chunk_records
from ..transport import Channel
from .evaluator import ClientEvaluator, EvaluationReport
from .protocol import encode_chunk

#: Default chunk frames concatenated per channel message.  Measured in
#: ``benchmarks/bench_parallel_ingest.py`` (see
#: ``benchmarks/results/batched_framing.txt``): per-message overhead is a
#: fixed cost, so batching wins in proportion to how small messages are —
#: ~2.1× transport time on the file-spool channel (the paper's
#: deployment) at 25-record chunks, ~1.1× at 250 — while the in-memory
#: delta is noise next to parse cost.  Returns diminish past ~8 frames.
DEFAULT_SHIP_BATCH = 8


@dataclass
class ClientStats:
    """Cumulative device accounting."""

    records: int = 0
    chunks: int = 0
    wall_seconds: float = 0.0
    modeled_us: float = 0.0
    bytes_sent: int = 0

    def modeled_us_per_record(self) -> float:
        """Average modeled per-record cost — the budget's unit."""
        return self.modeled_us / self.records if self.records else 0.0


class SimulatedClient:
    """One data-producing client executing a pushdown plan.

    Args:
        client_id: Identifier, for multi-client experiments.
        plan: The pushdown plan (None/empty = annotate nothing; the
            zero-budget baseline).
        chunk_size: Records per chunk (paper default 1 000).
        speed_factor: Relative device speed; modeled cost scales by 1/f.
    """

    def __init__(self, client_id: str,
                 plan: Optional[PushdownPlan] = None,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 speed_factor: float = 1.0):
        if speed_factor <= 0:
            raise ValueError("speed factor must be positive")
        self.client_id = client_id
        self.plan = plan
        self.chunk_size = chunk_size
        self.speed_factor = speed_factor
        self._evaluator = (
            ClientEvaluator(plan.entries) if plan and len(plan) else None
        )
        self.stats = ClientStats()

    def update_plan(self, plan: Optional[PushdownPlan]) -> None:
        """Swap the executed plan (fleet budget re-allocation).

        Fleet coordinators re-allocate budgets between loading intervals;
        the new plan must be a prefix/superset of the same global plan so
        predicate ids stay consistent (see ``PushdownPlan.restrict``).
        Chunks annotated before the swap keep their old annotations —
        the server loads partially-annotated chunks eagerly, so answers
        stay exact.  ``budget_respected`` compares the cumulative ledger
        against the *current* plan's budget, so it is only meaningful
        between swaps.
        """
        self.plan = plan
        self._evaluator = (
            ClientEvaluator(plan.entries) if plan and len(plan) else None
        )

    def process(self, raw_records: Iterable[str],
                start_chunk_id: int = 0) -> Iterator[JsonChunk]:
        """Batch, annotate, and yield chunks (not yet encoded)."""
        for chunk in chunk_records(raw_records, self.chunk_size,
                                   start_id=start_chunk_id):
            if self._evaluator is not None:
                report = self._evaluator.annotate(chunk)
                self._account(report)
            self.stats.records += len(chunk)
            self.stats.chunks += 1
            yield chunk

    def ship(self, raw_records: Iterable[str], channel: Channel,
             batch_size: int = 1,
             on_flush: Optional[Callable[[], None]] = None) -> int:
        """Process records and send encoded chunks; returns chunk count.

        With ``batch_size > 1``, that many chunk frames are concatenated
        into one channel message (:meth:`Channel.send_batch`), amortizing
        per-message transport overhead for small chunks; the server splits
        the frames back apart when draining.

        *on_flush* runs after every message actually sent — the hook a
        driver uses to drain the channel into a server as data flows
        (bounded memory) instead of after the whole stream shipped.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        sent = 0
        batch: List[bytes] = []
        for chunk in self.process(raw_records):
            payload = encode_chunk(chunk)
            self.stats.bytes_sent += len(payload)
            batch.append(payload)
            sent += 1
            if len(batch) >= batch_size:
                self._flush(batch, channel, on_flush)
        self._flush(batch, channel, on_flush)
        return sent

    @staticmethod
    def _flush(batch: List[bytes], channel: Channel,
               on_flush: Optional[Callable[[], None]] = None) -> None:
        flushed = bool(batch)
        channel.send_frames(batch)
        batch.clear()
        if flushed and on_flush is not None:
            on_flush()

    def _account(self, report: EvaluationReport) -> None:
        self.stats.wall_seconds += report.wall_seconds
        self.stats.modeled_us += report.modeled_us / self.speed_factor

    def budget_respected(self, tolerance: float = 1e-9) -> bool:
        """Did average modeled cost stay within the plan's budget?

        The plan's budget is expressed in calibrated-machine µs, so the
        device's speed-scaled ledger is rescaled back before comparing.
        Vacuously true with no plan.  The optimizer guarantees this by
        construction; integration tests assert it end to end.
        """
        if self.plan is None or self.stats.records == 0:
            return True
        calibrated_us = self.stats.modeled_us_per_record() * self.speed_factor
        return calibrated_us <= self.plan.budget.us + tolerance
