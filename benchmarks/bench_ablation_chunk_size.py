"""Ablation — chunk size: skipping granularity vs bit-vector overhead.

The paper fixes chunks at 1 000 objects.  Smaller chunks mean finer
partial-loading and row-group-skipping granularity (whole groups skip more
often) but more per-chunk overhead; larger chunks amortize headers but
dilute skipping.  This bench sweeps the chunk size and reports loading,
query time, and wire overhead of the bit-vectors.
"""

from conftest import config_for, run_once

from repro.bench import EndToEndRunner, emit_table
from repro.client import SimulatedClient, encode_chunk
from repro.workload import selectivity_workload

PARAMS = config_for("winlog", n_records=4000, n_queries=5)
CHUNK_SIZES = [100, 250, 500, 1000, 2000]


def test_ablation_chunk_size(benchmark, tmp_path, results_dir):
    def experiment():
        workload, pushed = selectivity_workload(0.15)
        rows = []
        for chunk_size in CHUNK_SIZES:
            config = PARAMS["config"]
            config = type(config)(
                dataset=config.dataset,
                n_records=config.n_records,
                chunk_size=chunk_size,
                seed=config.seed,
                sample_size=config.sample_size,
                scale=config.scale,
            )
            runner = EndToEndRunner(config, tmp_path / str(chunk_size))
            plan = runner.plan_for_clauses(workload, pushed)
            metrics = runner.run(workload, plan, label=f"chunk={chunk_size}")
            # Wire overhead of the annotations for this chunk size.
            client = SimulatedClient("c", plan=plan, chunk_size=chunk_size)
            record_bytes = 0
            total_bytes = 0
            for chunk in client.process(iter(runner.raw_lines)):
                record_bytes += chunk.total_bytes()
                total_bytes += len(encode_chunk(chunk))
            overhead = (total_bytes - record_bytes) / record_bytes
            rows.append(
                (
                    chunk_size,
                    metrics.loading_wall_s,
                    metrics.loading_ratio,
                    metrics.query_wall_s,
                    overhead * 100,
                )
            )
        return rows

    rows = run_once(benchmark, experiment)
    emit_table(
        "ablation_chunk_size",
        ["chunk size", "loading (s)", "load ratio", "query (s)",
         "wire overhead (%)"],
        rows, results_dir, title="Chunk-size ablation",
    )

    overheads = [row[4] for row in rows]
    # Bit-vector overhead stays marginal at every chunk size and shrinks
    # as chunks grow.
    assert max(overheads) < 5.0
    assert overheads[-1] <= overheads[0]
