"""Expression AST for the mini query engine.

The engine evaluates full WHERE expressions over parsed rows — including
predicates CIAO can *not* push down (ranges, inequalities) — because query
results must be exact regardless of what was pushed.  The bridge to the
optimizer is :func:`to_clause`: a best-effort conversion of one conjunct
into a :class:`~repro.core.predicates.Clause`, returning ``None`` when the
conjunct is not client-evaluable (paper §V-A: such clauses are simply not
pushdown candidates).

Null semantics are two-valued: any comparison against an absent/null field
is false, matching the ground-truth semantics in
:meth:`SimplePredicate.evaluate`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.predicates import (
    Clause,
    SimplePredicate,
    exact,
    key_present,
    key_value,
    prefix,
    substring,
    suffix,
)


class Expr(ABC):
    """Base expression node."""

    @abstractmethod
    def evaluate(self, row: Mapping[str, Any]) -> Any:
        """Value of this expression on one row."""

    @abstractmethod
    def columns(self) -> Set[str]:
        """Column names referenced (for projection pushdown)."""

    @abstractmethod
    def sql(self) -> str:
        """Render back to SQL text."""

    def __str__(self) -> str:
        return self.sql()


@dataclass(frozen=True)
class Column(Expr):
    """A column reference."""

    name: str

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return row.get(self.name)

    def columns(self) -> Set[str]:
        return {self.name}

    def sql(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expr):
    """A constant."""

    value: Any

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return self.value

    def columns(self) -> Set[str]:
        return set()

    def sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Expr):
    """A binary comparison; false on nulls or type mismatch."""

    left: Expr
    op: str
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        lhs = self.left.evaluate(row)
        rhs = self.right.evaluate(row)
        if lhs is None or rhs is None:
            return False
        if isinstance(lhs, bool) != isinstance(rhs, bool):
            return False  # never equate true/1
        if isinstance(lhs, str) != isinstance(rhs, str):
            return False
        try:
            return bool(_COMPARATORS[self.op](lhs, rhs))
        except TypeError:
            return False

    def columns(self) -> Set[str]:
        return self.left.columns() | self.right.columns()

    def sql(self) -> str:
        return f"{self.left.sql()} {self.op} {self.right.sql()}"


@dataclass(frozen=True)
class LikeExpr(Expr):
    """SQL LIKE with ``%`` wildcards (no ``_`` support; the paper's
    templates only use ``%``)."""

    column: Expr
    pattern: str

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        value = self.column.evaluate(row)
        if not isinstance(value, str):
            return False
        return like_match(self.pattern, value)

    def columns(self) -> Set[str]:
        return self.column.columns()

    def sql(self) -> str:
        escaped = self.pattern.replace("'", "''")
        return f"{self.column.sql()} LIKE '{escaped}'"


@dataclass(frozen=True)
class IsNotNull(Expr):
    """``col IS NOT NULL`` (also produced by the paper's ``col != NULL``)."""

    column: Expr

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return self.column.evaluate(row) is not None

    def columns(self) -> Set[str]:
        return self.column.columns()

    def sql(self) -> str:
        return f"{self.column.sql()} IS NOT NULL"


@dataclass(frozen=True)
class IsNull(Expr):
    """``col IS NULL``."""

    column: Expr

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return self.column.evaluate(row) is None

    def columns(self) -> Set[str]:
        return self.column.columns()

    def sql(self) -> str:
        return f"{self.column.sql()} IS NULL"


@dataclass(frozen=True)
class And(Expr):
    """Conjunction."""

    children: Tuple[Expr, ...]

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return all(child.evaluate(row) for child in self.children)

    def columns(self) -> Set[str]:
        out: Set[str] = set()
        for child in self.children:
            out |= child.columns()
        return out

    def sql(self) -> str:
        return " AND ".join(
            f"({c.sql()})" if isinstance(c, Or) else c.sql()
            for c in self.children
        )


@dataclass(frozen=True)
class Or(Expr):
    """Disjunction."""

    children: Tuple[Expr, ...]

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return any(child.evaluate(row) for child in self.children)

    def columns(self) -> Set[str]:
        out: Set[str] = set()
        for child in self.children:
            out |= child.columns()
        return out

    def sql(self) -> str:
        return " OR ".join(c.sql() for c in self.children)


@dataclass(frozen=True)
class Not(Expr):
    """Negation."""

    child: Expr

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return not self.child.evaluate(row)

    def columns(self) -> Set[str]:
        return self.child.columns()

    def sql(self) -> str:
        return f"NOT ({self.child.sql()})"


# ----------------------------------------------------------------------
# LIKE matching
# ----------------------------------------------------------------------
def like_match(pattern: str, value: str) -> bool:
    """Match a ``%``-wildcard LIKE pattern against *value*.

    Segments between ``%`` must appear in order; a leading/trailing
    non-wildcard segment anchors the start/end.
    """
    segments = pattern.split("%")
    if len(segments) == 1:
        return value == pattern
    head, *middle, tail = segments
    if head and not value.startswith(head):
        return False
    if tail and not value.endswith(tail):
        return False
    position = len(head)
    end_limit = len(value) - len(tail)
    for segment in middle:
        if not segment:
            continue
        found = value.find(segment, position, end_limit)
        if found == -1:
            return False
        position = found + len(segment)
    return position <= end_limit


# ----------------------------------------------------------------------
# Bridging to the optimizer's clause model
# ----------------------------------------------------------------------
def conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Top-level AND factors of *expr* (flattening nested ANDs)."""
    if expr is None:
        return []
    if isinstance(expr, And):
        out: List[Expr] = []
        for child in expr.children:
            out.extend(conjuncts(child))
        return out
    return [expr]


def _simple_from(expr: Expr) -> Optional[SimplePredicate]:
    """One atom → supported SimplePredicate, or None."""
    if isinstance(expr, Comparison) and isinstance(expr.left, Column) \
            and isinstance(expr.right, Literal):
        value = expr.right.value
        if expr.op == "=":
            if isinstance(value, str):
                return exact(expr.left.name, value) if value else None
            if isinstance(value, bool) or isinstance(value, int):
                return key_value(expr.left.name, value)
            return None  # float equality is not pushdown-safe
        if expr.op == "!=" and value is None:
            return key_present(expr.left.name)
        return None
    if isinstance(expr, IsNotNull) and isinstance(expr.column, Column):
        return key_present(expr.column.name)
    if isinstance(expr, LikeExpr) and isinstance(expr.column, Column):
        return _simple_from_like(expr.column.name, expr.pattern)
    return None


def _simple_from_like(column: str, pattern: str
                      ) -> Optional[SimplePredicate]:
    body = pattern.strip("%")
    if not body or "%" in body:
        return None  # multi-segment patterns are not single searches
    starts = pattern.startswith("%")
    ends = pattern.endswith("%")
    if starts and ends:
        return substring(column, body)
    if ends:
        return prefix(column, body)
    if starts:
        return suffix(column, body)
    return exact(column, body)


def to_clause(expr: Expr) -> Optional[Clause]:
    """Convert one conjunct into a pushdown-candidate clause, if supported.

    A conjunct converts iff it is a supported atom or a disjunction of
    supported atoms (paper §V-A).  ``None`` means "evaluate on the server
    only".
    """
    if isinstance(expr, Or):
        atoms = []
        for child in expr.children:
            atom = _simple_from(child)
            if atom is None:
                return None
            atoms.append(atom)
        return Clause(tuple(atoms))
    atom = _simple_from(expr)
    if atom is None:
        return None
    return Clause((atom,))


def predicate_to_expr(pred: SimplePredicate) -> Expr:
    """Inverse bridge: a core predicate as an engine expression."""
    from ..core.predicates import PredicateKind

    column = Column(pred.column)
    kind = pred.kind
    if kind is PredicateKind.EXACT:
        return Comparison(column, "=", Literal(pred.value))
    if kind is PredicateKind.SUBSTRING:
        return LikeExpr(column, f"%{pred.value}%")
    if kind is PredicateKind.PREFIX:
        return LikeExpr(column, f"{pred.value}%")
    if kind is PredicateKind.SUFFIX:
        return LikeExpr(column, f"%{pred.value}")
    if kind is PredicateKind.KEY_PRESENCE:
        return IsNotNull(column)
    if kind is PredicateKind.KEY_VALUE:
        return Comparison(column, "=", Literal(pred.value))
    raise AssertionError(f"unhandled kind {kind}")


def clause_to_expr(clause: Clause) -> Expr:
    """A clause as an engine expression (single atom or OR)."""
    exprs = [predicate_to_expr(p) for p in clause.predicates]
    if len(exprs) == 1:
        return exprs[0]
    return Or(tuple(exprs))


def query_where_expr(clauses: Sequence[Clause]) -> Expr:
    """The conjunction of *clauses* as one expression."""
    exprs = [clause_to_expr(c) for c in clauses]
    if len(exprs) == 1:
        return exprs[0]
    return And(tuple(exprs))
