# ciaolint: module-role=service
"""Fixture: RET001 — unbounded swallow-and-spin reconnect loops."""

import time


def reconnect(dial):
    while True:
        try:
            return dial()
        except OSError:
            time.sleep(0.1)


def pump(channel, payloads):
    while True:
        try:
            for payload in payloads:
                channel.send(payload)
            return
        except ConnectionError:
            channel = channel.redial()
