"""Incremental snapshot aggregation: per-part partial-aggregate caching.

The contract: during a streaming load, repeated aggregate queries scan
only newly sealed parts (plus the sideline delta), and every answer is
identical to a cold scan of the same snapshot — rows, ordering, floats.
"""

import json

import pytest

from repro.engine import (
    Catalog,
    Executor,
    SnapshotAggCache,
    TableEntry,
    parse_sql,
    query_fingerprint,
)
from repro.rawjson import JsonChunk, dump_record
from repro.server import CiaoServer
from repro.storage import ParquetLiteWriter, infer_schema


def _records(lo, hi):
    return [
        {"i": k % 7, "v": k, "tag": f"t{k % 3}"} for k in range(lo, hi)
    ]


def _write_part(path, records, group_rows=10):
    path.parent.mkdir(parents=True, exist_ok=True)
    with ParquetLiteWriter(path, infer_schema(records)) as writer:
        for start in range(0, len(records), group_rows):
            writer.write_row_group(records[start:start + group_rows])
    return path


@pytest.fixture()
def snapshot_table(tmp_path):
    """A table in snapshot-scan mode over two immutable parts, plus a
    grower to seal more parts (the streaming-ingest shape, minus the
    threads)."""
    parts = [
        _write_part(tmp_path / "part0.pql", _records(0, 40)),
        _write_part(tmp_path / "part1.pql", _records(40, 80)),
    ]
    table = TableEntry(name="t")
    table.apply_snapshot(1, list(parts), None)
    catalog = Catalog()
    catalog.register(table)

    def grow(version, lo, hi):
        parts.append(
            _write_part(tmp_path / f"part{len(parts)}.pql",
                        _records(lo, hi))
        )
        table.apply_snapshot(version, list(parts), None)

    return table, Executor(catalog), grow


AGG_SQL = "SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM t WHERE i = 1"
GROUP_SQL = "SELECT tag, COUNT(*), SUM(v) FROM t GROUP BY tag"


class TestIncrementalAggregation:
    def test_second_query_scans_nothing_new(self, snapshot_table):
        table, executor, _ = snapshot_table
        first = executor.execute(AGG_SQL)
        second = executor.execute(AGG_SQL)
        assert first.rows == second.rows
        assert first.plan_info.snapshot_cache_misses == 2
        assert second.plan_info.snapshot_cache_hits == 2
        assert second.stats.row_groups_total == 0

    def test_growth_scans_only_new_parts(self, snapshot_table):
        table, executor, grow = snapshot_table
        executor.execute(AGG_SQL)
        grow(2, 80, 120)
        warm = executor.execute(AGG_SQL)
        assert warm.plan_info.snapshot_cache_hits == 2
        assert warm.plan_info.snapshot_cache_misses == 1
        assert warm.stats.row_groups_total == 4  # the new part only
        # Cold rescan of the same snapshot: byte-identical answer.
        table.clear_snapshot_cache()
        cold = executor.execute(AGG_SQL)
        assert json.dumps(warm.rows) == json.dumps(cold.rows)
        assert warm.stats.row_groups_total < cold.stats.row_groups_total

    def test_group_by_order_matches_cold_scan(self, snapshot_table):
        table, executor, grow = snapshot_table
        warm_seed = executor.execute(GROUP_SQL)
        grow(2, 80, 120)
        warm = executor.execute(GROUP_SQL)
        table.clear_snapshot_cache()
        cold = executor.execute(GROUP_SQL)
        # Ordering (first-appearance across parts) survives the merge.
        assert warm.rows == cold.rows
        assert warm_seed.rows != warm.rows  # the data actually grew

    def test_distinct_queries_cache_independently(self, snapshot_table):
        table, executor, _ = snapshot_table
        executor.execute(AGG_SQL)
        other = executor.execute("SELECT COUNT(*) FROM t WHERE i = 2")
        assert other.plan_info.snapshot_cache_misses == 2
        assert other.plan_info.snapshot_cache_hits == 0

    def test_limit_applies_after_merge_and_shares_partials(
            self, snapshot_table):
        table, executor, _ = snapshot_table
        full = executor.execute(GROUP_SQL)
        limited = executor.execute(GROUP_SQL + " LIMIT 2")
        assert limited.rows == full.rows[:2]
        # Same fingerprint: the limited rendering reused the partials.
        assert limited.plan_info.snapshot_cache_hits == 2

    def test_non_aggregate_queries_bypass_cache(self, snapshot_table):
        table, executor, _ = snapshot_table
        result = executor.execute("SELECT i, v FROM t LIMIT 3")
        assert len(result.rows) == 3
        assert result.plan_info.snapshot_cache_hits == 0
        assert result.plan_info.snapshot_cache_misses == 0

    def test_clear_snapshot_drops_cache(self, snapshot_table, tmp_path):
        table, executor, _ = snapshot_table
        executor.execute(AGG_SQL)
        cache = table.snapshot_cache
        assert len(cache) == 2
        sealed = list(table.parquet_paths)
        table.clear_snapshot()
        assert table._snapshot_cache is None
        # Finalized-table queries plan cold (no snapshot mode).
        table.parquet_paths = sealed
        table.invalidate()
        result = executor.execute(AGG_SQL)
        assert result.stats.row_groups_total == 8

    def test_retain_parts_prunes_vanished_parts(self):
        cache = SnapshotAggCache()
        from repro.engine.snapcache import _PartPartial

        cache.put("a.pql", "f", _PartPartial(simple=[]))
        cache.put("b.pql", "f", _PartPartial(simple=[]))
        cache.retain_parts(["b.pql"])
        assert cache.get("a.pql", "f") is None
        assert cache.get("b.pql", "f") is not None


class TestFingerprint:
    def test_limit_excluded(self):
        a = query_fingerprint(parse_sql(GROUP_SQL))
        b = query_fingerprint(parse_sql(GROUP_SQL + " LIMIT 5"))
        assert a == b

    def test_semantics_included(self):
        base = query_fingerprint(parse_sql(AGG_SQL))
        assert base != query_fingerprint(
            parse_sql("SELECT COUNT(*), SUM(v), MIN(v), MAX(v) "
                      "FROM t WHERE i = 2")
        )
        assert base != query_fingerprint(
            parse_sql("SELECT COUNT(*), SUM(v), MIN(v), MAX(i) "
                      "FROM t WHERE i = 1")
        )


class TestServerIntegration:
    """The cache engages through CiaoServer.query() mid-load and answers
    stay equal to serial ingest of the covered chunks."""

    def _chunks(self, lo, hi, n=25):
        return [
            JsonChunk(cid, [
                dump_record({"i": (cid * n + k) % 7, "v": cid * n + k})
                for k in range(n)
            ])
            for cid in range(lo, hi)
        ]

    def test_mid_load_incremental_equals_serial(self, tmp_path):
        server = CiaoServer(tmp_path / "s", n_shards=2,
                            shard_mode="thread", seal_interval=1)
        for chunk in self._chunks(0, 4):
            server.ingest(chunk)
        server.quiesce()
        first = server.query(AGG_SQL)
        for chunk in self._chunks(4, 8):
            server.ingest(chunk)
        server.quiesce()
        warm = server.query(AGG_SQL)
        assert warm.plan_info.snapshot_cache_hits > 0

        reference = CiaoServer(tmp_path / "ref")
        for chunk in self._chunks(0, 8):
            reference.ingest(chunk)
        reference.finalize_loading()
        want = reference.query(AGG_SQL)
        assert json.dumps(warm.rows) == json.dumps(want.rows)

        server.finalize_loading()
        final = server.query(AGG_SQL)
        assert json.dumps(final.rows) == json.dumps(want.rows)

    def test_finalize_clears_snapshot_state(self, tmp_path):
        server = CiaoServer(tmp_path / "s", n_shards=2,
                            shard_mode="thread", seal_interval=1)
        for chunk in self._chunks(0, 3):
            server.ingest(chunk)
        server.quiesce()
        server.query("SELECT COUNT(*) FROM t")
        assert server.table.in_snapshot_mode
        server.finalize_loading()
        assert not server.table.in_snapshot_mode
        assert server.table._snapshot_cache is None
