"""Unit tests for no-parse CSV matching."""

import pytest

from repro.core import (
    clause,
    exact,
    key_present,
    key_value,
    prefix,
    substring,
    suffix,
)
from repro.rawcsv import (
    CsvCodec,
    CsvUnsupportedError,
    compile_csv_clause,
    compile_csv_predicate,
)

CODEC = CsvCodec(
    ["name", "city", "age", "note"],
    types={"age": int},
)


def line(**record):
    return CODEC.encode_record(record)


class TestExactMatch:
    def test_middle_field(self):
        spec = compile_csv_predicate(exact("city", "Rome"), CODEC)
        assert spec.match(line(name="Ann", city="Rome", age=3, note="x"))
        assert not spec.match(line(name="Ann", city="Romeo", age=3))

    def test_first_and_last_field_anchoring(self):
        spec = compile_csv_predicate(exact("name", "Ann"), CODEC)
        assert spec.match(line(name="Ann", city="x", age=1, note="y"))
        spec2 = compile_csv_predicate(exact("note", "zz"), CODEC)
        assert spec2.match(line(name="Ann", city="x", age=1, note="zz"))

    def test_quoted_field_form(self):
        spec = compile_csv_predicate(exact("note", "a,b"), CODEC)
        assert spec.match(line(name="n", city="c", age=1, note="a,b"))

    def test_false_positive_cross_column_allowed(self):
        spec = compile_csv_predicate(exact("city", "Ann"), CODEC)
        # 'Ann' sits in the name column: raw matching cannot tell.
        assert spec.match(line(name="Ann", city="x", age=1, note="y"))


class TestSubstringPrefixSuffix:
    def test_substring(self):
        spec = compile_csv_predicate(substring("note", "needle"), CODEC)
        assert spec.match(line(name="a", city="b", age=1,
                               note="hay needle stack"))
        assert not spec.match(line(name="a", city="b", age=1, note="hay"))

    def test_prefix_on_quoted_field(self):
        spec = compile_csv_predicate(prefix("note", "abc"), CODEC)
        assert spec.match(line(name="n", city="c", age=1, note="abc,def"))
        assert spec.match(line(name="n", city="c", age=1, note="abcdef"))

    def test_suffix_on_quoted_field(self):
        spec = compile_csv_predicate(suffix("note", "def"), CODEC)
        assert spec.match(line(name="n", city="c", age=1, note="abc,def"))
        assert spec.match(line(name="n", city="c", age=1, note="xdef"))


class TestKeyValue:
    def test_int_match(self):
        spec = compile_csv_predicate(key_value("age", 42), CODEC)
        assert spec.match(line(name="a", city="b", age=42, note="z"))
        assert not spec.match(line(name="a", city="b", age=421, note="z"))

    def test_bool_match(self):
        codec = CsvCodec(["flag"], types={"flag": bool})
        spec = compile_csv_predicate(key_value("flag", True), codec)
        assert spec.match(codec.encode_record({"flag": True}))
        assert not spec.match(codec.encode_record({"flag": False}))


class TestUnsupported:
    def test_key_presence_rejected(self):
        with pytest.raises(CsvUnsupportedError):
            compile_csv_predicate(key_present("name"), CODEC)

    def test_unknown_column_rejected(self):
        with pytest.raises(CsvUnsupportedError):
            compile_csv_predicate(exact("ghost", "x"), CODEC)

    def test_quote_in_operand_rejected(self):
        with pytest.raises(CsvUnsupportedError):
            compile_csv_predicate(substring("note", 'has"quote'), CODEC)


class TestClause:
    def test_disjunction(self):
        c = clause(exact("city", "Rome"), exact("city", "Pisa"))
        compiled = compile_csv_clause(c, CODEC)
        assert compiled.match(line(name="a", city="Pisa", age=1, note="n"))
        assert not compiled.match(line(name="a", city="Bonn", age=1,
                                       note="n"))

    def test_unsupported_disjunct_poisons_clause(self):
        c = clause(exact("city", "Rome"), key_present("name"))
        with pytest.raises(CsvUnsupportedError):
            compile_csv_clause(c, CODEC)
