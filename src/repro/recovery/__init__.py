"""Fault tolerance: durable manifests, exactly-once ingest, retries.

The pieces that let a CIAO deployment survive real faults instead of
simulated ones: a crash-atomic :class:`Manifest` recording each
server's sealed state (:mod:`repro.recovery.manifest`), the
:class:`IngestLedger` that makes replayed batches idempotent
(:mod:`repro.recovery.ledger`), and the bounded deterministic
:class:`RetryPolicy` clients retry under
(:mod:`repro.recovery.retry`).  The server side wires these into
:meth:`repro.server.CiaoServer.checkpoint` /
:meth:`repro.server.CiaoServer.recover`; the client side into
:class:`repro.service.RemoteSession`; the chaos harness that proves
the combination lives in :mod:`repro.transport.faults`.
"""

from .ledger import IngestLedger, LedgerError
from .manifest import MANIFEST_FORMAT, Manifest, ManifestError
from .retry import RetryPolicy

__all__ = [
    "IngestLedger",
    "LedgerError",
    "MANIFEST_FORMAT",
    "Manifest",
    "ManifestError",
    "RetryPolicy",
]
