"""Shape assertions for the paper's headline claims.

Absolute numbers depend on the host, but the *direction* of every paper
result must reproduce: partial loading beats eager loading, skipped queries
beat full scans, and the end-to-end pipeline wins at a modest budget.
"""

import pytest

from repro.bench import EndToEndRunner, ExperimentConfig


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    from repro.workload import selectivity_workload

    config = ExperimentConfig(
        dataset="winlog", n_records=1500, chunk_size=300, sample_size=800
    )
    runner = EndToEndRunner(
        config, tmp_path_factory.mktemp("speedups")
    )
    workload, pushed = selectivity_workload(0.01)
    baseline = runner.run(workload, None, label="baseline")
    plan = runner.plan_for_clauses(workload, pushed)
    ciao = runner.run(workload, plan, label="ciao")
    return baseline, ciao


class TestDirectionalClaims:
    def test_loading_time_improves(self, sweep):
        baseline, ciao = sweep
        assert ciao.partial_loading
        assert ciao.loading_ratio < 0.25
        assert ciao.loading_wall_s < baseline.loading_wall_s

    def test_query_time_improves(self, sweep):
        baseline, ciao = sweep
        assert ciao.query_wall_s < baseline.query_wall_s

    def test_end_to_end_improves(self, sweep):
        baseline, ciao = sweep
        assert ciao.end_to_end_wall_s < baseline.end_to_end_wall_s

    def test_prefiltering_cost_is_the_price(self, sweep):
        baseline, ciao = sweep
        assert baseline.prefilter_model_s == 0.0
        assert ciao.prefilter_model_s > 0.0

    def test_all_queries_benefit_from_skipping(self, sweep):
        _, ciao = sweep
        assert ciao.queries_benefiting == ciao.total_queries


class TestBudgetMonotonicity:
    def test_more_budget_pushes_more_predicates(self, tmp_path):
        from repro.workload import table3_workload

        config = ExperimentConfig(
            dataset="winlog", n_records=600, chunk_size=200,
            sample_size=500,
        )
        runner = EndToEndRunner(config, tmp_path)
        workload = table3_workload(
            "winlog", "A", seed=config.seed, n_queries=15
        )
        sizes = []
        for budget in (0.5, 2.0, 8.0):
            plan = runner.plan_for_budget(workload, budget)
            sizes.append(len(plan))
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]
