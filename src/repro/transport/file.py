"""File-spool channel, mirroring the paper's file-I/O deployment."""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional

from .base import Channel


class FileChannel(Channel):
    """File-spool FIFO, mirroring the paper's file-I/O deployment.

    Messages are numbered spool files under *directory*; receive order is
    send order.  The channel owns the directory's ``.msg`` files; anything
    else in there is left alone.
    """

    def __init__(self, directory: str | Path):
        super().__init__()
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._next_send = 0
        self._next_receive = 0
        # Resume counters from any existing spool (restart tolerance).
        numbers = self._spool_numbers()
        if numbers:
            self._next_receive = min(numbers)
            self._next_send = max(numbers) + 1

    def _path(self, index: int) -> Path:
        return self._dir / f"{index:09d}.msg"

    def send(self, payload: bytes) -> None:
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("channels carry bytes")
        path = self._path(self._next_send)
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(payload)
        os.replace(tmp, path)  # atomic publish: no torn reads
        self._next_send += 1
        self.stats.record_send(len(payload))

    def receive(self) -> Optional[bytes]:
        path = self._path(self._next_receive)
        if not path.exists():
            # A gap in the spool (e.g. a crashed consumer deleted one
            # file out of order) must not stall the channel forever:
            # skip forward to the oldest spool file that actually
            # exists, if any.
            numbers = self._spool_numbers()
            later = [n for n in numbers if n > self._next_receive]
            if not later:
                return None
            self._next_receive = min(later)
            path = self._path(self._next_receive)
        payload = path.read_bytes()
        path.unlink()
        self._next_receive += 1
        self.stats.record_receive()
        return payload

    def pending(self) -> int:
        # Counted from files actually on disk, not send/receive counters:
        # a resumed spool with gaps would otherwise overcount messages
        # that no longer exist.
        return len(self._spool_numbers())

    def _spool_numbers(self) -> List[int]:
        """Message numbers of the spool files currently on disk."""
        return [
            int(p.stem) for p in self._dir.glob("*.msg")
            if p.stem.isdigit()
        ]
