"""Sharded, pipelined ingest with streaming snapshots and work stealing.

One :class:`~repro.server.loader.ClientAssistedLoader` is strictly serial —
decode, parse, and write happen on the caller's thread, so a server draining
many client channels leaves every other core idle and the expensive JSON
parse on the critical path.  This module fans that work out (Fig. 1's server
box, scaled horizontally) and, unlike the paper's load-then-query lifecycle,
keeps the table queryable *while* loading:

Architecture::

    submit(payload) ──▶ shared work deque ─▶ worker 0 (local queue) ┐
                        (work stealing:      worker 1 (local queue) ├─▶
                        idle workers pull    ...                    │
                        the oldest chunk)    worker N (local queue) ┘
                             │                        │
                             │        seal part every K chunks / on idle,
                             │        publish (sealed parts, sideline
                             │        watermark, per-chunk reports)
                             ▼                        ▼
                        snapshot() ◀──lock-protected merge──  finalize()

* **Shard workers.**  Each worker owns a private
  :class:`ClientAssistedLoader` writing shard-local Parquet-lite parts
  (``table.shardK[.partM].pql``) and a shard-local sideline file.  Encoded
  payloads are shipped raw to the worker, which decodes them there
  (:func:`repro.client.protocol.decode_chunk` walks a zero-copy
  ``memoryview`` cursor), so the submitting thread does no per-chunk work
  beyond a queue put.
* **Work-stealing dispatch** (``dispatch="work-stealing"``, the default).
  Chunks go into one shared deque; each worker pulls the oldest pending
  chunk (grabbing a small local batch to amortize queue traffic) whenever
  it runs dry.  Skewed chunk sizes therefore spread across shards instead
  of serializing on whichever shard round-robin happened to hand the big
  chunks to.  Which shard processes which chunk is timing-dependent, but
  everything the equivalence tests observe is assignment-invariant: merged
  reports are re-ordered by submission sequence, and the engine scans a
  table as the unordered union of its Parquet parts plus sideline.
  ``dispatch="round-robin"`` restores the old deterministic mapping (chunk
  *k* → shard ``k % n_shards``, reproducible shard files) for layout tests
  and as the bench baseline.
* **Streaming snapshots** (``seal_interval``).  Workers seal their current
  Parquet part every *seal_interval* chunks and whenever their queue goes
  idle, then publish ``(sealed part paths, sideline record watermark,
  per-chunk reports)``.  :meth:`snapshot` merges those publications under a
  lock into a :class:`LoadSnapshot` — a consistent loaded-so-far view the
  query engine can scan mid-load: every covered chunk has *all* its rows
  either in a sealed part or below the sideline watermark, exactly as
  serial ingest of those chunks would have placed them.  ``seal_interval=
  None`` disables sealing/publishing (legacy batch behavior, deterministic
  part layout under round-robin).
* **Merge at finalize.**  :meth:`finalize` seals every shard loader, then
  merges the shard outputs: Parquet parts are concatenated in shard order
  into one path list for the catalog, shard sidelines are folded into the
  table's side store (and removed), and per-chunk
  :class:`~repro.server.loader.LoadReport`\\ s are re-ordered by submission
  sequence so the merged :class:`~repro.server.loader.LoadSummary` is
  identical to what serial ingest of the same stream would report.

Correctness: every record lands in exactly one shard, each shard preserves
its loader's invariants (``received == loaded + sidelined + malformed``
per chunk, malformed records quarantined raw in the sideline), and the
engine already scans a table as the union of its Parquet parts plus the
side store — so query results match serial ingest exactly; only row-group
*order* across files differs, which no aggregate observes.

Execution modes: ``mode="process"`` (default) forks one worker process per
shard — under CPython's GIL this is the only way decode+parse actually runs
in parallel; ``mode="thread"`` runs workers as daemon threads in-process,
which keeps tests fast and would parallelize on free-threaded builds.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.annotations import guarded_by
from ..analysis.sanitizer import make_lock
from ..client.protocol import decode_chunk
from ..obs.metrics import Metrics, resolve_metrics
from ..rawjson.chunks import JsonChunk
from ..storage.jsonstore import JsonSideStore, SidelineView
from ..storage.schema import Schema
from .loader import ClientAssistedLoader, LoadReport, LoadSummary

#: Bounded per-shard queue depth: backpressure instead of unbounded RAM.
DEFAULT_QUEUE_DEPTH = 64

#: Chunks a worker ingests between part seals when streaming is on.
DEFAULT_SEAL_INTERVAL = 8

#: How long a worker blocks on its queue before treating itself as idle
#: (idle workers seal + publish so snapshots converge to "everything
#: submitted" as soon as the submitter pauses).
_IDLE_POLL_SECONDS = 0.05

#: Extra chunks a worker pulls in one shared-deque visit (work stealing).
_GRAB_BATCH = 4

#: How long finalize() keeps waiting on silent surviving workers after a
#: sibling died under work-stealing dispatch.  A killed process can take
#: the shared queue's reader lock with it, leaving survivors polling an
#: unreadable queue forever — after this grace they are abandoned (the
#: load already failed) instead of hanging finalize.
_ABANDON_GRACE_SECONDS = 5.0


class IngestPipelineError(RuntimeError):
    """One or more shard workers failed during a parallel load."""


@dataclass
class LoadSnapshot:
    """A consistent loaded-so-far view of an in-flight sharded load.

    Attributes:
        version: Monotonic change counter — equal versions mean an
            identical view, so readers can cache derived state.
        parquet_paths: Sealed (immutable, footer-written) Parquet-lite
            parts, shard-major order.
        sideline_views: Per-shard prefix views of the shard sideline
            files, bounded at each shard's published watermark.
        summary: Merged accounting for exactly the covered chunks, with
            reports in submission order — what serial ingest of those
            chunks would report (modulo wall time).
        submitted: Chunks submitted to the pipeline when the snapshot was
            taken; ``submitted - summary.chunks`` are still in flight.
    """

    version: int
    parquet_paths: List[Path] = field(default_factory=list)
    sideline_views: List[SidelineView] = field(default_factory=list)
    summary: LoadSummary = field(default_factory=LoadSummary)
    submitted: int = 0

    @property
    def chunks(self) -> int:
        """Number of chunks covered by this snapshot."""
        return self.summary.chunks

    @property
    def complete(self) -> bool:
        """True when every submitted chunk is covered."""
        return self.summary.chunks == self.submitted


def _run_shard(shard_id: int,
               in_queue,
               out_queue,
               parquet_path: str,
               sideline_path: str,
               partial_loading: bool,
               schema: Optional[Schema],
               required_ids: Optional[frozenset],
               seal_interval: Optional[int]) -> None:
    """Shard worker loop: decode + parse + write until the sentinel.

    Module-level so process mode can spawn it.  On failure the worker keeps
    draining its queue (a bounded queue with a dead consumer would deadlock
    the submitter) and reports the error at shutdown.

    With *seal_interval* set the worker periodically seals its current
    Parquet part and publishes a ``("progress", shard_id, new_paths,
    sideline_watermark, new_reports)`` message carrying only what was
    sealed/ingested *since its last publication* (the sideline watermark
    is absolute but O(1)).  Deltas keep streaming IPC linear in load
    size; the merge can simply append because the out-queue preserves
    each producer's message order.  The terminal ``"done"`` message
    carries the full final state and supersedes all progress.
    """
    error: Optional[str] = None
    reports: List[Tuple[int, LoadReport]] = []
    unpublished = 0
    published_paths = 0
    published_reports = 0
    loader: Optional[ClientAssistedLoader] = None
    side: Optional[JsonSideStore] = None

    def fail(what: str) -> str:
        """Record the first error and announce it eagerly.

        The non-terminal ``"failing"`` message lets snapshot()/quiesce()
        surface the real cause immediately instead of timing out while
        the worker keeps draining its queue until the stop sentinel.
        """
        message = f"shard {shard_id} {what}:\n{traceback.format_exc()}"
        out_queue.put(("failing", shard_id, message))
        return message

    try:
        side = JsonSideStore(sideline_path)
        loader = ClientAssistedLoader(
            parquet_path,
            side,
            partial_loading=partial_loading,
            schema=schema,
            required_predicate_ids=required_ids,
        )
    except Exception:  # ciaolint: allow[API006] -- shard isolation: any init failure becomes a reported per-shard error
        error = fail("failed to initialize")

    def publish() -> None:
        """Seal the open part and post what's new since the last publish."""
        nonlocal unpublished, published_paths, published_reports
        loader.seal_part()
        # sealed_paths only ever grows at the tail (parts are opened and
        # sealed in order), so a slice is the delta.
        sealed = loader.sealed_paths
        out_queue.put((
            "progress",
            shard_id,
            [str(p) for p in sealed[published_paths:]],
            side.record_count,
            list(reports[published_reports:]),
        ))
        published_paths = len(sealed)
        published_reports = len(reports)
        unpublished = 0

    def process(item) -> None:
        nonlocal error, unpublished
        if error is not None:
            return
        seq, payload = item
        try:
            if isinstance(payload, (bytes, bytearray)):
                chunk = decode_chunk(payload)
            else:
                chunk = payload
            reports.append((seq, loader.ingest(chunk)))
            unpublished += 1
            if seal_interval is not None and unpublished >= seal_interval:
                publish()
        except Exception:  # ciaolint: allow[API006] -- shard isolation: a poison chunk must not kill the drain loop
            error = fail(f"failed on chunk #{seq}")

    # The drain loop must run no matter what happened above: a bounded
    # queue with a dead consumer would block submit() forever.
    stop = False
    while not stop:
        try:
            item = in_queue.get(timeout=_IDLE_POLL_SECONDS)
        except queue.Empty:
            # Idle: everything handed to us so far becomes visible to
            # readers, so a paused submitter sees a complete snapshot.
            if seal_interval is not None and error is None and unpublished:
                publish()
            continue
        if item is None:
            break
        process(item)
        # Work stealing hands every worker the same shared deque; grab a
        # small batch per visit to amortize queue synchronization.  A
        # sentinel found mid-batch goes back — each worker must consume
        # exactly one so its peers also stop.
        grabbed = []
        try:
            while len(grabbed) < _GRAB_BATCH - 1:
                extra = in_queue.get_nowait()
                if extra is None:
                    in_queue.put(None)
                    stop = True
                    break
                grabbed.append(extra)
        except queue.Empty:
            pass
        for extra in grabbed:
            process(extra)
    paths: List[str] = []
    try:
        if loader is not None:
            loader.finalize()
            paths = [str(p) for p in loader.parquet_paths]
    except Exception:  # ciaolint: allow[API006] -- shard isolation: finalize failure is reported via the out queue
        if error is None:
            error = fail("failed to finalize")
    if error is not None:
        out_queue.put(("error", shard_id, error))
    else:
        out_queue.put((
            "done", shard_id, paths, list(reports),
            side.record_count if side is not None else 0,
        ))


class ShardedIngestPipeline:
    """Fan encoded chunks across shard loaders; merge outputs at finalize.

    Args:
        parquet_path: Base table path; shard *K* writes
            ``<stem>.shardK<suffix>`` parts next to it.
        side_store: The table's sideline store.  Shards write shard-local
            sidelines during the load; :meth:`finalize` folds them in here.
        n_shards: Worker count (1 is legal and equivalent to one loader
            behind a queue).
        partial_loading / schema / required_predicate_ids: Forwarded to
            every shard's :class:`ClientAssistedLoader`.
        mode: ``"process"`` (parallel under the GIL) or ``"thread"``.
        dispatch: ``"work-stealing"`` (shared deque, default) or
            ``"round-robin"`` (chunk *k* → shard ``k % n_shards``,
            deterministic shard files).
        seal_interval: Chunks between streaming part seals; ``None``
            disables mid-load snapshots.
        queue_depth: Per-shard bound of the input queue(s) (backpressure);
            the shared work-stealing deque is bounded at
            ``queue_depth * n_shards``.
    """

    def __init__(self, parquet_path: str | Path,
                 side_store: JsonSideStore,
                 n_shards: int,
                 partial_loading: bool,
                 schema: Optional[Schema] = None,
                 required_predicate_ids: Optional[Sequence[int]] = None,
                 mode: str = "process",
                 dispatch: str = "work-stealing",
                 seal_interval: Optional[int] = DEFAULT_SEAL_INTERVAL,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 metrics: Optional[Metrics] = None):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if mode not in ("process", "thread"):
            raise ValueError(
                f"mode must be 'process' or 'thread', got {mode!r}"
            )
        if dispatch not in ("work-stealing", "round-robin"):
            raise ValueError(
                f"dispatch must be 'work-stealing' or 'round-robin', "
                f"got {dispatch!r}"
            )
        if seal_interval is not None and seal_interval < 1:
            raise ValueError(
                f"seal_interval must be >= 1 or None, got {seal_interval}"
            )
        self.parquet_path = Path(parquet_path)
        self.side_store = side_store
        self.n_shards = n_shards
        self.mode = mode
        self.dispatch = dispatch
        self.seal_interval = seal_interval
        self.summary = LoadSummary()
        self._seq = 0
        self._submitted_by_source: Dict[str, int] = {}
        self._finalized = False
        # guarded-by: _lock
        self._shard_parquet_paths: List[List[Path]] = [[] for _ in
                                                       range(n_shards)]
        self._parquet_paths: List[Path] = []
        self._errors: List[str] = []  # guarded-by: _lock
        # Streaming snapshot state, guarded by _lock: the latest published
        # per-shard (sealed paths, sideline watermark, reports) plus a
        # version bumped on every observed change.
        self._lock = make_lock("ShardedIngestPipeline._lock")
        # guarded-by: _lock
        self._progress: Dict[int, Tuple[List[Path], int,
                                        List[Tuple[int, LoadReport]]]] = {}
        # guarded-by: _lock
        self._final_reports: Dict[int, List[Tuple[int, LoadReport]]] = {}
        self._terminal: set = set()  # guarded-by: _lock
        self._version = 0  # guarded-by: _lock
        # guarded-by: _lock
        self._snapshot_cache: Optional[LoadSnapshot] = None
        # Parent-side instrumentation only: worker processes cannot share
        # a registry, so seals/ingests are counted as their publications
        # arrive.  Per-shard counted totals avoid double counting when a
        # terminal message supersedes earlier progress deltas.
        metrics = resolve_metrics(metrics)
        self._m_submitted = metrics.counter("pipeline.chunks_submitted")
        self._m_ingested = metrics.counter("pipeline.chunks_ingested")
        self._m_sealed = metrics.counter("pipeline.parts_sealed")
        self._m_snapshots = metrics.counter("pipeline.snapshots")
        self._m_finalize = metrics.histogram("pipeline.finalize_seconds")
        self._counted_paths: Dict[int, int] = {}  # guarded-by: _lock
        self._counted_reports: Dict[int, int] = {}  # guarded-by: _lock

        required = (
            frozenset(required_predicate_ids)
            if required_predicate_ids is not None else None
        )
        side_path = side_store.path
        self._sideline_paths = [
            side_path.parent / f"{side_path.stem}.shard{i}{side_path.suffix}"
            for i in range(n_shards)
        ]
        shard_parquet = [
            self.parquet_path.parent
            / f"{self.parquet_path.stem}.shard{i}{self.parquet_path.suffix}"
            for i in range(n_shards)
        ]
        if mode == "process":
            ctx = multiprocessing.get_context("fork")
            make_queue = ctx.Queue
            make_worker = ctx.Process
        else:
            ctx = None
            make_queue = queue.Queue
            make_worker = threading.Thread
        self._out_queue = make_queue()
        if dispatch == "round-robin":
            self._in_queues = [make_queue(maxsize=queue_depth)
                               for _ in range(n_shards)]
        else:
            shared = make_queue(maxsize=queue_depth * n_shards)
            self._in_queues = [shared] * n_shards
        self._workers = [
            make_worker(
                target=_run_shard,
                args=(i, self._in_queues[i], self._out_queue,
                      str(shard_parquet[i]), str(self._sideline_paths[i]),
                      partial_loading, schema, required, seal_interval),
                daemon=True,
            )
            for i in range(n_shards)
        ]
        for worker in self._workers:
            worker.start()
        if mode == "process":
            # A pipeline abandoned before finalize (caller crashed) must
            # not wedge interpreter exit: atexit joins each queue's feeder
            # thread AFTER daemon workers are terminated, so a feeder
            # still holding more buffered chunks than the pipe fits would
            # block forever with nobody reading.  Cancel the join on the
            # parent's input-queue copies only (post-fork, so workers
            # still flush their own re-queued sentinels normally);
            # finalize() never needs exit-time flushing — it waits for
            # every worker's terminal message while they are alive.
            seen = set()
            for in_queue in self._in_queues:
                if id(in_queue) not in seen:
                    seen.add(id(in_queue))
                    in_queue.cancel_join_thread()

    # ------------------------------------------------------------------
    def submit(self, payload: Union[JsonChunk, bytes, bytearray, memoryview],
               source: Optional[str] = None) -> int:
        """Enqueue one chunk (encoded or decoded); returns its sequence no.

        Encoded payloads are decoded *inside* the worker, keeping the
        submitting thread off the critical path.  Blocks when the target
        queue is full (backpressure).  *source* tags the chunk's origin
        (e.g. a fleet client id) for the per-source accounting exposed by
        :attr:`submitted_by_source`; like ``submit`` itself it assumes one
        submitting thread.
        """
        if self._finalized:
            raise RuntimeError("pipeline already finalized")
        if isinstance(payload, memoryview):
            payload = bytes(payload)  # queues need an owned buffer
        seq = self._seq
        self._seq += 1
        if source is not None:
            self._submitted_by_source[source] = (
                self._submitted_by_source.get(source, 0) + 1
            )
        self._in_queues[seq % self.n_shards].put((seq, payload))
        self._m_submitted.inc()
        return seq

    @property
    def submitted_by_source(self) -> Dict[str, int]:
        """Chunks submitted per source tag (multi-source ingest sessions)."""
        return dict(self._submitted_by_source)

    def drain_channel(self, channel) -> int:
        """Submit every chunk frame of a channel; returns how many.

        Batched messages (see :meth:`repro.simulate.network.Channel.
        send_batch`) are split back into individual chunk frames, each
        submitted — and therefore accounted — separately.
        """
        count = 0
        for payload in channel.drain_chunks():
            self.submit(payload)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Streaming snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> LoadSnapshot:
        """The current consistent loaded-so-far view (lock-protected).

        Merges any worker publications that arrived since the last call
        and returns the covered state: sealed Parquet parts, per-shard
        sideline views bounded at their watermarks, and a summary whose
        reports are in submission order.  Chunks still in flight (or
        sealed but not yet published) are simply absent — they appear in
        a later snapshot.  Requires ``seal_interval`` (streaming) to be
        enabled.  Raises :class:`IngestPipelineError` as soon as any
        shard has reported a failure — a failed load has no trustworthy
        loaded-so-far view.  The returned snapshot is cached until the
        next publication arrives; treat it as read-only.
        """
        if self.seal_interval is None:
            raise RuntimeError(
                "streaming snapshots are disabled (seal_interval=None)"
            )
        self._m_snapshots.inc()
        with self._lock:
            self._pump_messages()
            if self._errors:
                raise IngestPipelineError("\n".join(self._errors))
            cached = self._snapshot_cache
            if (cached is not None and cached.version == self._version
                    and cached.submitted == self._seq):
                return cached
            paths = [
                path
                for shard_id in sorted(self._progress)
                for path in self._progress[shard_id][0]
            ]
            views = [
                SidelineView(self._sideline_paths[shard_id], watermark)
                for shard_id in sorted(self._progress)
                for watermark in (self._progress[shard_id][1],)
                if watermark > 0
            ]
            ordered: List[Tuple[int, LoadReport]] = []
            for shard_id in sorted(self._progress):
                ordered.extend(self._progress[shard_id][2])
            ordered.sort(key=lambda pair: pair[0])
            summary = LoadSummary()
            for _, report in ordered:
                summary.add(report)
            self._snapshot_cache = LoadSnapshot(
                version=self._version,
                parquet_paths=paths,
                sideline_views=views,
                summary=summary,
                submitted=self._seq,
            )
            return self._snapshot_cache

    def quiesce(self, timeout: float = 30.0) -> LoadSnapshot:
        """Block until every submitted chunk is covered by a snapshot.

        Workers seal + publish when their queue goes idle, so once the
        submitter pauses the snapshot converges to the full submitted
        stream within a few idle polls.  Raises :class:`TimeoutError`
        after *timeout* seconds — e.g. when a shard died mid-load
        (:meth:`finalize` surfaces the underlying error).
        """
        deadline = time.monotonic() + timeout
        while True:
            snap = self.snapshot()
            if snap.complete:
                return snap
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"pipeline did not quiesce within {timeout}s: "
                    f"{snap.chunks}/{snap.submitted} chunks covered"
                )
            time.sleep(_IDLE_POLL_SECONDS / 2)

    @guarded_by("_lock")
    def _pump_messages(self, block_seconds: Optional[float] = None) -> bool:
        """Drain pending out-queue messages into state; caller holds _lock.

        Returns True if at least one message was handled.  With
        *block_seconds* the first get blocks that long (used by
        :meth:`finalize` while waiting on workers).
        """
        handled = False
        block = block_seconds
        while True:
            try:
                if block:
                    message = self._out_queue.get(timeout=block)
                    block = None
                else:
                    message = self._out_queue.get_nowait()
            except queue.Empty:
                return handled
            handled = True
            kind = message[0]
            if kind == "progress":
                _, shard_id, paths, watermark, reports = message
                prev = self._progress.get(shard_id, ([], 0, []))
                self._progress[shard_id] = (
                    prev[0] + [Path(p) for p in paths],
                    watermark,
                    prev[2] + list(reports),
                )
                self._version += 1
                self._m_sealed.inc(len(paths))
                self._m_ingested.inc(len(reports))
                self._counted_paths[shard_id] = (
                    self._counted_paths.get(shard_id, 0) + len(paths)
                )
                self._counted_reports[shard_id] = (
                    self._counted_reports.get(shard_id, 0) + len(reports)
                )
            elif kind == "failing":
                # Eager (non-terminal) announcement of a shard error; the
                # worker repeats the same text in its terminal message.
                if message[2] not in self._errors:
                    self._errors.append(message[2])
            elif kind == "error":
                if message[2] not in self._errors:
                    self._errors.append(message[2])
                self._terminal.add(message[1])
            else:
                _, shard_id, paths, reports, watermark = message
                self._shard_parquet_paths[shard_id] = [
                    Path(p) for p in paths
                ]
                # The final state supersedes any progress publication.
                self._progress[shard_id] = (
                    [Path(p) for p in paths], watermark, list(reports)
                )
                self._final_reports[shard_id] = list(reports)
                self._version += 1
                self._terminal.add(shard_id)
                self._m_sealed.inc(max(
                    0, len(paths) - self._counted_paths.get(shard_id, 0)
                ))
                self._m_ingested.inc(max(
                    0, len(reports) - self._counted_reports.get(shard_id, 0)
                ))
                self._counted_paths[shard_id] = len(paths)
                self._counted_reports[shard_id] = len(reports)

    # ------------------------------------------------------------------
    def finalize(self) -> LoadSummary:
        """Stop workers, merge shard outputs, and return the summary.

        Idempotent.  Raises :class:`IngestPipelineError` if any shard
        failed; shards that succeeded are still merged first so partial
        output remains inspectable.
        """
        if self._finalized:
            if self._errors:
                raise IngestPipelineError("\n".join(self._errors))
            return self.summary
        self._finalized = True
        finalize_start = time.perf_counter()
        if self.dispatch == "round-robin":
            for in_queue in self._in_queues:
                in_queue.put(None)
        else:
            for _ in range(self.n_shards):
                self._in_queues[0].put(None)
        # Collect one terminal result per shard, but never hang on a
        # worker that died without posting (e.g. an OOM-killed process):
        # poll with a timeout, and when a pending worker is no longer
        # alive give its in-flight message one grace period before
        # declaring it lost.  Under work-stealing dispatch a killed
        # worker may additionally have poisoned the shared queue (died
        # holding its reader lock), leaving alive siblings unable to ever
        # see their stop sentinel — once a death is recorded, survivors
        # that stay silent past a grace period are abandoned too rather
        # than waited on forever.
        abandon_at: Optional[float] = None
        while True:
            with self._lock:
                pending = set(range(self.n_shards)) - self._terminal
                if not pending:
                    break
                if self._pump_messages(block_seconds=0.5):
                    continue
                dead = [i for i in sorted(pending)
                        if not self._workers[i].is_alive()]
                if dead and self._pump_messages(block_seconds=0.5):
                    continue  # a straggler message made it; keep collecting
                for shard_id in dead:
                    self._errors.append(
                        f"shard {shard_id} terminated without reporting "
                        f"a result"
                    )
                    self._terminal.add(shard_id)
                if (dead and abandon_at is None
                        and self.dispatch == "work-stealing"):
                    abandon_at = time.monotonic() + _ABANDON_GRACE_SECONDS
                if abandon_at is not None and \
                        time.monotonic() >= abandon_at:
                    stuck = sorted(
                        set(range(self.n_shards)) - self._terminal
                    )
                    for shard_id in stuck:
                        self._errors.append(
                            f"shard {shard_id} abandoned: a sibling "
                            f"worker died and may have poisoned the "
                            f"shared work queue"
                        )
                        self._terminal.add(shard_id)
                        worker = self._workers[shard_id]
                        if hasattr(worker, "terminate"):
                            worker.terminate()
        for worker in self._workers:
            worker.join(timeout=5.0)
        # Merge: parquet parts in shard order, reports in submission order,
        # shard sidelines folded into the table's store (then removed).
        self._parquet_paths = [
            path for paths in self._shard_parquet_paths for path in paths
        ]
        ordered_reports: List[Tuple[int, LoadReport]] = []
        for reports in self._final_reports.values():
            ordered_reports.extend(reports)
        ordered_reports.sort(key=lambda pair: pair[0])
        for _, report in ordered_reports:
            self.summary.add(report)
        for sideline_path in self._sideline_paths:
            if sideline_path.exists():
                shard_side = JsonSideStore(sideline_path)
                self.side_store.append_pairs(shard_side.iter_raw())
                sideline_path.unlink()
        self._m_finalize.observe(time.perf_counter() - finalize_start)
        if self._errors:
            raise IngestPipelineError("\n".join(self._errors))
        return self.summary

    @property
    def parquet_paths(self) -> List[Path]:
        """All shard Parquet-lite parts, shard-major order (post-finalize)."""
        return list(self._parquet_paths)
