"""DeploymentConfig: one validation path for every deployment knob."""

import pytest

from repro.api import Budget, ClientPopulation, DeploymentConfig, \
    FleetClientSpec
from repro.server import ServerConfig, validate_server_options


class TestValidation:
    def test_default_is_valid_serial(self):
        config = DeploymentConfig()
        assert config.mode == "serial"
        assert config.resolved_n_shards == 1
        assert not config.streaming_queries

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            DeploymentConfig(mode="clustered")

    def test_server_options_same_error_as_server_layer(self):
        """The facade reuses the server's validation — messages match."""
        with pytest.raises(ValueError) as via_config:
            DeploymentConfig(shard_mode="fiber")
        with pytest.raises(ValueError) as via_server:
            validate_server_options(shard_mode="fiber")
        assert str(via_config.value) == str(via_server.value)

    def test_bad_dispatch(self):
        with pytest.raises(ValueError, match="dispatch must be one of"):
            DeploymentConfig(dispatch="lottery")

    def test_bad_partial_loading(self):
        with pytest.raises(ValueError, match="partial_loading"):
            DeploymentConfig(partial_loading="sometimes")

    def test_serial_rejects_shards(self):
        with pytest.raises(ValueError, match="serial mode"):
            DeploymentConfig(mode="serial", n_shards=4)

    def test_sharded_needs_two_shards(self):
        with pytest.raises(ValueError, match="n_shards >= 2"):
            DeploymentConfig(mode="sharded", n_shards=1)

    def test_sharded_default_shards(self):
        config = DeploymentConfig(mode="sharded")
        assert config.resolved_n_shards >= 2
        assert config.streaming_queries

    def test_fleet_knobs_rejected_outside_fleet_mode(self):
        with pytest.raises(ValueError, match="aggregate_budget"):
            DeploymentConfig(aggregate_budget=Budget(1.0))
        with pytest.raises(ValueError, match="realloc_interval"):
            DeploymentConfig(mode="sharded", realloc_interval=4)
        population = ClientPopulation([
            FleetClientSpec("c0", platform="local", speed_factor=1.0,
                            share=1.0),
        ])
        with pytest.raises(ValueError, match="population"):
            DeploymentConfig(population=population)

    def test_chunk_and_batch_bounds(self):
        with pytest.raises(ValueError, match="chunk_size"):
            DeploymentConfig(chunk_size=0)
        with pytest.raises(ValueError, match="ship_batch"):
            DeploymentConfig(ship_batch=0)

    def test_fleet_needs_clients(self):
        with pytest.raises(ValueError, match="at least one client"):
            DeploymentConfig(mode="fleet", n_clients=0)


class TestServerConfigBridge:
    def test_server_config_mapping(self, tmp_path):
        config = DeploymentConfig(
            mode="sharded", n_shards=3, shard_mode="thread",
            dispatch="round-robin", seal_interval=4,
            table_name="events", partial_loading="on",
        )
        server_config = config.server_config(tmp_path)
        assert isinstance(server_config, ServerConfig)
        assert server_config.n_shards == 3
        assert server_config.shard_mode == "thread"
        assert server_config.dispatch == "round-robin"
        assert server_config.seal_interval == 4
        assert server_config.table_name == "events"
        assert server_config.partial_loading == "on"

    def test_with_mode(self):
        base = DeploymentConfig(chunk_size=123)
        fleet = base.with_mode("fleet", aggregate_budget=Budget(2.0))
        assert fleet.mode == "fleet"
        assert fleet.chunk_size == 123
        assert base.mode == "serial"  # frozen original untouched

    def test_serverconfig_validates_at_construction(self, tmp_path):
        """Satellite: ServerConfig cannot drift from the server's rules."""
        with pytest.raises(ValueError, match="shard_mode"):
            ServerConfig(data_dir=tmp_path, shard_mode="fiber")
        with pytest.raises(ValueError, match="dispatch"):
            ServerConfig(data_dir=tmp_path, dispatch="lottery")
        with pytest.raises(ValueError, match="partial_loading"):
            ServerConfig(data_dir=tmp_path, partial_loading="maybe")
        with pytest.raises(ValueError, match="n_shards"):
            ServerConfig(data_dir=tmp_path, n_shards=0)
