"""Unit tests for the Parquet-lite file format."""

import pytest

from repro.bitvec import BitVector
from repro.storage import (
    ColumnType,
    Field,
    ParquetLiteError,
    ParquetLiteReader,
    ParquetLiteWriter,
    Schema,
    infer_schema,
    write_records,
)

RECORDS = [
    {"name": f"user{i}", "score": i, "active": i % 2 == 0,
     "ratio": i / 4, "tags": [i, i + 1]}
    for i in range(25)
]


@pytest.fixture()
def path(tmp_path):
    return tmp_path / "table.pql"


class TestRoundtrip:
    def test_write_read_all(self, path):
        write_records(path, RECORDS, row_group_size=10)
        with ParquetLiteReader(path) as reader:
            rows = reader.read_all()
        assert len(rows) == 25
        assert rows[3]["name"] == "user3"
        assert rows[3]["score"] == 3
        assert rows[3]["active"] is False
        assert rows[3]["ratio"] == 0.75
        assert rows[3]["tags"] == "[3,4]"  # JSON column re-serialized

    def test_row_group_partitioning(self, path):
        write_records(path, RECORDS, row_group_size=10)
        with ParquetLiteReader(path) as reader:
            assert len(reader) == 3
            assert [g.row_count for g in reader.row_groups()] == [10, 10, 5]
            assert reader.total_rows == 25

    def test_projection(self, path):
        write_records(path, RECORDS, row_group_size=10)
        with ParquetLiteReader(path) as reader:
            rows = list(reader.iter_rows(columns=["score"]))
        assert rows[0] == {"score": 0}

    def test_index_materialization(self, path):
        write_records(path, RECORDS, row_group_size=25)
        with ParquetLiteReader(path) as reader:
            rows = reader.row_group(0).rows(indices=[1, 7])
        assert [r["score"] for r in rows] == [1, 7]

    def test_missing_keys_become_nulls(self, path):
        records = [{"a": 1, "b": "x"}, {"a": 2}]
        write_records(path, records)
        with ParquetLiteReader(path) as reader:
            rows = reader.read_all()
        assert rows[1]["b"] is None


class TestBitvectorMetadata:
    def test_roundtrip(self, path):
        schema = infer_schema(RECORDS)
        bv = BitVector.from_bits([i % 3 == 0 for i in range(25)])
        with ParquetLiteWriter(path, schema) as writer:
            writer.write_row_group(RECORDS, bitvectors={4: bv},
                                   source_chunk_id=11)
        with ParquetLiteReader(path) as reader:
            assert reader.bitvector(0, 4) == bv
            assert reader.bitvector(0, 5) is None
            assert reader.meta.row_groups[0].source_chunk_id == 11
            assert reader.meta.predicate_ids == [4]

    def test_length_validated(self, path):
        schema = infer_schema(RECORDS)
        with ParquetLiteWriter(path, schema) as writer:
            with pytest.raises(ValueError):
                writer.write_row_group(RECORDS,
                                       bitvectors={0: BitVector(3)})
            writer.write_row_group(RECORDS)


class TestColumnStats:
    def test_min_max_in_footer(self, path):
        write_records(path, RECORDS, row_group_size=25)
        with ParquetLiteReader(path) as reader:
            meta = reader.meta.row_groups[0].columns["score"]
        assert meta.stats.min_value == 0
        assert meta.stats.max_value == 24
        assert meta.stats.null_count == 0


class TestErrors:
    def test_corrupt_magic_rejected(self, path):
        write_records(path, RECORDS)
        data = bytearray(path.read_bytes())
        data[:4] = b"XXXX"
        path.write_bytes(bytes(data))
        with pytest.raises(ParquetLiteError):
            ParquetLiteReader(path)

    def test_truncated_file_rejected(self, path):
        write_records(path, RECORDS)
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(ParquetLiteError):
            ParquetLiteReader(path)

    def test_writer_rejects_use_after_close(self, path):
        schema = Schema([Field("a", ColumnType.INT64)])
        writer = ParquetLiteWriter(path, schema)
        writer.write_row_group([{"a": 1}])
        writer.close()
        with pytest.raises(ParquetLiteError):
            writer.write_row_group([{"a": 2}])

    def test_empty_row_group_rejected(self, path):
        schema = Schema([Field("a", ColumnType.INT64)])
        with ParquetLiteWriter(path, schema) as writer:
            with pytest.raises(ValueError):
                writer.write_row_group([])
            writer.write_row_group([{"a": 1}])

    def test_write_records_validation(self, path):
        with pytest.raises(ValueError):
            write_records(path, [])
        with pytest.raises(ValueError):
            write_records(path, RECORDS, row_group_size=0)

    def test_aborted_writer_leaves_no_footer(self, path):
        schema = Schema([Field("a", ColumnType.INT64)])
        try:
            with ParquetLiteWriter(path, schema) as writer:
                writer.write_row_group([{"a": 1}])
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        with pytest.raises(ParquetLiteError):
            ParquetLiteReader(path)


class TestConcurrentReads:
    """Regression: one cached reader serves many querying threads.

    The catalog shares one ParquetLiteReader (one file handle) across
    every concurrent query; page reads racing on the handle's seek
    position used to hand raw neighbouring bytes to read_page, which
    surfaced as "unknown encoding tag" under concurrent remote serving.
    """

    def test_threads_share_one_reader(self, path):
        records = [
            {"name": f"user{i}", "score": i, "active": i % 2 == 0,
             "ratio": i / 4}
            for i in range(2000)
        ]
        write_records(path, records, row_group_size=50)
        reader = ParquetLiteReader(path)
        expected_scores = list(range(2000))
        errors = []

        def scan(column, expect):
            try:
                for _ in range(5):
                    got = []
                    for group in reader.row_groups():
                        got.extend(group.column(column))
                        group.clear_cache()  # force page re-reads
                    if got != expect:
                        errors.append(f"{column}: corrupted scan")
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(f"{column}: {exc!r}")

        import threading
        names = ["user%d" % i for i in range(2000)]
        threads = [
            threading.Thread(target=scan, args=("score", expected_scores)),
            threading.Thread(target=scan, args=("name", names)),
            threading.Thread(target=scan, args=("score", expected_scores)),
            threading.Thread(target=scan, args=("name", names)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        reader.close()
        assert not errors, errors
