"""Meta-test: the committed tree passes its own linter, end to end."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=REPO, env=env, capture_output=True, text=True, timeout=120,
    )


def test_src_is_clean():
    proc = run_cli("src")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_src_json_is_clean_and_well_formed():
    proc = run_cli("src", "--format", "json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    doc = json.loads(proc.stdout)
    assert doc["clean"] is True
    assert doc["findings"] == []
    assert set(doc["checkers"]) == {
        "api-hygiene", "determinism", "lock-discipline",
        "observability", "protocol-bounds", "retry-bounds",
        "yield-under-lock",
    }


def test_committed_baseline_is_empty():
    doc = json.loads((REPO / ".ciaolint-baseline.json").read_text())
    assert doc["entries"] == []


def test_seeded_violation_exits_nonzero():
    proc = run_cli(str(FIXTURES / "det_bad.py"), "--no-baseline")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "DET001" in proc.stdout and "DET002" in proc.stdout
