"""Executor tests against a brute-force oracle."""

import random

import pytest

from repro.engine import Catalog, Executor, TableEntry, parse_sql
from repro.storage import ParquetLiteWriter, infer_schema


def oracle_filter(rows, where):
    return [r for r in rows if where is None or where.evaluate(r)]


@pytest.fixture(scope="module")
def rows():
    rng = random.Random(42)
    return [
        {
            "name": rng.choice(["Ann", "Bob", "Cat", "Dan"]),
            "age": rng.randrange(5),
            "score": rng.random() * 10,
            "city": rng.choice(["x", "y", None]),
            "note": rng.choice(["has kw inside", "plain", "kw", ""]),
        }
        for _ in range(200)
    ]


@pytest.fixture(scope="module")
def executor(rows, tmp_path_factory):
    path = tmp_path_factory.mktemp("exec") / "t.pql"
    with ParquetLiteWriter(path, infer_schema(rows)) as writer:
        for start in range(0, len(rows), 50):
            writer.write_row_group(rows[start:start + 50])
    catalog = Catalog()
    catalog.register(TableEntry(name="t", parquet_paths=[path]))
    return Executor(catalog)


QUERIES = [
    "SELECT COUNT(*) FROM t",
    "SELECT COUNT(*) FROM t WHERE name = 'Bob'",
    "SELECT COUNT(*) FROM t WHERE name = 'Bob' AND age = 2",
    "SELECT COUNT(*) FROM t WHERE name IN ('Ann', 'Cat') AND age = 1",
    "SELECT COUNT(*) FROM t WHERE note LIKE '%kw%'",
    "SELECT COUNT(*) FROM t WHERE note LIKE 'has%'",
    "SELECT COUNT(*) FROM t WHERE note LIKE '%kw'",
    "SELECT COUNT(*) FROM t WHERE city != NULL",
    "SELECT COUNT(*) FROM t WHERE city IS NULL",
    "SELECT COUNT(*) FROM t WHERE age > 2",
    "SELECT COUNT(*) FROM t WHERE age >= 2 AND age < 4",
    "SELECT COUNT(*) FROM t WHERE NOT name = 'Bob'",
    "SELECT COUNT(*) FROM t WHERE name = 'Bob' OR name = 'Cat'",
    "SELECT COUNT(*) FROM t WHERE (name = 'Bob' OR age = 0) AND city = 'x'",
]


@pytest.mark.parametrize("sql", QUERIES)
def test_counts_match_oracle(executor, rows, sql):
    parsed = parse_sql(sql)
    expected = len(oracle_filter(rows, parsed.where))
    assert executor.execute(sql).scalar() == expected


def test_projection_rows(executor, rows):
    result = executor.execute("SELECT name, age FROM t LIMIT 7")
    assert len(result.rows) == 7
    assert set(result.rows[0]) == {"name", "age"}
    assert result.rows[0]["name"] == rows[0]["name"]


def test_aggregates_match_oracle(executor, rows):
    result = executor.execute(
        "SELECT SUM(age), AVG(score), MIN(age), MAX(age) FROM t"
    )
    row = result.rows[0]
    ages = [r["age"] for r in rows]
    scores = [r["score"] for r in rows]
    assert row["sum(age)"] == sum(ages)
    assert row["avg(score)"] == pytest.approx(sum(scores) / len(scores))
    assert row["min(age)"] == min(ages)
    assert row["max(age)"] == max(ages)


def test_select_star(executor, rows):
    result = executor.execute("SELECT * FROM t WHERE name = 'Bob'")
    assert all(r["name"] == "Bob" for r in result.rows)
    assert set(result.rows[0]) == set(rows[0])


def test_scalar_rejects_multi_row_results(executor):
    result = executor.execute("SELECT name FROM t LIMIT 2")
    with pytest.raises(ValueError):
        result.scalar()


def test_wall_time_recorded(executor):
    result = executor.execute("SELECT COUNT(*) FROM t")
    assert result.wall_seconds > 0
