"""CiaoSession facade behavior: plan, load jobs, query, lifecycle."""

import pytest

from repro.api import (
    Budget,
    CiaoSession,
    CostModel,
    DEFAULT_COEFFICIENTS,
    DeploymentConfig,
    Query,
    Workload,
    clause,
    key_value,
    substring,
)

SEED = 1234
N_RECORDS = 1200


@pytest.fixture()
def yelp_workload():
    five_stars = clause(key_value("stars", 5))
    tasty = clause(substring("text", "tasty000"))
    return Workload(
        (Query((five_stars, tasty), name="rave"),
         Query((tasty,), name="kw")),
        dataset="yelp",
    )


class TestPlan:
    def test_plan_deterministic_under_fixed_seed(self, yelp_workload):
        plans = []
        for _ in range(2):
            with CiaoSession(yelp_workload, source="yelp",
                             seed=SEED) as session:
                plans.append(session.plan(Budget(1.0)))
        a, b = plans
        assert [e.clause for e in a.entries] == \
            [e.clause for e in b.entries]
        assert [e.predicate_id for e in a.entries] == \
            [e.predicate_id for e in b.entries]
        assert [e.cost_us for e in a.entries] == \
            [e.cost_us for e in b.entries]

    def test_plan_requires_workload(self):
        with CiaoSession(source="yelp", seed=SEED) as session:
            with pytest.raises(RuntimeError, match="workload"):
                session.plan(Budget(1.0))

    def test_plan_requires_source_or_overrides(self, yelp_workload):
        with CiaoSession(yelp_workload) as session:
            with pytest.raises(RuntimeError, match="data source"):
                session.plan(Budget(1.0))

    def test_injectable_overrides_skip_source(self, yelp_workload):
        """Selectivities + cost model injection needs no source at all."""
        sels = {c: 0.3 for c in yelp_workload.candidate_pool}
        model = CostModel(DEFAULT_COEFFICIENTS, 150.0)
        with CiaoSession(yelp_workload) as session:
            plan = session.plan(
                Budget(1.0), selectivities=sels, cost_model=model
            )
        assert len(plan) >= 1
        assert session.pushdown_plan is None or True  # session closed ok

    def test_float_budget_coerced(self, yelp_workload):
        with CiaoSession(yelp_workload, source="yelp",
                         seed=SEED) as session:
            plan = session.plan(1.0)
            assert plan.budget == Budget(1.0)


class TestLoadJob:
    def test_result_accounting_invariant(self, yelp_workload):
        """Satellite: received == loaded + sidelined + malformed."""
        with CiaoSession(yelp_workload, source="yelp",
                         seed=SEED) as session:
            session.plan(Budget(1.0))
            report = session.load(n_records=N_RECORDS).result()
        assert report.received == N_RECORDS
        assert report.received == (
            report.loaded + report.sidelined + report.malformed
        )
        assert report.accounting_ok
        assert report.no_record_loss
        assert report.records_offered == N_RECORDS
        assert report.mode == "serial"
        assert report.client_stats is not None
        assert report.bytes_sent > 0

    def test_result_idempotent(self, yelp_workload):
        with CiaoSession(yelp_workload, source="yelp",
                         seed=SEED) as session:
            session.plan(Budget(1.0))
            job = session.load(n_records=N_RECORDS)
            assert job.result() is job.result()

    def test_progress_reaches_done(self, yelp_workload):
        with CiaoSession(yelp_workload, source="yelp",
                         seed=SEED) as session:
            job = session.load(n_records=N_RECORDS)
            job.result()
            progress = job.progress()
            assert progress.done
            assert progress.state == "done"
            assert progress.records_shipped == N_RECORDS

    def test_snapshot_query_rejected_on_serial(self, yelp_workload):
        with CiaoSession(yelp_workload, source="yelp",
                         seed=SEED) as session:
            job = session.load(n_records=N_RECORDS)
            with pytest.raises(RuntimeError, match="snapshot_query"):
                job.snapshot_query("SELECT COUNT(*) FROM t")
            job.result()

    def test_snapshot_query_on_sharded(self, yelp_workload):
        config = DeploymentConfig(
            mode="sharded", n_shards=2, shard_mode="thread",
            chunk_size=100, seal_interval=2,
        )
        with CiaoSession(yelp_workload, source="yelp", seed=SEED,
                         config=config) as session:
            session.plan(Budget(1.0))
            job = session.load(n_records=N_RECORDS)
            mid = job.snapshot_query("SELECT COUNT(*) FROM t").scalar()
            assert 0 <= mid <= N_RECORDS
            report = job.result()
            assert report.mode == "sharded"
            assert report.no_record_loss
            final = session.query("SELECT COUNT(*) FROM t").scalar()
            assert final == N_RECORDS

    def test_snapshot_counts_consistent_while_worker_finalizes(
            self, yelp_workload):
        """Regression: query() serializes against the worker thread's
        finalize — mid-load counts must stay monotone and cover only
        whole chunks, never a half-mutated catalog."""
        config = DeploymentConfig(
            mode="sharded", n_shards=2, shard_mode="thread",
            chunk_size=100, seal_interval=2, ship_batch=1,
        )
        with CiaoSession(yelp_workload, source="yelp", seed=SEED,
                         config=config) as session:
            job = session.load(n_records=3000)
            seen = []
            while not job.done:
                seen.append(
                    job.snapshot_query("SELECT COUNT(*) FROM t").scalar()
                )
            job.result()
            assert all(c % 100 == 0 for c in seen), seen
            assert all(a <= b for a, b in zip(seen, seen[1:])), seen
            final = session.query("SELECT COUNT(*) FROM t").scalar()
            assert final == 3000

    def test_load_failure_surfaces_in_result(self, yelp_workload):
        session = CiaoSession(yelp_workload)
        # None poisons the chunker mid-stream; the background thread
        # must capture the error and re-raise it at result().
        job = session.load(source=["{\"ok\": 1}", None])
        with pytest.raises(Exception):
            job.result()
        assert job.progress().state == "failed"
        session.close()


class TestSessionLifecycle:
    def test_query_before_load(self, yelp_workload):
        with CiaoSession(yelp_workload, source="yelp",
                         seed=SEED) as session:
            with pytest.raises(RuntimeError, match="load"):
                session.query("SELECT COUNT(*) FROM t")

    def test_query_waits_for_inflight_load(self, yelp_workload):
        with CiaoSession(yelp_workload, source="yelp",
                         seed=SEED) as session:
            session.load(n_records=N_RECORDS)
            count = session.query("SELECT COUNT(*) FROM t").scalar()
            assert count == N_RECORDS

    def test_two_concurrent_loads_rejected(self, yelp_workload):
        with CiaoSession(yelp_workload, source="yelp",
                         seed=SEED) as session:
            job = session.load(n_records=N_RECORDS)
            if not job.done:
                with pytest.raises(RuntimeError, match="already running"):
                    session.load(n_records=10)
            job.result()

    def test_sequential_loads_get_fresh_servers(self, yelp_workload):
        with CiaoSession(yelp_workload, source="yelp",
                         seed=SEED) as session:
            first = session.load(n_records=100)
            first.result()
            first_server = first.server
            second = session.load(n_records=200)
            second.result()
            assert second.server is not first_server
            assert session.query("SELECT COUNT(*) FROM t").scalar() == 200

    def test_closed_session_rejects_work(self, yelp_workload):
        session = CiaoSession(yelp_workload, source="yelp", seed=SEED)
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.load(n_records=10)

    def test_close_finalizes_uncollected_jobs(self, yelp_workload):
        """Regression: a done-but-uncollected sharded load must still be
        finalized at close, or its shard workers leak."""
        config = DeploymentConfig(mode="sharded", n_shards=2,
                                  shard_mode="thread", chunk_size=100)
        session = CiaoSession(yelp_workload, source="yelp", seed=SEED,
                              config=config)
        job = session.load(n_records=400)
        job.wait()
        session.close()  # never called job.result()
        assert job.server.state == "finalized"

    def test_serial_load_n_records_bounds_line_sources(self,
                                                       yelp_workload):
        """Regression: n_records applies to non-generator sources too."""
        from repro.data import make_generator

        lines = list(make_generator("yelp", SEED).raw_lines(300))
        with CiaoSession(yelp_workload) as session:
            report = session.load(source=lines, n_records=120).result()
        assert report.received == 120

    def test_tempdir_cleaned_up(self, yelp_workload):
        session = CiaoSession(yelp_workload, source="yelp", seed=SEED)
        data_dir = session.data_dir
        session.load(n_records=100).result()
        assert data_dir.exists()
        session.close()
        assert not data_dir.exists()

    def test_explicit_data_dir_kept(self, tmp_path, yelp_workload):
        with CiaoSession(yelp_workload, source="yelp", seed=SEED,
                         data_dir=tmp_path / "deploy") as session:
            session.load(n_records=100).result()
        assert (tmp_path / "deploy").exists()

    def test_run_workload(self, yelp_workload):
        with CiaoSession(yelp_workload, source="yelp",
                         seed=SEED) as session:
            session.plan(Budget(1.0))
            session.load(n_records=N_RECORDS)
            results = session.run_workload()
            assert len(results) == len(yelp_workload.queries)
            assert all(r.scalar() >= 0 for r in results)


class TestFleetMode:
    def test_fleet_load_accounting(self, yelp_workload):
        config = DeploymentConfig(
            mode="fleet", n_shards=2, shard_mode="thread",
            chunk_size=100, n_clients=3,
            aggregate_budget=Budget(4.0),
        )
        with CiaoSession(yelp_workload, source="yelp", seed=SEED,
                         config=config) as session:
            session.plan(Budget(8.0))
            report = session.load(n_records=N_RECORDS).result()
            assert report.mode == "fleet"
            assert report.fleet is not None
            assert len(report.fleet.clients) == 3
            assert report.no_record_loss
            assert report.received == N_RECORDS
            count = session.query("SELECT COUNT(*) FROM t").scalar()
            assert count == N_RECORDS

    def test_fleet_population_deterministic_from_seed(self, yelp_workload):
        config = DeploymentConfig(mode="fleet", n_shards=2,
                                  shard_mode="thread", chunk_size=200,
                                  n_clients=4)
        ids = []
        for _ in range(2):
            with CiaoSession(yelp_workload, source="yelp", seed=SEED,
                             config=config) as session:
                report = session.load(n_records=400).result()
                ids.append(
                    [(c.client_id, c.platform, c.speed_factor, c.share)
                     for c in report.fleet.clients]
                )
        assert ids[0] == ids[1]
