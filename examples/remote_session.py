"""Remote serving: one server process, N client processes, real sockets.

The paper's deployment story end to end across process boundaries: a
server process plans the pushdown and serves a `CiaoSession` through
`CiaoService`; client processes dial in with `RemoteSession`, fetch the
plan over the wire, evaluate the pushed-down predicates *locally* on
their own records (the client-assisted part), and stream annotated
chunks back.  One client commits the load, then every client — plus a
late-arriving reader — queries the same store concurrently and gets
byte-identical answers.

Run:  python examples/remote_session.py
"""

import multiprocessing as mp

from repro.api import Budget, CiaoSession
from repro.data import make_generator
from repro.service import CiaoService, RemoteSession
from repro.workload import table3_workload

N_CLIENTS = 3
RECORDS_PER_CLIENT = 3_000
SEED = 7

SQL = [
    "SELECT COUNT(*) FROM t",
    "SELECT COUNT(*) FROM t WHERE stars = 5",
]


def server_process(address_queue, done_queue):
    """Plan a session, serve it, and wait for the clients to finish."""
    workload = table3_workload("yelp", "A", seed=SEED, n_queries=10)
    with CiaoSession(workload, source="yelp", seed=SEED) as session:
        session.plan(Budget(20.0))
        with CiaoService(session) as service:
            address_queue.put(service.address)
            # Block until the driver says every client is done.
            done_queue.get()
            count = session.query(SQL[0]).scalar()
            print(f"[server] in-process check: COUNT(*) = {count}")


def client_process(address, client_id, client_seed, result_queue):
    """Ship one partition of records, then read back through the wire."""
    generator = make_generator("yelp", client_seed)
    records = list(generator.raw_lines(RECORDS_PER_CLIENT))
    with RemoteSession(address, client_id=client_id) as remote:
        accepted = remote.load(records, source_id=client_id)
        print(f"[{client_id}] shipped {len(records)} records "
              f"({accepted} chunk frames, plan evaluated client-side)")
        result_queue.put((client_id, accepted))


def reader_process(address, name, result_queue):
    """A pure reader: no ingest, just admission-controlled queries."""
    with RemoteSession(address, client_id=name) as remote:
        answers = [remote.query(sql).scalar() for sql in SQL]
        result_queue.put((name, answers))


def main() -> None:
    ctx = mp.get_context("spawn")
    address_queue = ctx.Queue()
    done_queue = ctx.Queue()
    result_queue = ctx.Queue()

    server = ctx.Process(target=server_process,
                         args=(address_queue, done_queue))
    server.start()
    spawned = [server]
    try:
        address = address_queue.get(timeout=60)
        print(f"[driver] service listening on {address[0]}:{address[1]}")

        # N clients ingest concurrently, each its own process and socket.
        clients = [
            ctx.Process(target=client_process,
                        args=(address, f"client-{i}", SEED + i,
                              result_queue))
            for i in range(N_CLIENTS)
        ]
        spawned += clients
        for proc in clients:
            proc.start()
        for _ in clients:
            result_queue.get(timeout=120)
        for proc in clients:
            proc.join()

        # Any client may commit; here the driver does it from its own
        # connection, sealing every source at once.
        with RemoteSession(address, client_id="driver") as remote:
            report = remote.commit()
            expected = N_CLIENTS * RECORDS_PER_CLIENT
            print(f"[driver] committed: received={report['received']} "
                  f"loaded={report['loaded']} "
                  f"sidelined={report['sidelined']} "
                  f"(expected {expected})")
            assert report["received"] == expected

        # Concurrent readers, each a fresh process + socket.
        readers = [
            ctx.Process(target=reader_process,
                        args=(address, f"reader-{i}", result_queue))
            for i in range(N_CLIENTS)
        ]
        spawned += readers
        for proc in readers:
            proc.start()
        answers = [result_queue.get(timeout=60) for _ in readers]
        for proc in readers:
            proc.join()

        baseline = answers[0][1]
        for name, got in answers:
            print(f"[{name}] answers: {got}")
            assert got == baseline, "remote readers disagreed"
        print("[driver] all remote readers agree; shutting down")

        done_queue.put(True)
        server.join(timeout=60)
    finally:
        for proc in spawned:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=10)


if __name__ == "__main__":
    main()
