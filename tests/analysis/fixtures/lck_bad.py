"""Fixture: LCK001 — a guarded attribute written outside its lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock

    def bump(self):
        self._count += 1  # racy: no lock held
