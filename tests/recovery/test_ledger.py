"""IngestLedger: contiguous admission, dedupe, snapshot round-trips."""

import pytest

from repro.recovery import IngestLedger, LedgerError


class TestAdmission:
    def test_fresh_stream_starts_at_one(self):
        ledger = IngestLedger()
        assert ledger.last("c", "s") == 0
        assert ledger.admit("c", "s", 1) is True

    def test_advance_moves_watermark(self):
        ledger = IngestLedger()
        ledger.advance("c", "s", 1)
        assert ledger.last("c", "s") == 1
        assert ledger.admit("c", "s", 2) is True

    def test_duplicate_is_refused_not_fatal(self):
        ledger = IngestLedger()
        ledger.advance("c", "s", 1)
        ledger.advance("c", "s", 2)
        assert ledger.admit("c", "s", 1) is False
        assert ledger.admit("c", "s", 2) is False
        assert ledger.last("c", "s") == 2

    def test_gap_is_a_protocol_violation(self):
        ledger = IngestLedger()
        with pytest.raises(LedgerError, match="jumped"):
            ledger.admit("c", "s", 3)

    def test_nonpositive_seq_rejected(self):
        ledger = IngestLedger()
        with pytest.raises(LedgerError):
            ledger.admit("c", "s", 0)

    def test_advance_requires_contiguity(self):
        ledger = IngestLedger()
        with pytest.raises(LedgerError, match="watermark"):
            ledger.advance("c", "s", 2)

    def test_streams_are_independent(self):
        ledger = IngestLedger()
        ledger.advance("c1", "s", 1)
        assert ledger.last("c2", "s") == 0
        assert ledger.last("c1", "other") == 0
        assert ledger.admit("c2", "s", 1) is True


class TestSnapshot:
    def test_records_round_trip(self):
        ledger = IngestLedger()
        ledger.advance("b", "s", 1)
        ledger.advance("a", "s", 1)
        ledger.advance("a", "s", 2)
        records = ledger.to_records()
        assert records == [["a", "s", 2], ["b", "s", 1]]  # sorted
        rebuilt = IngestLedger.from_records(records)
        assert rebuilt.last("a", "s") == 2
        assert rebuilt.last("b", "s") == 1
        assert len(rebuilt) == 2

    def test_bad_record_shape_rejected(self):
        with pytest.raises(LedgerError, match="triples"):
            IngestLedger.from_records([["a", "s"]])

    def test_snapshot_is_a_copy(self):
        ledger = IngestLedger()
        ledger.advance("c", "s", 1)
        snap = ledger.snapshot()
        ledger.advance("c", "s", 2)
        assert snap[("c", "s")] == 1
