"""Runtime lock sanitizer: record real acquisition orders, catch cycles.

The static lock graph (:mod:`repro.analysis.lockgraph`) predicts which
lock orders the code *can* take; this module observes which orders a
real run *does* take.  Production code creates its locks through the
factories here with a stable fleet-wide name::

    self._lock = make_lock("ShardedIngestPipeline._lock")

Normally the factories return plain :mod:`threading` primitives — zero
overhead.  With the sanitizer enabled (``CIAO_LOCKSAN=1`` in the
environment, wired through ``tests/conftest.py``, or
:func:`enable` programmatically) they return instrumented wrappers that
maintain a per-thread stack of held locks and record every
``held -> acquired`` pair into a process-global edge set.

At the end of an instrumented run, :func:`verify_consistent` merges the
observed edges into the static graph and fails if the union contains a
cycle — i.e. if the run exercised an order the static analysis calls
deadlock-prone, or an order that contradicts the statically derived
one.  Observed edges over locks the static graph has never seen are
added as fresh nodes (they still participate in cycle detection).

Lock *names*, not instances, are the graph nodes: every instance of a
class shares its lock's name, which is exactly the granularity at which
ordering rules are stated ("pipeline lock after lifecycle lock").
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterable, List, Optional, Set, Tuple

Edge = Tuple[str, str]

_enabled = False
_observed_edges: Set[Edge] = set()
_edge_sites: Dict[Edge, int] = {}
_acquisitions: Dict[str, int] = {}
_state_lock = threading.Lock()
_held = threading.local()


class LockOrderError(AssertionError):
    """An observed acquisition order is cyclic against the static graph."""


def enable() -> None:
    """Turn the sanitizer on for locks created from now on."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn the sanitizer off (new locks come out uninstrumented)."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    """True when new locks will be instrumented."""
    return _enabled or bool(os.environ.get("CIAO_LOCKSAN"))


def reset() -> None:
    """Forget every observed edge (test isolation)."""
    with _state_lock:
        _observed_edges.clear()
        _edge_sites.clear()
        _acquisitions.clear()


def observed_edges() -> Set[Edge]:
    """A copy of the ``held -> acquired`` pairs observed so far."""
    with _state_lock:
        return set(_observed_edges)


def acquisition_counts() -> Dict[str, int]:
    """Sanitized acquisitions per lock name (instrumentation coverage)."""
    with _state_lock:
        return dict(_acquisitions)


def _held_stack() -> List[str]:
    stack = getattr(_held, "stack", None)
    if stack is None:
        stack = []
        _held.stack = stack
    return stack


def _record_acquire(name: str) -> None:
    stack = _held_stack()
    with _state_lock:
        _acquisitions[name] = _acquisitions.get(name, 0) + 1
        for holder in stack:
            if holder != name:
                edge = (holder, name)
                if edge not in _observed_edges:
                    _observed_edges.add(edge)
                    _edge_sites[edge] = _acquisitions[name]
    stack.append(name)


def _record_release(name: str) -> None:
    stack = _held_stack()
    # Release order may differ from acquisition order; drop the newest
    # matching entry (reentrant locks push one entry per acquire).
    for i in range(len(stack) - 1, -1, -1):
        if stack[i] == name:
            del stack[i]
            return


class _SanitizedBase:
    """Shared acquire/release instrumentation over a threading primitive."""

    def __init__(self, name: str, inner):
        self.name = name
        self._inner = inner

    def acquire(self, *args, **kwargs):
        got = self._inner.acquire(*args, **kwargs)
        if got:
            _record_acquire(self.name)
        return got

    def release(self) -> None:
        self._inner.release()
        _record_release(self.name)

    def __enter__(self):
        self._inner.acquire()
        _record_acquire(self.name)
        return self

    def __exit__(self, *exc_info) -> None:
        self._inner.release()
        _record_release(self.name)

    def locked(self) -> bool:
        return self._inner.locked()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class SanitizedLock(_SanitizedBase):
    """Instrumented ``threading.Lock``."""

    def __init__(self, name: str):
        super().__init__(name, threading.Lock())


class SanitizedRLock(_SanitizedBase):
    """Instrumented ``threading.RLock``.

    Reentrant re-acquisition pushes a second stack entry (popped on the
    matching release) but records no self-edge.
    """

    def __init__(self, name: str):
        super().__init__(name, threading.RLock())


class SanitizedCondition(_SanitizedBase):
    """Instrumented ``threading.Condition``.

    ``wait()`` releases and re-acquires the underlying lock internally;
    the held-stack entry stays in place across the wait, which is sound
    because the waiting thread acquires nothing while blocked.
    """

    def __init__(self, name: str):
        super().__init__(name, threading.Condition())

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._inner.wait(timeout)

    def wait_for(self, predicate, timeout: Optional[float] = None):
        return self._inner.wait_for(predicate, timeout)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()


def make_lock(name: str):
    """A ``threading.Lock`` — instrumented when the sanitizer is on."""
    if enabled():
        return SanitizedLock(name)
    return threading.Lock()


def make_rlock(name: str):
    """A ``threading.RLock`` — instrumented when the sanitizer is on."""
    if enabled():
        return SanitizedRLock(name)
    return threading.RLock()


def make_condition(name: str):
    """A ``threading.Condition`` — instrumented when the sanitizer is on."""
    if enabled():
        return SanitizedCondition(name)
    return threading.Condition()


def find_cycle(edges: Iterable[Edge]) -> Optional[List[str]]:
    """A lock-name cycle in *edges*, or None.  Iterative DFS."""
    graph: Dict[str, List[str]] = {}
    for src, dst in edges:
        graph.setdefault(src, []).append(dst)
        graph.setdefault(dst, [])
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    parent: Dict[str, Optional[str]] = {}
    for root in sorted(graph):
        if color[root] != WHITE:
            continue
        stack: List[Tuple[str, Iterable[str]]] = [
            (root, iter(sorted(graph[root])))
        ]
        color[root] = GRAY
        parent[root] = None
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if color[child] == WHITE:
                    color[child] = GRAY
                    parent[child] = node
                    stack.append((child, iter(sorted(graph[child]))))
                    advanced = True
                    break
                if color[child] == GRAY:
                    # Back edge: walk parents from node back to child.
                    cycle = [child, node]
                    cursor = parent[node]
                    while cursor is not None and cursor != child:
                        cycle.append(cursor)
                        cursor = parent[cursor]
                    cycle.reverse()
                    return cycle
            if not advanced:
                color[node] = BLACK
                stack.pop()
        # parent map only needs to survive within one DFS tree
    return None


def verify_consistent(static_edges: Iterable[Edge]) -> Set[Edge]:
    """Fail if observed orders are cyclic against the static lock graph.

    Merges the run's observed edges into *static_edges* and raises
    :class:`LockOrderError` when the union contains a cycle — either the
    run itself interleaved locks both ways, or it took an order the
    static graph's (acyclic) orientation forbids.  Returns the observed
    edge set on success so callers can report coverage.
    """
    observed = observed_edges()
    union = set(static_edges) | observed
    cycle = find_cycle(union)
    if cycle is not None:
        raise LockOrderError(
            "lock acquisition order is cyclic: "
            + " -> ".join(cycle + [cycle[0]])
            + f"; observed edges this run: {sorted(observed)}"
        )
    return observed
