"""Unit tests for the predicate model."""

import pytest

from repro.core import (
    Clause,
    PredicateKind,
    Query,
    SimplePredicate,
    UnsupportedPredicateError,
    Workload,
    clause,
    exact,
    key_present,
    key_value,
    prefix,
    substring,
    suffix,
)


class TestSimplePredicateValidation:
    def test_string_kinds_need_nonempty_strings(self):
        with pytest.raises(UnsupportedPredicateError):
            exact("name", "")
        with pytest.raises(UnsupportedPredicateError):
            SimplePredicate(PredicateKind.SUBSTRING, "t", 5)

    def test_float_equality_rejected(self):
        # 2.4 vs 24e-1 would create false negatives (paper §IV-B).
        with pytest.raises(UnsupportedPredicateError):
            key_value("score", 2.4)

    def test_key_presence_takes_no_operand(self):
        with pytest.raises(UnsupportedPredicateError):
            SimplePredicate(PredicateKind.KEY_PRESENCE, "email", "x")

    def test_column_required(self):
        with pytest.raises(ValueError):
            exact("", "x")

    def test_int_and_bool_key_values_allowed(self):
        assert key_value("age", 10).value == 10
        assert key_value("active", True).value is True


class TestSemantics:
    RECORD = {
        "name": "Bob", "age": 20, "text": "very delicious food",
        "email": "x@y.z", "active": True, "nested": {"name": "Eve"},
    }

    def test_exact(self):
        assert exact("name", "Bob").evaluate(self.RECORD)
        assert not exact("name", "Bo").evaluate(self.RECORD)
        assert not exact("age", "20").evaluate(self.RECORD)  # type guard

    def test_substring_prefix_suffix(self):
        assert substring("text", "delicious").evaluate(self.RECORD)
        assert prefix("text", "very").evaluate(self.RECORD)
        assert suffix("text", "food").evaluate(self.RECORD)
        assert not prefix("text", "food").evaluate(self.RECORD)

    def test_key_presence(self):
        assert key_present("email").evaluate(self.RECORD)
        assert not key_present("missing").evaluate(self.RECORD)
        assert not key_present("null_field").evaluate({"null_field": None})

    def test_key_value_int(self):
        assert key_value("age", 20).evaluate(self.RECORD)
        assert not key_value("age", 21).evaluate(self.RECORD)

    def test_key_value_bool_never_matches_int(self):
        assert key_value("active", True).evaluate(self.RECORD)
        assert not key_value("active", 1).evaluate(self.RECORD)
        assert not key_value("one", True).evaluate({"one": 1})

    def test_top_level_keys_only(self):
        assert not exact("name", "Eve").evaluate(self.RECORD)


class TestSql:
    def test_renderings(self):
        assert exact("name", "Bob").sql() == "name = 'Bob'"
        assert substring("t", "x").sql() == "t LIKE '%x%'"
        assert prefix("t", "x").sql() == "t LIKE 'x%'"
        assert suffix("t", "x").sql() == "t LIKE '%x'"
        assert key_present("email").sql() == "email != NULL"
        assert key_value("age", 10).sql() == "age = 10"
        assert key_value("on", True).sql() == "on = true"


class TestClause:
    def test_canonical_ordering_and_dedup(self):
        a = clause(exact("name", "Bob"), exact("name", "John"))
        b = clause(exact("name", "John"), exact("name", "Bob"),
                   exact("name", "Bob"))
        assert a == b
        assert hash(a) == hash(b)
        assert len(b) == 2

    def test_disjunction_semantics(self):
        c = clause(exact("name", "Bob"), key_value("age", 99))
        assert c.evaluate({"name": "Bob", "age": 1})
        assert c.evaluate({"name": "Eve", "age": 99})
        assert not c.evaluate({"name": "Eve", "age": 1})

    def test_sql_parenthesizes_disjunctions(self):
        c = clause(exact("name", "Bob"), exact("name", "John"))
        assert c.sql() == "(name = 'Bob' OR name = 'John')"

    def test_columns(self):
        c = clause(exact("b", "x"), key_value("a", 1))
        assert c.columns == ("a", "b")

    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            Clause(())

    def test_ordering_total_across_value_types(self):
        mixed = [
            clause(key_value("a", 1)),
            clause(exact("a", "1")),
            clause(key_present("a")),
        ]
        assert sorted(mixed)  # must not raise


class TestQuery:
    def test_conjunction_semantics(self):
        q = Query((clause(exact("name", "Bob")), clause(key_value("a", 1))))
        assert q.evaluate({"name": "Bob", "a": 1})
        assert not q.evaluate({"name": "Bob", "a": 2})

    def test_duplicate_clauses_dropped(self):
        c = clause(exact("n", "x"))
        q = Query((c, c))
        assert len(q) == 1

    def test_sql_template(self):
        q = Query((clause(key_value("age", 10)),))
        assert q.sql("logs") == "SELECT COUNT(*) FROM logs WHERE age = 10"

    def test_validation(self):
        with pytest.raises(ValueError):
            Query(())
        with pytest.raises(ValueError):
            Query((clause(exact("a", "b")),), frequency=0)


class TestWorkload:
    def test_candidate_pool_is_distinct_union(self, tiny_workload):
        pool = tiny_workload.candidate_pool
        assert len(pool) == len(set(pool)) == 4

    def test_clause_query_counts(self, tiny_workload):
        counts = tiny_workload.clause_query_counts()
        assert sorted(counts.values(), reverse=True) == [2, 2, 1, 1]

    def test_total_and_minmax(self, tiny_workload):
        assert tiny_workload.total_predicates() == 6
        assert tiny_workload.min_max_predicates() == (2, 2)

    def test_normalized_frequencies_sum_to_one(self, tiny_workload):
        freqs = tiny_workload.normalized_frequencies()
        assert abs(sum(freqs.values()) - 1.0) < 1e-12

    def test_queries_containing(self, tiny_workload):
        c_text = clause(substring("text", "delicious"))
        hits = tiny_workload.queries_containing(c_text)
        assert {q.name for q in hits} == {"q2", "q3"}

    def test_summary_shape(self, tiny_workload):
        summary = tiny_workload.summary()
        assert summary["queries"] == 3
        assert summary["distinct_clauses"] == 4

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            Workload(())
