"""The unified load report: one accounting contract for every mode.

Serial and sharded loads produce a :class:`~repro.server.loader.LoadSummary`;
fleet loads produce a :class:`~repro.fleet.report.FleetReport`.  A
:class:`LoadReport` subsumes both behind the accounting invariant every
deployment shares — ``received == loaded + sidelined + malformed`` and,
when the offered record count is known, ``received == records_offered``
(no record loss) — so callers of
:meth:`~repro.api.session.LoadJob.result` check one contract regardless of
how the data got there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..client.device import ClientStats
from ..fleet.report import FleetReport
from ..server.loader import LoadSummary


@dataclass
class LoadReport:
    """Outcome of one :meth:`CiaoSession.load` run, any mode."""

    #: Deployment mode that produced this load.
    mode: str
    #: Records the server received (all sources).
    received: int
    #: Records parsed into the columnar store.
    loaded: int
    #: Records kept raw in the sideline store.
    sidelined: int
    #: Selected-but-unparseable records quarantined raw.
    malformed: int
    #: Chunk frames ingested.
    chunks: int
    #: Server-side loading wall time (seconds).
    wall_seconds: float
    #: Records the session offered to the load (``None`` = unknown,
    #: e.g. a streamed file of unknown length).
    records_offered: Optional[int] = None
    #: The raw server summary (always present).
    summary: Optional[LoadSummary] = None
    #: Single-client device accounting (serial/sharded modes).
    client_stats: Optional[ClientStats] = None
    #: The full fleet report (fleet mode only).
    fleet: Optional[FleetReport] = None
    #: Payload bytes shipped over the transport.
    bytes_sent: int = 0
    #: Transmissions dropped (and retransmitted) by lossy channels.
    messages_dropped: int = 0

    # ------------------------------------------------------------------
    @property
    def loading_ratio(self) -> float:
        """Loaded / received — the y-axis of Figs 7, 9, 11."""
        return self.loaded / self.received if self.received else 0.0

    @property
    def accounting_ok(self) -> bool:
        """The per-load partition invariant."""
        return self.received == self.loaded + self.sidelined + self.malformed

    @property
    def no_record_loss(self) -> bool:
        """Every offered record arrived exactly once and is accounted for.

        Falls back to :attr:`accounting_ok` when the offered count is
        unknown (streamed sources).
        """
        if not self.accounting_ok:
            return False
        if self.records_offered is None:
            return True
        return self.received == self.records_offered

    # ------------------------------------------------------------------
    @classmethod
    def from_summary(cls, mode: str, summary: LoadSummary, *,
                     records_offered: Optional[int] = None,
                     client_stats: Optional[ClientStats] = None,
                     bytes_sent: int = 0,
                     messages_dropped: int = 0) -> "LoadReport":
        """Wrap a serial/sharded server summary."""
        return cls(
            mode=mode,
            received=summary.received,
            loaded=summary.loaded,
            sidelined=summary.sidelined,
            malformed=summary.malformed,
            chunks=summary.chunks,
            wall_seconds=summary.wall_seconds,
            records_offered=records_offered,
            summary=summary,
            client_stats=client_stats,
            bytes_sent=bytes_sent,
            messages_dropped=messages_dropped,
        )

    @classmethod
    def from_fleet(cls, report: FleetReport, *,
                   messages_dropped: int = 0) -> "LoadReport":
        """Wrap a fleet report (aggregate view; detail stays attached)."""
        summary = report.summary
        return cls(
            mode="fleet",
            received=summary.received,
            loaded=summary.loaded,
            sidelined=summary.sidelined,
            malformed=summary.malformed,
            chunks=summary.chunks,
            wall_seconds=report.wall_seconds,
            records_offered=report.total_records,
            summary=summary,
            fleet=report,
            bytes_sent=sum(c.bytes_sent for c in report.clients),
            messages_dropped=messages_dropped,
        )

    def describe(self) -> str:
        """Human-readable account of the load (fleet table when present)."""
        # Imported here: reporting sits in the bench layer, which imports
        # broadly; the API data model must stay importable on its own.
        from ..bench.reporting import load_report_block

        return load_report_block(self)
