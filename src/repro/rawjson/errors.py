"""Error types shared by the raw-JSON substrate."""

from __future__ import annotations


class JsonError(ValueError):
    """Base class for JSON tokenizer/parser failures.

    Carries the byte offset where the problem was detected so server-side
    loaders can report which record of a chunk was malformed.
    """

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class JsonSyntaxError(JsonError):
    """Structural problem: bad token sequence, unbalanced braces, etc."""


class JsonTokenError(JsonError):
    """Lexical problem: bad escape, malformed number, stray character."""
