"""Property tests: wire-protocol and SQL round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitvec import BitVector
from repro.client import decode_chunk, encode_chunk
from repro.engine import parse_sql
from repro.rawjson import JsonChunk, dump_record


# ----------------------------------------------------------------------
# Chunk protocol: decode(encode(chunk)) == chunk, for arbitrary shapes.
# ----------------------------------------------------------------------
@st.composite
def chunks(draw):
    n = draw(st.integers(min_value=0, max_value=60))
    records = [
        dump_record(
            {
                "i": i,
                "s": draw(st.text(
                    alphabet=st.characters(
                        exclude_characters="\n\r",
                        exclude_categories=["Cs"],  # no lone surrogates
                    ),
                    max_size=15,
                )),
            }
        )
        for i in range(n)
    ]
    chunk = JsonChunk(draw(st.integers(min_value=0, max_value=10_000)),
                      records)
    for pid in draw(st.lists(st.integers(min_value=0, max_value=50),
                             unique=True, max_size=4)):
        bits = draw(st.lists(st.booleans(), min_size=n, max_size=n))
        chunk.attach(pid, BitVector.from_bits(bits))
    return chunk


@given(chunks())
@settings(max_examples=150)
def test_chunk_protocol_roundtrip(chunk):
    decoded = decode_chunk(encode_chunk(chunk))
    assert decoded.chunk_id == chunk.chunk_id
    assert decoded.records == chunk.records
    assert decoded.bitvectors == chunk.bitvectors


@given(chunks(), st.integers(min_value=1, max_value=40))
@settings(max_examples=60)
def test_chunk_protocol_rejects_truncation(chunk, cut):
    payload = encode_chunk(chunk)
    if cut >= len(payload):
        return
    try:
        decoded = decode_chunk(payload[:-cut])
    except ValueError:
        return  # rejected, as expected
    # Extremely unlikely, but if truncation still decodes it must not
    # silently corrupt record counts.
    assert len(decoded.records) <= len(chunk.records)


# ----------------------------------------------------------------------
# SQL: rendering an expression and re-parsing it is the identity.
# ----------------------------------------------------------------------
_columns = st.sampled_from(["a", "b", "c_col"])
_strings = st.text(
    alphabet=st.characters(blacklist_characters="\n\r"), max_size=10
)


@st.composite
def where_fragments(draw):
    kind = draw(st.sampled_from(
        ["eq_str", "eq_int", "like", "null", "not_null", "cmp"]
    ))
    column = draw(_columns)
    if kind == "eq_str":
        return f"{column} = '{draw(_strings).replace(chr(39), chr(39)*2)}'"
    if kind == "eq_int":
        return f"{column} = {draw(st.integers(-999, 999))}"
    if kind == "like":
        body = draw(_strings).replace("'", "''").replace("%", "")
        return f"{column} LIKE '%{body}%'"
    if kind == "null":
        return f"{column} IS NULL"
    if kind == "not_null":
        return f"{column} IS NOT NULL"
    op = draw(st.sampled_from(["<", "<=", ">", ">="]))
    return f"{column} {op} {draw(st.integers(-999, 999))}"


@st.composite
def where_clauses(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    joiner = draw(st.sampled_from([" AND ", " OR "]))
    return joiner.join(draw(where_fragments()) for _ in range(n))


@given(where_clauses())
@settings(max_examples=200)
def test_sql_render_reparse_identity(fragment):
    parsed = parse_sql(f"SELECT COUNT(*) FROM t WHERE {fragment}")
    rendered = parsed.where.sql()
    reparsed = parse_sql(f"SELECT COUNT(*) FROM t WHERE {rendered}")
    assert reparsed.where == parsed.where


@given(where_clauses(), st.dictionaries(
    _columns,
    st.one_of(st.none(), st.integers(-999, 999), _strings),
    max_size=3,
))
@settings(max_examples=200)
def test_sql_rendered_expression_evaluates_identically(fragment, row):
    parsed = parse_sql(f"SELECT COUNT(*) FROM t WHERE {fragment}")
    rendered = parse_sql(
        f"SELECT COUNT(*) FROM t WHERE {parsed.where.sql()}"
    )
    assert parsed.where.evaluate(row) == rendered.where.evaluate(row)
