"""Column-chunk pages: null bitmap + encoded values, with a tiny header.

Page layout (all integers varint unless noted):

    [encoding tag: 1 byte]
    [row count: varint]
    [null bitmap length: varint][null bitmap: BitVector bytes]
    [values length: varint][encoded non-null values]

The null bitmap has one bit per row (1 = present); only present values are
encoded, Parquet-style.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..bitvec.bitvector import BitVector
from .encodings import (
    Encoding,
    EncodingError,
    choose_encoding,
    decode,
    encode,
    read_varint,
    write_varint,
)
from .schema import ColumnType

_ENCODING_TAGS = {
    Encoding.PLAIN: 0,
    Encoding.DICTIONARY: 1,
    Encoding.RLE: 2,
}
_TAG_ENCODINGS = {tag: enc for enc, tag in _ENCODING_TAGS.items()}


@dataclass(frozen=True)
class PageStats:
    """Per-page statistics kept in row-group metadata.

    min/max are tracked for orderable scalar types and are ``None`` for
    JSON columns or all-null pages; null_count always populated.
    """

    row_count: int
    null_count: int
    min_value: Optional[Any]
    max_value: Optional[Any]


def write_page(values: Sequence[Any], column_type: ColumnType,
               encoding: Optional[Encoding] = None
               ) -> Tuple[bytes, PageStats]:
    """Encode one column's values (with nulls) into a page.

    ``encoding`` forces a specific encoding (the ablation bench does);
    the default defers to :func:`choose_encoding` over non-null values.
    """
    presence = BitVector(len(values))
    non_null: List[Any] = []
    for i, value in enumerate(values):
        if value is not None:
            presence.set(i)
            non_null.append(value)
    chosen = encoding or choose_encoding(non_null, column_type)
    payload = encode(non_null, column_type, chosen)
    bitmap = presence.to_bytes()
    out = bytearray()
    out.append(_ENCODING_TAGS[chosen])
    write_varint(out, len(values))
    write_varint(out, len(bitmap))
    out += bitmap
    write_varint(out, len(payload))
    out += payload
    stats = _compute_stats(values, non_null, column_type)
    return bytes(out), stats


def read_page(data: bytes, column_type: ColumnType) -> List[Any]:
    """Decode a page back to its values (with ``None`` for nulls)."""
    if not data:
        raise EncodingError("empty page")
    tag = data[0]
    try:
        encoding = _TAG_ENCODINGS[tag]
    except KeyError:
        raise EncodingError(f"unknown encoding tag {tag}") from None
    row_count, pos = read_varint(data, 1)
    bitmap_len, pos = read_varint(data, pos)
    bitmap_end = pos + bitmap_len
    if bitmap_end > len(data):
        raise EncodingError("truncated null bitmap")
    presence = BitVector.from_bytes(data[pos:bitmap_end])
    pos = bitmap_end
    payload_len, pos = read_varint(data, pos)
    payload_end = pos + payload_len
    if payload_end > len(data):
        raise EncodingError("truncated page payload")
    payload = data[pos:payload_end]
    if len(presence) != row_count:
        raise EncodingError("null bitmap does not match page row count")
    n_present = presence.count()
    non_null = decode(payload, n_present, column_type, encoding)
    if n_present == row_count:
        # Dense page (no nulls): the decoded list already is the column,
        # no per-row scatter needed — the common case on the batch
        # engine's hot decode path.
        return non_null
    values: List[Any] = [None] * row_count
    for slot, row in enumerate(presence.iter_set()):
        values[row] = non_null[slot]
    return values


def page_encoding(data: bytes) -> Encoding:
    """Peek a page's encoding without decoding it (diagnostics)."""
    if not data:
        raise EncodingError("empty page")
    try:
        return _TAG_ENCODINGS[data[0]]
    except KeyError:
        raise EncodingError(f"unknown encoding tag {data[0]}") from None


def _compute_stats(values: Sequence[Any], non_null: Sequence[Any],
                   column_type: ColumnType) -> PageStats:
    null_count = len(values) - len(non_null)
    if not non_null or column_type is ColumnType.JSON:
        return PageStats(len(values), null_count, None, None)
    return PageStats(
        row_count=len(values),
        null_count=null_count,
        min_value=min(non_null),
        max_value=max(non_null),
    )
