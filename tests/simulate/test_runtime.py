"""Unit tests for cost ledgers."""

import pytest

from repro.simulate import CostLedger, LOADING, PREFILTERING, QUERY


class TestCharging:
    def test_virtual_accumulates(self):
        ledger = CostLedger()
        ledger.charge(PREFILTERING, 100)
        ledger.charge(PREFILTERING, 50)
        ledger.charge(LOADING, 10)
        assert ledger.virtual_us[PREFILTERING] == 150
        assert ledger.virtual_total_us() == 160

    def test_negative_rejected(self):
        ledger = CostLedger()
        with pytest.raises(ValueError):
            ledger.charge(QUERY, -1)
        with pytest.raises(ValueError):
            ledger.charge_wall(QUERY, -1)

    def test_timed_context(self):
        ledger = CostLedger()
        with ledger.timed(QUERY):
            sum(range(1000))
        assert ledger.wall_seconds[QUERY] > 0

    def test_virtual_seconds(self):
        ledger = CostLedger()
        ledger.charge(LOADING, 2_000_000)
        assert ledger.virtual_seconds(LOADING) == pytest.approx(2.0)


class TestMergeAndReport:
    def test_merge_is_additive_and_pure(self):
        a = CostLedger()
        a.charge(QUERY, 10)
        b = CostLedger()
        b.charge(QUERY, 5)
        b.charge_wall(LOADING, 0.5)
        merged = a.merge(b)
        assert merged.virtual_us[QUERY] == 15
        assert merged.wall_seconds[LOADING] == 0.5
        assert a.virtual_us[QUERY] == 10  # unchanged

    def test_rows_cover_canonical_accounts_in_order(self):
        ledger = CostLedger()
        ledger.charge(QUERY, 1)
        ledger.charge(PREFILTERING, 1)
        rows = ledger.rows()
        assert [r[0] for r in rows] == [PREFILTERING, QUERY]

    def test_describe_prints_totals(self):
        ledger = CostLedger()
        ledger.charge(LOADING, 1_500_000)
        text = ledger.describe()
        assert "loading" in text
        assert "total" in text
