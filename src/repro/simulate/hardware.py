"""Hardware platform profiles for the Table IV calibration experiment.

The paper calibrates the §V-D cost model on three machines and reports how
well the linear model fits (R²): a local bare-metal server (0.897), an
Alibaba Cloud VM (0.666, degraded by "an opaque hypervisor that can limit
computation cycles or even migrate the virtual machine"), and a bare-metal
cluster node (0.978).

We cannot ship those machines, so each becomes a *profile*: ground-truth
cost coefficients plus a noise model that perturbs simulated measurements
the way that platform perturbs real ones.  Bare metal gets mild Gaussian
noise; the cloud VM gets heavier noise **plus multiplicative steal-time
spikes**, reproducing exactly the contrast Table IV reports.  The "Local"
row can alternatively be measured for real on the current machine via
:func:`repro.core.calibration.measure_search_costs`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Protocol, Sequence, Tuple

from ..core.calibration import Observation
from ..core.cost_model import CostCoefficients


class NoiseModel(Protocol):
    """Perturbs a true cost into an observed cost."""

    def perturb(self, true_cost_us: float, rng: random.Random) -> float:
        """One noisy observation of *true_cost_us*."""
        ...


@dataclass(frozen=True)
class GaussianNoise:
    """Bare-metal measurement noise: small relative Gaussian jitter."""

    relative_sigma: float

    def perturb(self, true_cost_us: float, rng: random.Random) -> float:
        jitter = rng.gauss(1.0, self.relative_sigma)
        return max(0.0, true_cost_us * jitter)


@dataclass(frozen=True)
class HypervisorNoise:
    """Cloud-VM noise: Gaussian jitter plus occasional steal-time spikes.

    With probability ``spike_probability`` a measurement lands during a
    hypervisor event (CPU capping, co-tenant interference, migration) and
    the observed cost is inflated by a factor drawn uniformly from
    ``[1, spike_scale]``.  Spikes are what drags R² down: they are variance
    the linear model cannot explain.
    """

    relative_sigma: float
    spike_probability: float
    spike_scale: float

    def perturb(self, true_cost_us: float, rng: random.Random) -> float:
        jitter = rng.gauss(1.0, self.relative_sigma)
        cost = true_cost_us * jitter
        if rng.random() < self.spike_probability:
            cost *= 1.0 + rng.random() * (self.spike_scale - 1.0)
        return max(0.0, cost)


@dataclass(frozen=True)
class HardwareProfile:
    """One Table IV platform: identity, true coefficients, noise."""

    name: str
    description: str
    coefficients: CostCoefficients
    noise: NoiseModel
    paper_r_squared: float

    def true_cost_us(self, pattern_length: float, record_length: float,
                     hit_rate: float) -> float:
        """Noise-free modeled cost of one predicate evaluation."""
        k = self.coefficients
        hit = k.k1 * pattern_length + k.k2 * record_length
        miss = k.k3 * pattern_length + k.k4 * record_length
        return hit_rate * hit + (1 - hit_rate) * miss + k.c

    def relative_speed(self, reference: "HardwareProfile",
                       pattern_length: float = 12.0,
                       record_length: float = 160.0,
                       hit_rate: float = 0.1) -> float:
        """How fast this platform runs predicate work vs *reference*.

        Ratio of noise-free modeled costs for a nominal predicate shape:
        > 1 means this platform evaluates the same predicate cheaper
        (faster) than the reference.  Fleet simulations use this to derive
        a :class:`repro.core.budgets.ClientProfile` speed factor from a
        hardware profile instead of inventing one.
        """
        own = self.true_cost_us(pattern_length, record_length, hit_rate)
        ref = reference.true_cost_us(pattern_length, record_length, hit_rate)
        if own <= 0:
            raise ValueError(f"profile {self.name} has non-positive cost")
        return ref / own

    def observe(self, pattern_length: float, record_length: float,
                hit_rate: float, rng: random.Random,
                samples: int = 1) -> float:
        """Noisy mean cost measurement for one predicate.

        The real calibration times each predicate *once* over a large
        sample, so platform disturbances (scheduler jitter, hypervisor
        steal time, VM migration) hit the whole measurement — they do not
        average out across predicates.  ``samples=1`` reproduces that;
        larger values model re-running the sample multiple times.
        """
        true_cost = self.true_cost_us(pattern_length, record_length,
                                      hit_rate)
        total = 0.0
        for _ in range(max(1, samples)):
            total += self.noise.perturb(true_cost, rng)
        return total / max(1, samples)


#: The three platforms of Table IV.  Coefficient scales reflect the paper's
#: clock speeds (2.5 GHz cloud vCPU slower than the 3.1 GHz local part,
#: 2.6 GHz Xeon Gold with a large cache in between); noise levels are tuned
#: so the fitted R² lands near the paper's numbers (validated in tests).
PLATFORMS: Dict[str, HardwareProfile] = {
    "local": HardwareProfile(
        name="local",
        description="2-core Intel Core i7-5557U @ 3.10 GHz, 16 GB RAM",
        coefficients=CostCoefficients(
            k1=0.0005, k2=0.00035, k3=0.0008, k4=0.00060, c=0.18
        ),
        noise=GaussianNoise(relative_sigma=0.10),
        paper_r_squared=0.897,
    ),
    "alibaba": HardwareProfile(
        name="alibaba",
        description="4 vCPU Intel Xeon @ 2.5 GHz (Alibaba ECS), 8 GB RAM",
        coefficients=CostCoefficients(
            k1=0.0007, k2=0.00050, k3=0.0011, k4=0.00085, c=0.30
        ),
        noise=HypervisorNoise(
            relative_sigma=0.14, spike_probability=0.25, spike_scale=1.5
        ),
        paper_r_squared=0.666,
    ),
    "pku": HardwareProfile(
        name="pku",
        description="32-core Intel Xeon Gold 6240 @ 2.6 GHz, 192 GB RAM",
        coefficients=CostCoefficients(
            k1=0.00045, k2=0.00030, k3=0.0007, k4=0.00050, c=0.15
        ),
        noise=GaussianNoise(relative_sigma=0.05),
        paper_r_squared=0.978,
    ),
}


def synthesize_observations(
    profile: HardwareProfile,
    predicate_shapes: Sequence[Tuple[float, float]],
    record_length: float,
    rng: random.Random,
    samples_per_observation: int = 1,
) -> List[Observation]:
    """Simulated calibration measurements for one platform.

    ``predicate_shapes`` holds (pattern_length, hit_rate) pairs — e.g. from
    compiling 100 random pool predicates, as in the paper's experiment.
    """
    observations: List[Observation] = []
    for pattern_length, hit_rate in predicate_shapes:
        cost = profile.observe(
            pattern_length, record_length, hit_rate, rng,
            samples=samples_per_observation,
        )
        observations.append(
            Observation(
                pattern_length=pattern_length,
                record_length=record_length,
                hit_rate=hit_rate,
                mean_cost_us=cost,
            )
        )
    return observations
