"""ciaolint command line: ``python -m repro.analysis [paths...]``.

Exit codes: ``0`` clean (or everything baselined), ``1`` findings,
``2`` usage/configuration error (unknown checker, malformed baseline,
unparseable target).

The engine half (:func:`run_analysis`) is importable so tests — and
``tests/test_public_api.py``, which is now a thin assertion over the
api-hygiene checker — can run the same gate in-process without
subprocesses or stdout parsing.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .baseline import BaselineError, load_baseline, partition, write_baseline
from .findings import Finding
from .model import Project
from .registry import all_checkers, resolve_select

# Importing the checker modules registers them; the registry is the
# only coupling the engine has to the individual checkers.
from . import bounds as _bounds            # noqa: F401
from . import determinism as _determinism  # noqa: F401
from . import generators as _generators    # noqa: F401
from . import hygiene as _hygiene          # noqa: F401
from . import locks as _locks              # noqa: F401
from . import observability as _observability  # noqa: F401
from . import retries as _retries          # noqa: F401

DEFAULT_BASELINE = ".ciaolint-baseline.json"


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    findings: List[Finding] = field(default_factory=list)   # actionable
    baselined: List[Finding] = field(default_factory=list)  # grandfathered
    suppressed: List[Finding] = field(default_factory=list)  # inline allows
    stale_baseline: List[Dict[str, str]] = field(default_factory=list)
    checkers: List[str] = field(default_factory=list)
    files: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def _meta_findings(project: Project) -> List[Finding]:
    """META001 (reason-less allow markers) and META002 (parse failures)."""
    findings: List[Finding] = []
    for module in project.modules:
        for marker in module.allow_markers:
            if marker.reason is None:
                findings.append(Finding(
                    path=module.rel_path, line=marker.marker_line, col=0,
                    rule="META001", checker="ciaolint",
                    message=(
                        "allow marker without a reason: write "
                        "`# ciaolint: allow[RULE] -- why it is safe`"
                    ),
                ))
    for failure in project.failures:
        findings.append(Finding(
            path=failure.rel_path, line=failure.line, col=0,
            rule="META002", checker="ciaolint", message=failure.message,
        ))
    return findings


def _apply_suppressions(
    project: Project, findings: List[Finding],
) -> tuple:
    """Split findings into (kept, suppressed) via inline allow markers."""
    markers_by_path: Dict[str, list] = {}
    for module in project.modules:
        markers_by_path[module.rel_path] = [
            m for m in module.allow_markers if m.reason is not None
        ]
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        if finding.checker == "ciaolint":
            kept.append(finding)  # META findings are not suppressible
            continue
        hit = any(
            marker.line == finding.line
            and marker.covers(finding.rule, finding.checker)
            for marker in markers_by_path.get(finding.path, [])
        )
        (suppressed if hit else kept).append(finding)
    return kept, suppressed


def run_analysis(
    paths: Sequence[Path],
    select: Sequence[str] = ("all",),
    baseline_path: Optional[Path] = None,
    root: Optional[Path] = None,
) -> AnalysisResult:
    """Run the selected checkers over *paths* and return the result.

    Raises ``ValueError`` for an unknown ``--select`` token and
    :class:`~repro.analysis.baseline.BaselineError` for a bad baseline.
    """
    checkers = resolve_select(select)
    project = Project.load(paths, root=root)
    raw: List[Finding] = list(_meta_findings(project))
    for checker_cls in checkers:
        raw.extend(checker_cls().check(project))
    kept, suppressed = _apply_suppressions(project, raw)
    entries = load_baseline(baseline_path) if baseline_path else []
    new, baselined, stale = partition(kept, entries)
    return AnalysisResult(
        findings=sorted(set(new)),
        baselined=sorted(set(baselined)),
        suppressed=sorted(set(suppressed)),
        stale_baseline=stale,
        checkers=[cls.name for cls in checkers],
        files=len(project.modules) + len(project.failures),
    )


def _render_text(result: AnalysisResult, out) -> None:
    for finding in result.findings:
        print(finding.render(), file=out)
    for entry in result.stale_baseline:
        print(
            f"note: stale baseline entry ({entry['rule']} "
            f"{entry['path']}) — the finding no longer occurs; remove it",
            file=out,
        )
    summary = (
        f"ciaolint: {len(result.findings)} finding(s) in "
        f"{result.files} file(s) "
        f"[{len(result.suppressed)} suppressed inline, "
        f"{len(result.baselined)} baselined]"
    )
    print(summary, file=out)


def _render_json(result: AnalysisResult, out) -> None:
    doc = {
        "version": 1,
        "checkers": result.checkers,
        "files": result.files,
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "baselined": [f.to_dict() for f in result.baselined],
        "stale_baseline": result.stale_baseline,
        "clean": result.clean,
    }
    print(json.dumps(doc, indent=2), file=out)


def _list_checkers(out) -> None:
    for cls in all_checkers():
        print(f"{cls.name}: {cls.description}", file=out)
        for rule, meaning in sorted(cls.rules.items()):
            print(f"  {rule}  {meaning}", file=out)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "ciaolint: AST-based project-invariant checks for the "
            "concurrent ingest/query stack"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--select", default="all",
        help="comma list of checker names to run (default: all)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=Path(DEFAULT_BASELINE),
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help=(
            "grandfather current findings into the baseline file "
            "(justifications start as TODO and must be filled in)"
        ),
    )
    parser.add_argument(
        "--list-checkers", action="store_true",
        help="list registered checkers and their rules, then exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    out = sys.stdout
    if args.list_checkers:
        _list_checkers(out)
        return 0
    paths = args.paths or [Path("src")]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {missing[0]}", file=sys.stderr)
        return 2
    baseline_path = None if args.no_baseline else args.baseline
    try:
        result = run_analysis(
            paths,
            select=args.select.split(","),
            baseline_path=None if args.write_baseline else baseline_path,
        )
    except (ValueError, BaselineError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        target = args.baseline
        count = write_baseline(target, result.findings)
        print(f"ciaolint: wrote {count} entries to {target}", file=out)
        return 0
    if args.format == "json":
        _render_json(result, out)
    else:
        _render_text(result, out)
    if any(f.rule == "META002" for f in result.findings):
        return 2
    return 0 if result.clean else 1
