"""Deterministic random-number streams for reproducible experiments.

Every experiment in this repository must be exactly reproducible, so nothing
may touch the global ``random`` state.  Components instead derive independent
:class:`random.Random` streams from a root seed and a purpose string; two
streams with different names never share state, and re-running with the same
root seed replays the identical dataset, workload, and noise.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

DEFAULT_SEED = 20210223  # the paper's arXiv submission date


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from *root_seed* and a purpose *name*."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def rng_stream(root_seed: int, name: str) -> random.Random:
    """An independent :class:`random.Random` for the given purpose."""
    return random.Random(derive_seed(root_seed, name))


class SeedSequence:
    """Hand out child seeds/streams under a common root.

    >>> seq = SeedSequence(7)
    >>> seq.stream("dataset").random() == seq.stream("dataset").random()
    True
    >>> seq.stream("a").random() == seq.stream("b").random()
    False
    """

    def __init__(self, root_seed: int = DEFAULT_SEED):
        self.root_seed = root_seed

    def seed(self, name: str) -> int:
        """Child seed for *name*."""
        return derive_seed(self.root_seed, name)

    def stream(self, name: str) -> random.Random:
        """Fresh RNG for *name* (same name ⇒ identical stream)."""
        return rng_stream(self.root_seed, name)

    def substreams(self, name: str, count: int) -> Iterator[random.Random]:
        """*count* independent streams under a common sub-name."""
        for i in range(count):
            yield self.stream(f"{name}[{i}]")
