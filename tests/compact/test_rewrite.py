"""rewrite_parts: row preservation, bit-vector soundness, crash atomicity."""

import os

import pytest

from repro.bitvec import BitVector
from repro.compact import rewrite_parts
from repro.compact.rewrite import RewriteStats
from repro.storage import ParquetLiteReader, ParquetLiteWriter
from repro.storage.columnar import write_records
from repro.storage.schema import infer_schema


def rows_of(path):
    with ParquetLiteReader(path) as reader:
        return reader.read_all()


def make_part(path, rows, group_size=4, bitvectors_by_group=None):
    """Write one part; bitvectors_by_group: [ {pid: [bits]} per group ]."""
    schema = infer_schema(rows)
    with ParquetLiteWriter(path, schema) as writer:
        for g, start in enumerate(range(0, len(rows), group_size)):
            window = rows[start:start + group_size]
            vectors = None
            if bitvectors_by_group is not None:
                vectors = {
                    pid: BitVector.from_bits(bits)
                    for pid, bits in bitvectors_by_group[g].items()
                }
            writer.write_row_group(window, bitvectors=vectors)
    return path


class TestRowPreservation:
    def test_merged_part_equals_union_of_inputs(self, tmp_path):
        a = [{"k": i % 3, "v": i} for i in range(10)]
        b = [{"k": i % 3, "v": 100 + i} for i in range(7)]
        write_records(tmp_path / "a.pql", a, row_group_size=4)
        write_records(tmp_path / "b.pql", b, row_group_size=3)
        out = tmp_path / "merged.pql"
        stats = rewrite_parts(
            [tmp_path / "a.pql", tmp_path / "b.pql"], out
        )
        assert isinstance(stats, RewriteStats)
        assert rows_of(out) == a + b  # input order, byte-identical rows
        assert stats.rows == 17
        assert stats.inputs == 2
        assert stats.row_groups_in == 3 + 3

    def test_cluster_by_sorts_rows_stably(self, tmp_path):
        rows = [{"k": i % 4, "v": i} for i in range(16)]
        write_records(tmp_path / "a.pql", rows, row_group_size=4)
        out = tmp_path / "sorted.pql"
        stats = rewrite_parts([tmp_path / "a.pql"], out, cluster_by="k")
        merged = rows_of(out)
        assert sorted(merged, key=lambda r: (r["k"], r["v"])) == merged
        # Same multiset as the input.
        key = lambda r: (r["k"], r["v"])  # noqa: E731
        assert sorted(merged, key=key) == sorted(rows, key=key)
        assert stats.cluster_by == "k"

    def test_cluster_by_handles_nulls_and_mixed_types(self, tmp_path):
        rows = [{"k": 3, "v": 0}, {"k": None, "v": 1},
                {"k": "z", "v": 2}, {"k": 1, "v": 3}]
        write_records(tmp_path / "a.pql", rows, row_group_size=2)
        out = tmp_path / "sorted.pql"
        rewrite_parts([tmp_path / "a.pql"], out, cluster_by="k")
        merged = rows_of(out)
        assert merged[0]["k"] is None  # nulls first
        assert {r["v"] for r in merged} == {0, 1, 2, 3}

    def test_cluster_rebuilds_zone_maps(self, tmp_path):
        # Round-robin k values make every group's min/max span the whole
        # domain; after clustering each output group covers a narrow
        # range, which is the entire point of re-clustering.
        rows = [{"k": i % 8, "v": i} for i in range(64)]
        write_records(tmp_path / "a.pql", rows, row_group_size=8)
        out = tmp_path / "sorted.pql"
        rewrite_parts([tmp_path / "a.pql"], out, cluster_by="k",
                      row_group_rows=8)
        with ParquetLiteReader(out) as reader:
            spans = []
            for rg in reader.meta.row_groups:
                stats = rg.columns["k"].stats
                spans.append(stats.max_value - stats.min_value)
        assert max(spans) <= 1  # 8 groups x 8 rows over 8 values

    def test_schema_union_missing_columns_read_as_null(self, tmp_path):
        write_records(tmp_path / "a.pql", [{"x": 1}], row_group_size=4)
        write_records(tmp_path / "b.pql", [{"y": 2}], row_group_size=4)
        out = tmp_path / "merged.pql"
        rewrite_parts([tmp_path / "a.pql", tmp_path / "b.pql"], out)
        assert rows_of(out) == [{"x": 1, "y": None},
                                {"x": None, "y": 2}]


class TestBitvectorSoundness:
    def test_vectors_follow_rows_through_merge_and_sort(self, tmp_path):
        rows = [{"k": i, "v": i} for i in range(8)]
        # pid 7 marks even k as "may satisfy".
        bits = [[r["k"] % 2 == 0 for r in rows[g * 4:(g + 1) * 4]]
                for g in range(2)]
        make_part(tmp_path / "a.pql", rows, group_size=4,
                  bitvectors_by_group=[{7: bits[0]}, {7: bits[1]}])
        out = tmp_path / "merged.pql"
        # Reverse-ish ordering via cluster on v descending is not
        # supported; cluster on k keeps order here, so permute via a
        # second part interleaved ahead of the first.
        rewrite_parts([tmp_path / "a.pql"], out, cluster_by="k",
                      row_group_rows=4)
        with ParquetLiteReader(out) as reader:
            for g, group in enumerate(reader.row_groups()):
                vector = reader.bitvector(g, 7)
                assert vector is not None
                for position, row in enumerate(group.rows()):
                    assert vector[position] == (row["k"] % 2 == 0)

    def test_missing_vector_pads_conservative_ones(self, tmp_path):
        rows_a = [{"k": 1, "v": 1}, {"k": 2, "v": 2}]
        rows_b = [{"k": 3, "v": 3}, {"k": 4, "v": 4}]
        # Only part a carries pid 5.
        make_part(tmp_path / "a.pql", rows_a, group_size=2,
                  bitvectors_by_group=[{5: [True, False]}])
        make_part(tmp_path / "b.pql", rows_b, group_size=2,
                  bitvectors_by_group=[{}])
        out = tmp_path / "merged.pql"
        rewrite_parts([tmp_path / "a.pql", tmp_path / "b.pql"], out,
                      row_group_rows=16)
        with ParquetLiteReader(out) as reader:
            vector = reader.bitvector(0, 5)
            # a's bits preserved; b's rows padded to 1 (never skipped).
            assert vector.to_bits() == [1, 0, 1, 1]


class TestCrashAtomicity:
    def test_failure_leaves_no_output_or_temp(self, tmp_path,
                                              monkeypatch):
        rows = [{"k": i, "v": i} for i in range(8)]
        write_records(tmp_path / "a.pql", rows, row_group_size=2)
        write_records(tmp_path / "b.pql", rows, row_group_size=2)
        out = tmp_path / "merged.pql"

        def boom(src, dst):
            raise OSError("disk died mid-replace")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            rewrite_parts([tmp_path / "a.pql", tmp_path / "b.pql"], out)
        monkeypatch.undo()
        assert not out.exists()
        # Inputs intact and readable.
        assert rows_of(tmp_path / "a.pql") == rows

    def test_writer_failure_cleans_temp(self, tmp_path, monkeypatch):
        rows = [{"k": i, "v": i} for i in range(8)]
        write_records(tmp_path / "a.pql", rows, row_group_size=2)
        write_records(tmp_path / "b.pql", rows, row_group_size=2)
        out = tmp_path / "merged.pql"
        from repro.storage.columnar import ParquetLiteWriter as Writer

        def boom(self, *args, **kwargs):
            raise RuntimeError("write exploded")

        monkeypatch.setattr(Writer, "write_row_group", boom)
        with pytest.raises(RuntimeError):
            rewrite_parts([tmp_path / "a.pql", tmp_path / "b.pql"], out)
        monkeypatch.undo()
        assert not out.exists()
        assert not (tmp_path / "merged.pql.tmp").exists()


class TestValidation:
    def test_empty_inputs_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="at least one input"):
            rewrite_parts([], tmp_path / "out.pql")

    def test_bad_row_group_rows_rejected(self, tmp_path):
        write_records(tmp_path / "a.pql", [{"x": 1}])
        with pytest.raises(ValueError, match="row_group_rows"):
            rewrite_parts([tmp_path / "a.pql"], tmp_path / "out.pql",
                          row_group_rows=0)
