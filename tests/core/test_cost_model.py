"""Unit tests for the §V-D cost model."""

import pytest

from repro.core import (
    CostCoefficients,
    CostModel,
    DEFAULT_COEFFICIENTS,
    clause,
    exact,
    key_value,
    substring,
    total_cost,
)


@pytest.fixture()
def model():
    coeffs = CostCoefficients(k1=0.001, k2=0.002, k3=0.003, k4=0.004, c=0.5)
    return CostModel(coeffs, avg_record_length=100)


class TestCoefficients:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostCoefficients(-1, 0, 0, 0, 0)

    def test_vector_layout(self):
        assert DEFAULT_COEFFICIENTS.as_vector() == (
            DEFAULT_COEFFICIENTS.k1,
            DEFAULT_COEFFICIENTS.k2,
            DEFAULT_COEFFICIENTS.k3,
            DEFAULT_COEFFICIENTS.k4,
            DEFAULT_COEFFICIENTS.c,
        )


class TestSearchCost:
    def test_formula_hit_branch(self, model):
        # sel = 1: T = k1·len(p) + k2·len(t) + c
        assert model.search_cost(10, 1.0) == pytest.approx(
            0.001 * 10 + 0.002 * 100 + 0.5
        )

    def test_formula_miss_branch(self, model):
        # sel = 0: T = k3·len(p) + k4·len(t) + c
        assert model.search_cost(10, 0.0) == pytest.approx(
            0.003 * 10 + 0.004 * 100 + 0.5
        )

    def test_formula_mixes_linearly(self, model):
        hit = model.search_cost(10, 1.0)
        miss = model.search_cost(10, 0.0)
        assert model.search_cost(10, 0.25) == pytest.approx(
            0.25 * hit + 0.75 * miss
        )

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.search_cost(0, 0.5)
        with pytest.raises(ValueError):
            model.search_cost(5, 1.5)

    def test_record_length_validated(self):
        with pytest.raises(ValueError):
            CostModel(DEFAULT_COEFFICIENTS, 0)


class TestPredicateCost:
    def test_substring_is_one_search(self, model):
        pred = substring("text", "delicious")
        expected = model.search_cost(len("delicious"), 0.3)
        assert model.predicate_cost(pred, 0.3) == pytest.approx(expected)

    def test_exact_pattern_includes_quotes(self, model):
        pred = exact("name", "Bob")
        expected = model.search_cost(len('"Bob"'), 0.3)
        assert model.predicate_cost(pred, 0.3) == pytest.approx(expected)

    def test_key_value_is_two_searches(self, model):
        pred = key_value("age", 10)
        expected = (
            model.search_cost(len('"age":'), 0.1)
            + model.search_cost(len("10"), 0.1)
        )
        assert model.predicate_cost(pred, 0.1) == pytest.approx(expected)


class TestClauseCost:
    def test_disjunction_cost_is_sum(self, model):
        # Paper §V-D: disjunction cost = Σ simple costs.
        c = clause(exact("n", "A"), exact("n", "Bee"))
        expected = (
            model.predicate_cost(exact("n", "A"), 0.2)
            + model.predicate_cost(exact("n", "Bee"), 0.2)
        )
        assert model.clause_cost(c, 0.2) == pytest.approx(expected)

    def test_cost_table_covers_all(self, model):
        c1 = clause(exact("a", "x"))
        c2 = clause(key_value("b", 2))
        table = model.cost_table({c1: 0.1, c2: 0.9})
        assert set(table) == {c1, c2}
        assert all(v > 0 for v in table.values())

    def test_total_cost_helper(self, model):
        c1 = clause(exact("a", "x"))
        c2 = clause(key_value("b", 2))
        table = model.cost_table({c1: 0.1, c2: 0.9})
        assert total_cost(table, [c1, c2]) == pytest.approx(
            table[c1] + table[c2]
        )

    def test_longer_records_cost_more(self):
        short = CostModel(DEFAULT_COEFFICIENTS, 100)
        long = CostModel(DEFAULT_COEFFICIENTS, 1000)
        pred = substring("t", "kw")
        assert long.predicate_cost(pred, 0.1) > short.predicate_cost(
            pred, 0.1)

    def test_describe_mentions_coefficients(self, model):
        assert "k1=" in model.describe()
