"""Coordinated many-client loading: populations, budgets, stragglers.

CIAO's premise is that *clients* assist loading; this subsystem exercises
the optimization framework across a heterogeneous population instead of a
single simulated device.  A :class:`FleetCoordinator` runs N concurrent
clients — generated deterministically by :class:`ClientPopulation` from
the Table IV hardware profiles plus Zipf-skewed data shares — against one
(typically sharded) :class:`~repro.server.ciao.CiaoServer`, with bounded
per-channel backpressure, admission control, and straggler reassignment.
The outcome is a :class:`FleetReport`; the consistency contract is that
the fleet result equals serial single-client ingest of the union of the
per-client partitions.

**Per-client budget allocation policy.**  The fleet optimizes ONE global
pushdown plan (so predicate ids are consistent everywhere), then assigns
each client a budget-restricted *prefix* of it:

1. The administrator sets an *aggregate* budget ``B`` — the mean µs of
   predicate work per record across the fleet, in calibrated-machine
   units (paper §III's knob, fleet-wide).
2. :func:`repro.core.budgets.allocate_budgets` splits ``B × N`` across
   clients **proportionally to speed factor** and **capped by each
   client's slack**, water-filling what capped clients cannot absorb.
   Fast idle gateways therefore execute deep predicate prefixes; weak or
   duty-cycled sensors ship near-raw data and the server absorbs the
   parse cost — the trade-off the paper's introduction promises
   ("different budgets for different clients").
3. Each client's plan is ``global_plan.restrict(budget)`` — a prefix in
   greedy pick order, never a re-optimization, so every bit-vector id
   means the same thing on every chunk.  Chunks annotated with fewer
   than all pushed predicates load eagerly (§VI-B safety rule), so
   mixed-depth fleets stay exact.
4. **Online re-allocation** (``realloc_interval``): declared speed
   factors are priors, not truths.  Between loading intervals the
   coordinator measures each client's observed prefiltering throughput
   (records per wall-second from its
   :class:`~repro.simulate.runtime.CostLedger`), blends it with the
   current factors (:func:`repro.core.budgets.observed_speed_factors`),
   and re-runs the allocation; clients swap to their new prefix at the
   next chunk boundary.  Dead clients drop out and their budget share
   flows to survivors.
"""

from .allocation import (
    FleetAllocation,
    FleetBudgetAllocator,
    uniform_allocation,
)
from .coordinator import DEFAULT_MAX_PENDING, FleetCoordinator
from .population import (
    REFERENCE_PLATFORM,
    ClientPopulation,
    FleetClientSpec,
)
from .report import ClientRunReport, FleetReport

__all__ = [
    "ClientPopulation",
    "ClientRunReport",
    "DEFAULT_MAX_PENDING",
    "FleetAllocation",
    "FleetBudgetAllocator",
    "FleetClientSpec",
    "FleetCoordinator",
    "FleetReport",
    "REFERENCE_PLATFORM",
    "uniform_allocation",
]
