"""Smoke tests for every per-figure experiment at tiny scale.

These guarantee the benchmark harness stays runnable; the real scale lives
in ``benchmarks/``.
"""

import math

import pytest

from repro.bench import (
    ExperimentConfig,
    cost_model_experiment,
    end_to_end_sweep,
    headline_speedups,
    metrics_table,
    overlap_experiment,
    selectivity_experiment,
    skewness_experiment,
    skipping_benefit_sweep,
    speedup_summary,
)

TINY = dict(n_records=500, chunk_size=100, sample_size=400)


class TestEndToEndSweep:
    def test_fig3_shape(self, tmp_path):
        config = ExperimentConfig(dataset="winlog", **TINY)
        sweep = end_to_end_sweep(
            "winlog", tmp_path, config=config, labels=("A",),
            n_queries=8, budgets=[0, 2],
        )
        runs = sweep["A"]
        assert len(runs) == 2
        assert runs[0].budget_us == 0 and runs[0].n_pushed == 0
        assert runs[1].n_pushed > 0
        # Reporting helpers render without error.
        assert "budget" in metrics_table(runs)
        assert "speedups" in speedup_summary(runs[0], runs[1:])

    def test_headline_speedups_structure(self, tmp_path):
        config = ExperimentConfig(dataset="winlog", **TINY)
        sweep = end_to_end_sweep(
            "winlog", tmp_path, config=config, labels=("A",),
            n_queries=8, budgets=[0, 2],
        )
        best = headline_speedups(sweep)
        assert set(best) == {"loading", "query", "end_to_end"}
        assert best["query"] > 0

    def test_config_dataset_mismatch_rejected(self, tmp_path):
        config = ExperimentConfig(dataset="yelp", **TINY)
        with pytest.raises(ValueError):
            end_to_end_sweep("winlog", tmp_path, config=config)


class TestFig6:
    def test_skipping_fraction_series(self, tmp_path):
        config = ExperimentConfig(dataset="ycsb", **TINY)
        series = skipping_benefit_sweep(
            tmp_path, config=config, n_queries=10, budgets=[10, 40]
        )
        assert [b for b, _ in series] == [10, 40]
        assert all(0.0 <= f <= 1.0 for _, f in series)


class TestMicroExperiments:
    def test_selectivity_levels(self, tmp_path):
        config = ExperimentConfig(dataset="winlog", **TINY)
        results = selectivity_experiment(tmp_path, config=config)
        assert [r.level for r in results] == [
            "sel=0.35", "sel=0.15", "sel=0.01"
        ]
        ratios = [r.loading_ratio for r in results]
        assert ratios == sorted(ratios, reverse=True)  # Fig. 7's shape
        assert all(len(r.per_query_s) == 5 for r in results)

    def test_overlap_levels(self, tmp_path):
        config = ExperimentConfig(dataset="winlog", **TINY)
        results = overlap_experiment(tmp_path, config=config)
        by_level = {r.level: r for r in results}
        # Fig. 9's shape: only the high-overlap workload partially loads.
        assert by_level["low"].loading_ratio == 1.0
        assert by_level["medium"].loading_ratio == 1.0
        assert by_level["high"].loading_ratio < 1.0

    def test_skewness_levels(self, tmp_path):
        config = ExperimentConfig(dataset="winlog", **TINY)
        results = skewness_experiment(tmp_path, config=config)
        by_level = {r.level: r for r in results}
        # Fig. 11's shape: only the highly skewed workload partially loads.
        assert by_level["skew=0.0"].loading_ratio == 1.0
        assert by_level["skew=0.5"].loading_ratio == 1.0
        assert by_level["skew=2.0"].loading_ratio < 1.0


class TestTable4:
    def test_cost_model_rows(self):
        rows = cost_model_experiment(
            predicates_per_dataset=25,
            hit_rate_records=120,
            include_real_local=True,
            real_records=60,
        )
        platforms = [r.platform for r in rows]
        assert platforms[:3] == ["local", "alibaba", "pku"]
        assert platforms[3] == "this-machine"
        simulated = {r.platform: r for r in rows[:3]}
        # The Table IV ordering: cloud VM fits worst, cluster best.
        assert simulated["pku"].r_squared > simulated["alibaba"].r_squared
        assert simulated["local"].r_squared > simulated["alibaba"].r_squared
        assert math.isnan(rows[3].paper_r_squared)
