"""Client-side predicate evaluation: raw records → bit-vectors.

This is the code that runs "on the sensor": for every pushed-down predicate
it runs the compiled pattern matcher over each raw record and packs the
outcomes into one bit-vector per predicate (paper §IV).  No JSON parsing
happens here — that is the whole point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from ..bitvec.bitvector import BitVector
from ..core.optimizer import PushdownEntry
from ..rawjson.chunks import JsonChunk


@dataclass
class EvaluationReport:
    """Per-chunk accounting from the evaluator."""

    records: int = 0
    predicates: int = 0
    matches: Dict[int, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    modeled_us: float = 0.0

    def modeled_us_per_record(self) -> float:
        """Modeled client cost per record — compare against the budget."""
        if self.records == 0:
            return 0.0
        return self.modeled_us / self.records


class ClientEvaluator:
    """Evaluate a pushdown plan's predicates over raw JSON records."""

    def __init__(self, entries: Sequence[PushdownEntry]):
        self._entries = list(entries)
        self._matchers: List[Callable[[str], bool]] = [
            entry.compiled.matcher() for entry in self._entries
        ]

    @property
    def predicate_ids(self) -> List[int]:
        """Ids this evaluator annotates."""
        return [entry.predicate_id for entry in self._entries]

    def annotate(self, chunk: JsonChunk) -> EvaluationReport:
        """Attach one bit-vector per pushed predicate to *chunk*."""
        report = EvaluationReport(
            records=len(chunk.records), predicates=len(self._entries)
        )
        start = time.perf_counter()
        for entry, matcher in zip(self._entries, self._matchers):
            bv = BitVector(len(chunk.records))
            hits = 0
            for i, raw in enumerate(chunk.records):
                if matcher(raw):
                    bv.set(i)
                    hits += 1
            chunk.attach(entry.predicate_id, bv)
            report.matches[entry.predicate_id] = hits
        report.wall_seconds = time.perf_counter() - start
        report.modeled_us = len(chunk.records) * sum(
            entry.cost_us for entry in self._entries
        )
        return report
