"""Computation budgets and their allocation across heterogeneous clients.

The budget ``B`` is the administrator's knob (paper §III): the average µs of
predicate-evaluation work a client may spend per new record.  The paper's
introduction also promises "different budgets for different clients" to
balance client cost against server savings; :func:`allocate_budgets`
implements that policy layer — faster or idler clients receive a larger
share of the aggregate filtering work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence


@dataclass(frozen=True)
class Budget:
    """A per-record client computation budget in microseconds."""

    microseconds_per_record: float

    def __post_init__(self) -> None:
        if self.microseconds_per_record < 0:
            raise ValueError("budgets must be non-negative")

    @property
    def us(self) -> float:
        """The budget value (µs/record), spelled for formulas."""
        return self.microseconds_per_record

    def scaled(self, factor: float) -> "Budget":
        """A budget scaled by *factor* (e.g. for a slower client)."""
        if factor < 0:
            raise ValueError("scale factors must be non-negative")
        return Budget(self.microseconds_per_record * factor)

    def __str__(self) -> str:
        return f"{self.microseconds_per_record:g} µs/record"


@dataclass(frozen=True)
class ClientProfile:
    """What the server knows about one client when allocating budgets.

    Attributes:
        client_id: Stable identifier.
        speed_factor: Relative per-operation speed (1.0 = the machine the
            cost model was calibrated on; 0.5 = half as fast, so each unit
            of modeled work costs twice the wall-clock).
        slack_us_per_record: The client's self-reported idle capacity per
            record, in *its own* µs.
    """

    client_id: str
    speed_factor: float = 1.0
    slack_us_per_record: float = float("inf")

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise ValueError("speed factor must be positive")
        if self.slack_us_per_record < 0:
            raise ValueError("slack must be non-negative")


def allocate_budgets(clients: Sequence[ClientProfile],
                     aggregate_budget: Budget) -> Dict[str, Budget]:
    """Split an aggregate budget across clients, respecting slack caps.

    The aggregate budget is expressed in calibrated-machine µs per record.
    Allocation is proportional to each client's speed factor (a faster
    client converts more modeled µs per unit wall-clock) and capped by its
    slack.  Water-filling redistributes what capped clients cannot absorb.

    Returns per-client budgets in *modeled* µs/record — directly usable as
    the knapsack bound for that client's predicate selection.
    """
    if not clients:
        raise ValueError("need at least one client")
    ids = [c.client_id for c in clients]
    if len(set(ids)) != len(ids):
        raise ValueError("client ids must be unique")
    total = aggregate_budget.us * len(clients)
    remaining = {c.client_id: c for c in clients}
    allocation: Dict[str, float] = {c.client_id: 0.0 for c in clients}
    # Water-filling: hand out budget proportional to speed; clients that hit
    # their slack cap drop out and the leftover is re-spread.
    leftover = total
    while leftover > 1e-12 and remaining:
        weight_sum = sum(c.speed_factor for c in remaining.values())
        next_round: Dict[str, ClientProfile] = {}
        distributed = 0.0
        for client in remaining.values():
            share = leftover * client.speed_factor / weight_sum
            cap = client.slack_us_per_record * client.speed_factor
            headroom = cap - allocation[client.client_id]
            grant = min(share, headroom)
            allocation[client.client_id] += grant
            distributed += grant
            if grant < share - 1e-15:
                continue  # capped: exclude from future rounds
            next_round[client.client_id] = client
        leftover -= distributed
        if not next_round or distributed <= 1e-15:
            break  # everyone capped; undistributable budget is dropped
        remaining = next_round
    return {cid: Budget(us) for cid, us in allocation.items()}


def observed_speed_factors(
    throughput: Mapping[str, float],
    prior: Optional[Mapping[str, float]] = None,
    blend: float = 0.5,
) -> Dict[str, float]:
    """Speed factors inferred from observed per-client throughput.

    *throughput* maps client ids to any proportional rate measurement
    (records/s, chunks/s, modeled µs of work retired per wall second).
    Throughput only carries *relative* speed, so the rates are mapped
    onto the absolute scale of the *prior* (e.g. the declared speed
    factors the fleet started with): observed factors are normalized so
    their mean equals the prior's mean — a uniformly slow fleet stays
    uniformly slow instead of drifting toward nominal, which matters
    because :func:`allocate_budgets` converts slack caps through the
    absolute factor (``cap = slack × speed``).  Without a prior the mean
    is 1.0.  Clients with no observation yet (rate <= 0) keep the mean
    factor.

    The observation is exponentially blended:
    ``blend * observed + (1 - blend) * prior`` — one noisy interval then
    cannot swing an allocation to an extreme.  This is the re-allocation
    entry point fleet coordinators call between loading intervals.
    """
    if not throughput:
        raise ValueError("need at least one throughput observation")
    if not 0.0 <= blend <= 1.0:
        raise ValueError(f"blend must be in [0, 1], got {blend}")
    scale = 1.0
    if prior:
        known = [prior[cid] for cid in throughput if cid in prior]
        if known:
            scale = sum(known) / len(known)
    positive = [rate for rate in throughput.values() if rate > 0]
    if not positive:
        # Nothing measured yet: everyone keeps the prior scale.
        return {
            cid: prior.get(cid, scale) if prior else scale
            for cid in throughput
        }
    mean = sum(positive) / len(positive)
    factors: Dict[str, float] = {}
    for cid, rate in throughput.items():
        observed = rate / mean * scale if rate > 0 else scale
        if prior is not None and cid in prior:
            observed = blend * observed + (1.0 - blend) * prior[cid]
        factors[cid] = max(observed, 1e-6)
    return factors


def budget_sweep(values: Sequence[float]) -> List[Budget]:
    """Budgets for an experiment sweep (e.g. Fig. 3's 0,1,3,5,7,9 µs)."""
    return [Budget(v) for v in values]
