"""Fig. 10 — per-query execution time vs predicate overlap.

Same workloads as Fig. 9.  Expected shape: even without partial loading,
more overlap means more queries include a pushed-down predicate and gain
from skipping (low: q0–q1; medium: q0–q3); high overlap pairs skipping
with partial loading and is fastest across the board.
"""

from conftest import config_for, run_once

from repro.bench import emit_table, overlap_experiment

PARAMS = config_for("winlog", n_records=4000, n_queries=5)


def test_fig10_overlap_query(benchmark, tmp_path, results_dir):
    def experiment():
        return overlap_experiment(tmp_path, config=PARAMS["config"])

    results = run_once(benchmark, experiment)
    headers = ["query"] + [r.level for r in results] + ["baseline(low)"]
    rows = []
    for i in range(5):
        row = [f"q{i}"]
        row.extend(r.per_query_s[i] for r in results)
        row.append(results[0].baseline.per_query_wall_s[i])
        rows.append(row)
    emit_table("fig10_overlap_query", headers, rows, results_dir,
               title="Fig 10")

    by_level = {r.level: r.metrics for r in results}
    # Covered-query counts rise with overlap (2 / 4 / 5 of 5).
    assert by_level["low"].queries_using_skipping == 2
    assert by_level["medium"].queries_using_skipping == 4
    assert by_level["high"].queries_using_skipping == 5
    # Total query time: high overlap is fastest.
    totals = {level: m.query_wall_s for level, m in by_level.items()}
    assert totals["high"] < totals["low"]
