"""Deterministic text generation for the synthetic datasets.

The Yelp substitute needs review text in which specific keywords occur with
controlled probability (so ``text LIKE '%delicious%'`` has a known, tunable
selectivity), and the Windows-log substitute needs log messages with the same
property for its 200 ``info LIKE`` candidates.  A tiny vocabulary keeps
records realistic-looking without importing any external corpus.
"""

from __future__ import annotations

import random
from typing import List, Sequence

# A compact general-purpose vocabulary.  None of these words are used as
# predicate keywords, so keyword selectivities are controlled purely by
# explicit planting below.
WORDS: Sequence[str] = (
    "the quick brown fox jumps over lazy dog pack my box with five dozen "
    "liquor jugs how vexingly daft zebras jump bright vixens watch waltz bad "
    "nymph for jocks glib quiz sphinx of black quartz judge my vow crazy "
    "frederick bought many very exquisite opal jewels jackdaws love big "
    "amazing service came back again highly recommend place food staff time "
    "people really nice great good just like when they also there what your "
    "which their would about other into more some could them these than then "
    "now look only come its over think back after work first well even new "
    "want because any give day most us table order menu night lunch dinner "
    "visit price value clean fresh warm cold fast slow busy quiet small large"
).split()

FIRST_NAMES: Sequence[str] = (
    "Alice Bob Carol David Erin Frank Grace Henry Ivy Jack Karen Leo Mona "
    "Nate Olga Paul Quinn Rosa Sam Tina Uma Victor Wendy Xavier Yara Zack"
).split()

LAST_NAMES: Sequence[str] = (
    "Anderson Brown Chen Davis Evans Fischer Garcia Hansen Ito Jones Kim "
    "Lopez Miller Nguyen Olsen Patel Quirk Rossi Smith Taylor Ueda Vargas "
    "Wong Xu Young Zhang"
).split()

STREETS: Sequence[str] = (
    "Main St", "Oak Ave", "Pine Rd", "Maple Dr", "Cedar Ln",
    "Elm St", "Lake Rd", "Hill Ave", "Park Blvd", "River Way",
)

CITIES: Sequence[str] = (
    "Springfield", "Rivertown", "Lakeside", "Hillview", "Brookfield",
    "Fairmont", "Georgetown", "Ashland", "Milton", "Clayton",
)


def word(rng: random.Random) -> str:
    """One vocabulary word."""
    return WORDS[rng.randrange(len(WORDS))]


def sentence(rng: random.Random, n_words: int = 8) -> str:
    """A capitalized sentence of *n_words* vocabulary words."""
    if n_words <= 0:
        raise ValueError("a sentence needs at least one word")
    words = [word(rng) for _ in range(n_words)]
    words[0] = words[0].capitalize()
    return " ".join(words) + "."


def paragraph(rng: random.Random, n_sentences: int = 3,
              keywords: Sequence[str] = (),
              keyword_probs: Sequence[float] = ()) -> str:
    """Sentences with keywords independently planted by probability.

    Each ``keywords[i]`` is inserted at a random position with probability
    ``keyword_probs[i]``, giving a ``LIKE '%kw%'`` predicate a selectivity of
    (approximately) that probability.
    """
    if len(keywords) != len(keyword_probs):
        raise ValueError("keywords and keyword_probs must align")
    sentences = [sentence(rng, rng.randint(5, 12)) for _ in range(n_sentences)]
    text = " ".join(sentences)
    tokens = text.split(" ")
    for keyword, prob in zip(keywords, keyword_probs):
        if rng.random() < prob:
            position = rng.randrange(len(tokens) + 1)
            tokens.insert(position, keyword)
    return " ".join(tokens)


def full_name(rng: random.Random) -> str:
    """A synthetic "First Last" name."""
    first = FIRST_NAMES[rng.randrange(len(FIRST_NAMES))]
    last = LAST_NAMES[rng.randrange(len(LAST_NAMES))]
    return f"{first} {last}"


def street_address(rng: random.Random) -> str:
    """A synthetic street address."""
    number = rng.randint(1, 9999)
    street = STREETS[rng.randrange(len(STREETS))]
    return f"{number} {street}"


def city(rng: random.Random) -> str:
    """A synthetic city name."""
    return CITIES[rng.randrange(len(CITIES))]


def hex_id(rng: random.Random, length: int = 22) -> str:
    """A random identifier like Yelp's review/business ids."""
    alphabet = "0123456789abcdef"
    return "".join(alphabet[rng.randrange(16)] for _ in range(length))


def keyword_pool(prefix: str, count: int) -> List[str]:
    """Deterministic keyword tokens (``prefix000`` ...) for LIKE templates.

    Using synthetic tokens instead of vocabulary words guarantees a keyword
    never occurs unless explicitly planted, so planted probability equals
    true selectivity.
    """
    if count <= 0:
        raise ValueError("keyword pools must be non-empty")
    width = max(3, len(str(count - 1)))
    return [f"{prefix}{i:0{width}d}" for i in range(count)]
