"""Unit tests for predicate pools."""

import random

import pytest

from repro.core import clause, exact
from repro.workload import PredicatePool


class TestConstruction:
    def test_from_templates_expands_everything(self):
        pool = PredicatePool.from_templates("winlog")
        assert len(pool) == 200 + 12 + 31 + 24 + 60 + 60

    def test_shuffle_is_deterministic_per_seed(self):
        a = PredicatePool.from_templates("yelp", rng=random.Random(3))
        b = PredicatePool.from_templates("yelp", rng=random.Random(3))
        c = PredicatePool.from_templates("yelp", rng=random.Random(4))
        assert a.clauses == b.clauses
        assert a.clauses != c.clauses

    def test_max_per_template_truncates(self):
        pool = PredicatePool.from_templates("ycsb", max_per_template=3)
        # 7 templates truncate to 3; isActive and email only have 2.
        assert len(pool) == 7 * 3 + 2 + 2

    def test_duplicates_rejected(self):
        c = clause(exact("a", "b"))
        with pytest.raises(ValueError):
            PredicatePool("x", [c, c])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PredicatePool("x", [])


class TestAccess:
    def test_rank_lookup(self):
        c1, c2 = clause(exact("a", "1")), clause(exact("a", "2"))
        pool = PredicatePool("x", [c1, c2])
        assert pool[0] == c1
        assert pool.rank_of(c2) == 1
        assert c1 in pool

    def test_subset(self):
        clauses = [clause(exact("a", str(i))) for i in range(5)]
        pool = PredicatePool("x", clauses)
        assert pool.subset([4, 0]) == [clauses[4], clauses[0]]

    def test_clauses_view_is_a_copy(self):
        pool = PredicatePool("x", [clause(exact("a", "1"))])
        view = pool.clauses
        view.append(clause(exact("a", "2")))
        assert len(pool) == 1
