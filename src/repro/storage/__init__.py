"""Parquet-lite: the from-scratch columnar storage substrate, plus the raw
JSON sideline store used by partial loading."""

from .columnar import (
    ParquetLiteError,
    ParquetLiteReader,
    ParquetLiteWriter,
    write_records,
)
from .encodings import Encoding, EncodingError, choose_encoding
from .jsonstore import CompositeSidelineView, JsonSideStore, SidelineView
from .metadata import MAGIC, ColumnChunkMeta, FileMeta, RowGroupMeta
from .pages import PageStats, page_encoding, read_page, write_page
from .rowgroup import RowGroupReader, build_row_group
from .schema import (
    ColumnType,
    Field,
    Schema,
    SchemaError,
    coerce_value,
    infer_schema,
)

__all__ = [
    "ColumnChunkMeta",
    "ColumnType",
    "CompositeSidelineView",
    "Encoding",
    "EncodingError",
    "Field",
    "FileMeta",
    "JsonSideStore",
    "MAGIC",
    "PageStats",
    "ParquetLiteError",
    "ParquetLiteReader",
    "ParquetLiteWriter",
    "RowGroupMeta",
    "RowGroupReader",
    "Schema",
    "SchemaError",
    "SidelineView",
    "build_row_group",
    "choose_encoding",
    "coerce_value",
    "infer_schema",
    "page_encoding",
    "read_page",
    "write_page",
    "write_records",
]
