"""CiaoService + RemoteSession: the full conversation over real sockets."""

import threading

import pytest

from repro.api import (
    Budget,
    CiaoSession,
    DeploymentConfig,
    Query,
    Workload,
    clause,
    key_value,
    substring,
)
from repro.core.plan_io import dumps_plan
from repro.service import (
    CiaoService,
    RemoteBusyError,
    RemoteError,
    RemoteSession,
    canonical_result_bytes,
    result_from_payload,
    result_to_payload,
)
from repro.transport import LossyChannel, SocketChannel
from repro.transport import wire
from repro.transport.wire import decode_message, encode_message

SEED = 1234
N_RECORDS = 900
SQL_COUNT = "SELECT COUNT(*) FROM t"


@pytest.fixture()
def workload():
    five_stars = clause(key_value("stars", 5))
    tasty = clause(substring("text", "tasty000"))
    return Workload(
        (Query((five_stars, tasty), name="rave"),
         Query((tasty,), name="kw")),
        dataset="yelp",
    )


@pytest.fixture()
def planned_session(workload, tmp_path):
    session = CiaoSession(workload, source="yelp", seed=SEED,
                          data_dir=tmp_path / "served")
    session.plan(Budget(1.0))
    yield session
    session.close()


@pytest.fixture()
def service(planned_session):
    with CiaoService(planned_session) as service:
        yield service


class TestConversation:
    def test_handshake_reports_mode(self, service):
        with RemoteSession(service.address) as remote:
            assert remote.server_mode == "serial"

    def test_protocol_mismatch_rejected(self, service):
        channel = SocketChannel.connect(service.address)
        channel.send(encode_message(wire.HELLO, {"protocol": 99}))
        reply = decode_message(channel.receive_wait(5.0))
        assert reply.tag == wire.ERROR
        assert "protocol" in reply.header["error"]
        channel.close()

    def test_malformed_message_gets_error_reply(self, service):
        channel = SocketChannel.connect(service.address)
        channel.send(b"garbage, not a wire message")
        reply = decode_message(channel.receive_wait(5.0))
        assert reply.tag == wire.ERROR
        channel.close()

    def test_plan_round_trips_the_wire(self, planned_session, service):
        """Satellite: plan_io documents survive the socket byte-exact."""
        with RemoteSession(service.address) as remote:
            fetched = remote.fetch_plan()
        local = planned_session.pushdown_plan
        assert dumps_plan(fetched) == dumps_plan(local)
        assert [e.predicate_id for e in fetched.entries] == \
            [e.predicate_id for e in local.entries]

    def test_plan_absent_reported(self, workload, tmp_path):
        session = CiaoSession(workload, source="yelp", seed=SEED,
                              data_dir=tmp_path / "unplanned")
        with CiaoService(session) as service:
            with RemoteSession(service.address) as remote:
                assert remote.fetch_plan() is None
        session.close()


class TestRemoteLoadAndQuery:
    def test_remote_load_matches_in_process(self, workload, tmp_path,
                                            planned_session, service):
        # Local twin: same plan, same records, loaded in process.
        twin = CiaoSession(workload, source="yelp", seed=SEED,
                           data_dir=tmp_path / "twin")
        twin.plan(Budget(1.0))
        twin.load(n_records=N_RECORDS).result()

        with RemoteSession(service.address, client_id="c1",
                           seed=SEED) as remote:
            accepted = remote.load("yelp", n_records=N_RECORDS)
            assert accepted > 0
            report = remote.commit()
            assert report["received"] == N_RECORDS
            assert report["received"] == (
                report["loaded"] + report["sidelined"]
                + report["malformed"]
            )
            for sql in (SQL_COUNT,
                        "SELECT COUNT(*) FROM t WHERE stars = 5"):
                assert canonical_result_bytes(remote.query(sql)) == \
                    canonical_result_bytes(twin.query(sql))
        twin.close()

    def test_result_payload_round_trip(self, planned_session, service):
        with RemoteSession(service.address, seed=SEED) as remote:
            remote.load("yelp", n_records=N_RECORDS)
            remote.commit()
            result = remote.query(SQL_COUNT)
        clone = result_from_payload(result_to_payload(result))
        assert clone.rows == result.rows
        assert clone.stats == result.stats
        assert clone.plan_info == result.plan_info

    def test_two_clients_one_load(self, planned_session, service):
        a = RemoteSession(service.address, client_id="a", seed=SEED)
        b = RemoteSession(service.address, client_id="b", seed=SEED)
        a.load("yelp", n_records=400, source_id="a")
        b.load("yelp", n_records=200, source_id="b")
        report = a.commit()
        assert report["received"] == 600
        assert a.query(SQL_COUNT).scalar() == 600
        assert b.query(SQL_COUNT).scalar() == 600
        a.close()
        b.close()

    def test_duplicate_source_id_rejected(self, service):
        with RemoteSession(service.address, seed=SEED) as remote:
            remote.load("yelp", n_records=100, source_id="dup")
            with pytest.raises(RemoteError, match="dup"):
                remote.load("yelp", n_records=100, source_id="dup")

    def test_query_before_commit_refused_on_serial(self, service):
        with RemoteSession(service.address, seed=SEED) as remote:
            remote.load("yelp", n_records=100)
            with pytest.raises(RemoteError, match="COMMIT"):
                remote.query(SQL_COUNT)
            remote.commit()
            assert remote.query(SQL_COUNT).scalar() == 100

    def test_bad_sql_is_error_not_disconnect(self, planned_session,
                                             service):
        with RemoteSession(service.address, seed=SEED) as remote:
            remote.load("yelp", n_records=100)
            remote.commit()
            with pytest.raises(RemoteError):
                remote.query("THIS IS NOT SQL")
            # The connection survived the error.
            assert remote.query(SQL_COUNT).scalar() == 100

    def test_concurrent_ingest_from_many_connections(self, service):
        """Regression: parallel router threads feed one serial loader.

        Three clients stream interleaved CHUNKS messages from their own
        connections; unsynchronized loader ingest used to corrupt the
        sealed Parquet file (queries then failed decoding pages).
        """
        n_clients, per_client = 3, 600
        errors = []

        def loader(i):
            try:
                with RemoteSession(service.address, client_id=f"m{i}",
                                   chunk_size=50,
                                   seed=SEED + i) as remote:
                    remote.load("yelp", n_records=per_client,
                                source_id=f"m{i}", batch_size=1)
            except Exception as exc:  # pragma: no cover - regression
                errors.append(exc)

        threads = [threading.Thread(target=loader, args=(i,))
                   for i in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        with RemoteSession(service.address, client_id="commit") as remote:
            report = remote.commit()
            total = n_clients * per_client
            assert report["received"] == total
            assert remote.query(SQL_COUNT).scalar() == total
            # Decodes pages and scans the sideline: corruption of either
            # surfaces here, not in COUNT bookkeeping.
            filtered = remote.query(
                "SELECT COUNT(*) FROM t WHERE stars = 5"
            ).scalar()
            assert 0 <= filtered <= total

    def test_lossy_channel_injected_zero_record_loss(self, service):
        """Satellite: seeded fault injection against the real wire."""
        lossy = LossyChannel(SocketChannel.connect(service.address),
                             drop_rate=0.3, seed=77)
        with RemoteSession(channel=lossy, client_id="flaky",
                           seed=SEED) as remote:
            remote.load("yelp", n_records=N_RECORDS)
            report = remote.commit()
            assert report["received"] == N_RECORDS
            assert remote.query(SQL_COUNT).scalar() == N_RECORDS
        assert lossy.stats.messages_dropped > 0


class TestStreamingService:
    def test_snapshot_queries_during_thread_load(self, workload,
                                                 tmp_path):
        config = DeploymentConfig(mode="sharded", n_shards=2,
                                  shard_mode="thread", chunk_size=100,
                                  seal_interval=2)
        session = CiaoSession(workload, source="yelp", seed=SEED,
                              config=config,
                              data_dir=tmp_path / "streaming")
        session.plan(Budget(1.0))
        with CiaoService(session) as service:
            job = session.load(n_records=N_RECORDS)
            counts = []
            with RemoteSession(service.address,
                               client_id="reader") as remote:
                while not job.done:
                    counts.append(
                        remote.snapshot_query(SQL_COUNT).scalar()
                    )
                report = job.result()
                final = remote.query(SQL_COUNT).scalar()
            assert report.no_record_loss
            assert final == N_RECORDS
            assert all(0 <= c <= N_RECORDS for c in counts)
            assert counts == sorted(counts), (
                "mid-load snapshot counts regressed"
            )
        session.close()


class TestAdmissionOnTheWire:
    def test_busy_on_saturation(self, planned_session):
        with CiaoService(planned_session, query_max_active=1,
                         query_max_pending=1,
                         admission_timeout=0.05) as service:
            with RemoteSession(service.address, seed=SEED) as loader:
                loader.load("yelp", n_records=200)
                loader.commit()
            busy = []

            def hammer():
                with RemoteSession(service.address,
                                   client_id="shared") as remote:
                    for _ in range(6):
                        try:
                            remote.query(SQL_COUNT)
                        except RemoteBusyError:
                            busy.append(1)

            threads = [threading.Thread(target=hammer)
                       for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert busy, "burst never saw BUSY through the wire"
            assert service.admission.stats.rejected == len(busy)
            # Saturation healed: a fresh client is served.
            with RemoteSession(service.address,
                               client_id="after") as remote:
                assert remote.query(SQL_COUNT).scalar() == 200


class TestServiceLifecycle:
    def test_max_connections_turns_peers_away(self, planned_session):
        with CiaoService(planned_session,
                         max_connections=1) as service:
            first = RemoteSession(service.address)
            # The second dial connects at TCP level but is turned away
            # with BUSY during the handshake.
            with pytest.raises(RemoteBusyError, match="max_connections"):
                RemoteSession(service.address)
            first.close()

    def test_close_is_idempotent_and_disconnects(self, planned_session):
        service = CiaoService(planned_session)
        remote = RemoteSession(service.address)
        service.close()
        service.close()
        assert service.closed
        with pytest.raises(RemoteError):
            remote.query(SQL_COUNT)
        remote.close()

    def test_connection_count_tracks_clients(self, service):
        import time

        assert service.connection_count == 0
        with RemoteSession(service.address):
            assert service.connection_count == 1
        deadline = time.monotonic() + 5.0
        while service.connection_count and time.monotonic() < deadline:
            time.sleep(0.01)
        assert service.connection_count == 0
