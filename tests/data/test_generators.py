"""Unit tests for the three synthetic dataset generators."""

import json

import pytest

from repro.data import GENERATORS, make_generator
from repro.data import winlog, ycsb, yelp
from repro.rawjson import dump_record, loads


@pytest.mark.parametrize("name", sorted(GENERATORS))
class TestCommonContract:
    def test_deterministic_given_seed(self, name):
        a = list(make_generator(name, 5).raw_lines(30))
        b = list(make_generator(name, 5).raw_lines(30))
        assert a == b

    def test_seed_changes_output(self, name):
        a = list(make_generator(name, 5).raw_lines(30))
        b = list(make_generator(name, 6).raw_lines(30))
        assert a != b

    def test_records_parse_with_both_parsers(self, name):
        for line in make_generator(name, 7).raw_lines(20):
            assert loads(line) == json.loads(line)

    def test_sample_does_not_consume_main_stream(self, name):
        gen = make_generator(name, 9)
        before = list(gen.raw_lines(10))
        gen2 = make_generator(name, 9)
        gen2.sample(50)
        after = list(gen2.raw_lines(10))
        assert before == after

    def test_average_record_length_positive(self, name):
        assert make_generator(name, 1).average_record_length(50) > 50

    def test_negative_count_rejected(self, name):
        with pytest.raises(ValueError):
            list(make_generator(name, 1).generate(-1))


def test_unknown_dataset_rejected():
    with pytest.raises(KeyError):
        make_generator("nope")


class TestYelpShape:
    def test_fields(self):
        record = next(make_generator("yelp", 3).generate(1))
        assert set(record) == {
            "review_id", "user_id", "business_id", "stars", "useful",
            "funny", "cool", "text", "date",
        }
        assert 1 <= record["stars"] <= 5
        assert 0 <= record["useful"] <= 99

    def test_date_format_and_year_domain(self):
        for record in make_generator("yelp", 3).generate(50):
            year, month, day = record["date"].split("-")
            assert int(year) in yelp.YEARS
            assert 1 <= int(month) <= 12
            assert 1 <= int(day) <= 28

    def test_top_users_are_frequent(self):
        sample = list(make_generator("yelp", 3).generate(3000))
        top = yelp.top_user_ids(1)[0]
        share = sum(1 for r in sample if r["user_id"] == top) / len(sample)
        assert share == pytest.approx(
            yelp.user_id_probability(0), abs=0.05
        )

    def test_text_keyword_selectivities(self):
        sample = list(make_generator("yelp", 3).generate(4000))
        for keyword, prob in zip(yelp.TEXT_KEYWORDS,
                                 yelp.TEXT_KEYWORD_PROBS):
            share = sum(
                1 for r in sample if keyword in r["text"]
            ) / len(sample)
            assert share == pytest.approx(prob, abs=0.035), keyword


class TestWinlogShape:
    def test_fields_and_time_format(self):
        for record in make_generator("winlog", 3).generate(30):
            assert set(record) == {
                "event_id", "time", "level", "component", "info"
            }
            date, clock = record["time"].split(" ")
            assert len(date.split("-")) == 3
            assert len(clock.split(":")) == 3

    def test_event_ids_are_monotone(self):
        ids = [r["event_id"] for r in make_generator("winlog", 3).generate(50)]
        assert ids == list(range(50))

    def test_component_selectivities_match_weights(self):
        sample = list(make_generator("winlog", 3).generate(6000))
        for component, weight in winlog.COMPONENTS:
            share = sum(
                1 for r in sample if r["component"] == component
            ) / len(sample)
            assert share == pytest.approx(weight, abs=0.03), component

    def test_selectivity_plateaus(self):
        sample = list(make_generator("winlog", 3).generate(8000))
        for level, _ in winlog.SELECTIVITY_PLATEAUS:
            for rank in winlog.plateau_keyword_ranks(level):
                keyword = winlog.INFO_KEYWORDS[rank]
                share = sum(
                    1 for r in sample if keyword in r["info"]
                ) / len(sample)
                tolerance = max(0.035, level * 0.35)
                assert share == pytest.approx(level, abs=tolerance), (
                    level, keyword, share
                )

    def test_plateau_rank_lookup_validates(self):
        with pytest.raises(KeyError):
            winlog.plateau_keyword_ranks(0.5)

    def test_component_selectivity_helper(self):
        assert winlog.component_selectivity("CBS") == 0.35
        with pytest.raises(KeyError):
            winlog.component_selectivity("nope")


class TestYcsbShape:
    def test_25_top_level_attributes(self):
        record = next(make_generator("ycsb", 3).generate(1))
        assert len(record) == 25

    def test_nested_structures_present(self):
        record = next(make_generator("ycsb", 3).generate(1))
        assert isinstance(record["address"], dict)
        assert isinstance(record["children"], list)
        assert isinstance(record["visited_places"], list)

    def test_domains(self):
        for record in make_generator("ycsb", 3).generate(100):
            assert record["phone_country"] in [
                c for c, _ in ycsb.PHONE_COUNTRIES
            ]
            assert record["age_group"] in [g for g, _ in ycsb.AGE_GROUPS]
            assert 0 <= record["linear_score"] <= 99
            assert record["email"].split("@")[1] in ycsb.EMAIL_PROVIDERS

    def test_url_contains_site_and_domain(self):
        for record in make_generator("ycsb", 3).generate(50):
            assert any(
                f"//{site}." in record["url"] for site in ycsb.URL_SITES
            )
            assert any(
                f".{domain}/" in record["url"] for domain in ycsb.URL_DOMAINS
            )

    def test_is_active_rate(self):
        sample = list(make_generator("ycsb", 3).generate(4000))
        share = sum(1 for r in sample if r["isActive"]) / len(sample)
        assert share == pytest.approx(ycsb.ACTIVE_PROB, abs=0.03)

    def test_serialized_length_reasonable(self):
        # 25 attributes of customer data: a few hundred bytes per record.
        record = next(make_generator("ycsb", 3).generate(1))
        assert 300 < len(dump_record(record)) < 1500
