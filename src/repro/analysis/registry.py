"""Checker registry: the pluggable surface of ciaolint.

A checker is a class with a ``name``, a one-line ``description``, the
``rules`` it may emit, and a ``check(project)`` method returning
findings.  Registering is one decorator::

    @register
    class MyChecker(Checker):
        name = "my-check"
        description = "what it enforces"
        rules = {"MYC001": "what MYC001 means"}

        def check(self, project):
            ...

Selection (``--select``) matches checker names; ``all`` (the default)
runs everything registered.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Type

from .findings import Finding
from .model import Project


class Checker:
    """Base class for ciaolint checkers (see module docstring)."""

    #: Group name matched by ``--select`` and reported per finding.
    name: str = ""
    #: One-line summary shown by ``--list-checkers``.
    description: str = ""
    #: rule id -> one-line meaning.
    rules: Dict[str, str] = {}

    def check(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.name:
        raise ValueError(f"checker {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate checker name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def all_checkers() -> List[Type[Checker]]:
    """Every registered checker class, in registration-name order."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def resolve_select(select: Iterable[str]) -> List[Type[Checker]]:
    """Map ``--select`` tokens to checker classes.

    Tokens are checker names; ``all`` selects everything.  Unknown
    tokens raise ``ValueError`` listing what exists, so a typo cannot
    silently skip a gate.
    """
    tokens = [t.strip() for t in select if t.strip()]
    if not tokens or "all" in tokens:
        return all_checkers()
    chosen: List[Type[Checker]] = []
    for token in tokens:
        if token not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise ValueError(
                f"unknown checker {token!r}; known checkers: {known}"
            )
        cls = _REGISTRY[token]
        if cls not in chosen:
            chosen.append(cls)
    return chosen
