"""Fixture: the lck_bad counter, written correctly."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self._count += 1
