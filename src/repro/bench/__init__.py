"""Benchmark harness: the end-to-end runner, per-figure experiments, and
paper-style reporting."""

from .experiments import (
    BUDGET_GRIDS,
    CalibrationRow,
    FIG6_BUDGETS,
    MicroResult,
    cost_model_experiment,
    end_to_end_sweep,
    headline_speedups,
    overlap_experiment,
    selectivity_experiment,
    skewness_experiment,
    skipping_benefit_sweep,
)
from .reporting import (
    RESULTS_DIR,
    emit,
    emit_json,
    emit_table,
    fleet_table,
    load_report_block,
    format_table,
    metrics_table,
    speedup_summary,
    sweep_payload,
)
from .runner import EndToEndRunner, ExperimentConfig, RunMetrics

__all__ = [
    "BUDGET_GRIDS",
    "CalibrationRow",
    "EndToEndRunner",
    "ExperimentConfig",
    "FIG6_BUDGETS",
    "MicroResult",
    "RESULTS_DIR",
    "RunMetrics",
    "cost_model_experiment",
    "emit",
    "emit_json",
    "emit_table",
    "end_to_end_sweep",
    "fleet_table",
    "format_table",
    "headline_speedups",
    "load_report_block",
    "metrics_table",
    "overlap_experiment",
    "selectivity_experiment",
    "skewness_experiment",
    "skipping_benefit_sweep",
    "speedup_summary",
    "sweep_payload",
]
