"""Catalog: tables as (Parquet-lite files + sideline store + pushdown map).

A CIAO table is not just files: it also remembers *which predicates were
pushed down* (clause → predicate id), because that mapping is what lets the
planner turn a query's WHERE clauses into bit-vector lookups — the
predicate hashmap of Fig. 2, server side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..analysis.sanitizer import make_lock
from ..core.predicates import Clause
from ..storage.columnar import ParquetLiteReader
from ..storage.jsonstore import JsonSideStore


class CatalogError(KeyError):
    """Unknown table or inconsistent registration."""


@dataclass
class TableEntry:
    """One queryable table.

    A table is normally *sealed*: its file list and sideline are fixed
    until the next load session.  During a streaming load the owning
    server instead drives the entry in **snapshot-scan mode**
    (:meth:`apply_snapshot`): the scanned files become the sealed-so-far
    Parquet parts of an in-flight ingest and the sideline is replaced by
    a bounded loaded-so-far view, so the engine answers queries against a
    consistent prefix of the stream while loading continues.
    """

    name: str
    parquet_paths: List[Path] = field(default_factory=list)
    side_store: Optional[JsonSideStore] = None
    #: Pushed-down clause → predicate id (empty when nothing was pushed).
    pushdown: Dict[Clause, int] = field(default_factory=dict)
    # guarded-by: _readers_lock
    _readers: Optional[List[ParquetLiteReader]] = field(
        default=None, repr=False, compare=False
    )
    #: Serializes reader-cache population and teardown: concurrent first
    #: queries must not each open (and then leak) a reader set.
    _readers_lock: object = field(
        default_factory=lambda: make_lock("TableEntry._readers_lock"),
        repr=False, compare=False,
    )
    #: Snapshot-scan mode state: the sideline view queries should scan
    #: instead of ``side_store``, and the snapshot version it came from.
    _snapshot_side: Optional[object] = field(
        default=None, repr=False, compare=False
    )
    _snapshot_version: Optional[object] = field(
        default=None, repr=False, compare=False
    )
    #: Incremental snapshot-scan cache: per-part partial aggregates keyed
    #: by (part identity, query fingerprint).  Lives exactly as long as
    #: snapshot-scan mode does — sealed parts are immutable, so partials
    #: stay valid across snapshot versions and successive mid-load
    #: aggregate queries only scan newly sealed parts.
    _snapshot_cache: Optional[object] = field(
        default=None, repr=False, compare=False
    )

    def open_readers(self) -> List[ParquetLiteReader]:
        """Open (and cache) readers for this table's Parquet-lite files.

        Files are write-once — the loader seals each file before queries
        run — so cached readers stay valid until :meth:`invalidate` is
        called after new files are registered.  Paths that do not exist yet
        are skipped: a freshly registered table is legitimately empty.
        """
        with self._readers_lock:
            if self._readers is None:
                self._readers = [
                    ParquetLiteReader(path)
                    for path in self.parquet_paths
                    if Path(path).exists()
                ]
            return self._readers

    def invalidate(self) -> None:
        """Close cached readers; call after loading new files."""
        with self._readers_lock:
            if self._readers is not None:
                for reader in self._readers:
                    reader.close()  # ciaolint: allow[LCK002] -- ParquetLiteReader.close is lock-free; `.close()` name union binds wider
                self._readers = None

    def pushed_id(self, clause: Clause) -> Optional[int]:
        """Predicate id for *clause* if it was pushed down."""
        return self.pushdown.get(clause)

    def swap_parts(self, replaced: List[Path],
                   replacement: Path) -> bool:
        """Atomically swap *replaced* parts for their compacted merge.

        The replacement takes the file-order position of the first
        replaced part; the rest drop out.  Cached readers are
        invalidated and snapshot-cache partials for the replaced parts
        are pruned (:meth:`SnapshotAggCache.retain_parts`), so the next
        aggregate recomputes the replacement part cold — answers stay
        byte-identical because the compacted part holds exactly the
        union of its inputs' rows.  Returns True iff the part list
        changed (False when none of *replaced* is registered — e.g. a
        racing swap already handled them).

        Callers in snapshot-scan mode must re-apply snapshots with a
        fresh version token afterwards (the owning server composes a
        compaction epoch into the token); to keep a stale re-apply of
        the *old* version from silently no-opping over the swap, the
        stored snapshot version is perturbed here.
        """
        replaced_keys = {str(Path(p)) for p in replaced}
        new_paths: List[Path] = []
        inserted = False
        changed = False
        for path in self.parquet_paths:
            if str(path) in replaced_keys:
                changed = True
                if not inserted:
                    inserted = True
                    new_paths.append(Path(replacement))
            else:
                new_paths.append(path)
        if not changed:
            return False
        self.invalidate()
        self.parquet_paths = new_paths
        if self._snapshot_version is not None:
            self._snapshot_version = ("post-swap", self._snapshot_version)
        if self._snapshot_cache is not None:
            self._snapshot_cache.retain_parts(
                str(p) for p in new_paths
            )
        return True

    # ------------------------------------------------------------------
    # Snapshot-scan mode
    # ------------------------------------------------------------------
    def apply_snapshot(self, version: object, parquet_paths: List[Path],
                       side_view: Optional[object]) -> None:
        """Point queries at a loaded-so-far snapshot of an in-flight load.

        *version* is the snapshot's change token — any equatable value;
        the pipeline's monotonic counter historically, and a (pipeline
        version, compaction epoch) pair when a compactor also mutates
        the part set.  Reapplying an unchanged version is a no-op, so
        cached readers survive across queries between ingest progress.
        Sealed snapshot parts are immutable, which is what makes
        caching them safe.
        """
        if self._snapshot_version == version:
            return
        self.invalidate()
        self.parquet_paths = [Path(p) for p in parquet_paths]
        self._snapshot_side = side_view
        self._snapshot_version = version
        if self._snapshot_cache is not None:
            # Parts normally only accumulate; pruning is a cheap guard
            # against providers that replace their part set.
            self._snapshot_cache.retain_parts(
                str(p) for p in self.parquet_paths
            )

    def clear_snapshot(self) -> None:
        """Leave snapshot-scan mode (the load finalized or was reset)."""
        if self._snapshot_version is not None:
            self.invalidate()
            self._snapshot_side = None
            self._snapshot_version = None
            self._snapshot_cache = None

    @property
    def snapshot_cache(self):
        """The incremental aggregate cache for this snapshot session.

        Created on first use; dropped with :meth:`clear_snapshot` (the
        finalized table is a different scan surface).
        """
        if self._snapshot_cache is None:
            from .snapcache import SnapshotAggCache  # deferred: no cycle
            self._snapshot_cache = SnapshotAggCache()
        return self._snapshot_cache

    def clear_snapshot_cache(self) -> None:
        """Forget cached partial aggregates (next query scans cold)."""
        if self._snapshot_cache is not None:
            self._snapshot_cache.clear()

    @property
    def in_snapshot_mode(self) -> bool:
        """True while queries scan a mid-load snapshot view."""
        return self._snapshot_version is not None

    @property
    def scan_side_store(self):
        """The sideline queries should scan: snapshot view or the store."""
        if self._snapshot_version is not None:
            return self._snapshot_side
        return self.side_store

    @property
    def has_sideline(self) -> bool:
        """True if a (non-empty) raw sideline exists for this table."""
        store = self.scan_side_store
        return store is not None and store.record_count > 0


class Catalog:
    """Name → table registry."""

    def __init__(self) -> None:
        self._tables: Dict[str, TableEntry] = {}

    def register(self, entry: TableEntry) -> None:
        """Add or replace a table."""
        self._tables[entry.name] = entry

    def lookup(self, name: str) -> TableEntry:
        """Fetch a table or raise :class:`CatalogError`."""
        try:
            return self._tables[name]
        except KeyError:
            known = ", ".join(sorted(self._tables)) or "(none)"
            raise CatalogError(
                f"unknown table {name!r}; registered: {known}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def names(self) -> List[str]:
        """Registered table names, sorted."""
        return sorted(self._tables)
