"""Bounded Zipfian sampling.

The paper generates skewed predicate choices with numpy's Zipf generator and
notes (Table III) that a *smaller* exponent means *less* skew in their setup.
We implement the standard bounded Zipf distribution over ``n`` ranks,

    P(rank = i) ∝ 1 / i^s,   i = 1..n

which degrades gracefully to uniform at ``s = 0``.  Sampling uses a
precomputed cumulative table and binary search, so draws are O(log n) and
fully deterministic given the caller's RNG.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


def zipf_weights(n: int, s: float) -> List[float]:
    """Normalized Zipf probabilities for ranks ``1..n`` with exponent *s*."""
    if n <= 0:
        raise ValueError(f"need at least one rank, got {n}")
    if s < 0:
        raise ValueError(f"Zipf exponent must be non-negative, got {s}")
    raw = [1.0 / (i ** s) for i in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


class ZipfSampler:
    """Draw ranks ``0..n-1`` (0-based) with Zipfian probability.

    >>> sampler = ZipfSampler(4, s=1.0, rng=random.Random(1))
    >>> 0 <= sampler.draw() < 4
    True
    """

    def __init__(self, n: int, s: float, rng: random.Random):
        self._n = n
        self._rng = rng
        weights = zipf_weights(n, s)
        self._cumulative: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w
            self._cumulative.append(acc)
        self._cumulative[-1] = 1.0  # guard against float drift

    @property
    def n(self) -> int:
        """Number of ranks."""
        return self._n

    def draw(self) -> int:
        """One 0-based rank."""
        return bisect.bisect_left(self._cumulative, self._rng.random())

    def draw_many(self, count: int) -> List[int]:
        """*count* independent ranks."""
        return [self.draw() for _ in range(count)]

    def probability(self, rank: int) -> float:
        """P(rank) for a 0-based *rank*."""
        if not 0 <= rank < self._n:
            raise IndexError(f"rank {rank} out of range 0..{self._n - 1}")
        low = self._cumulative[rank - 1] if rank else 0.0
        return self._cumulative[rank] - low


def zipf_choice(items: Sequence[T], s: float, rng: random.Random) -> T:
    """Pick one item, rank-1 most likely (one-shot convenience)."""
    return items[ZipfSampler(len(items), s, rng).draw()]


class WeightedSampler:
    """Draw items with explicit weights; shares the bisect machinery.

    Data generators use this for attribute-value distributions whose
    frequencies are chosen to realize the selectivities the micro-benchmarks
    need (e.g. a log component appearing in 35% / 15% / 1% of records).
    """

    def __init__(self, items: Sequence[T], weights: Sequence[float],
                 rng: random.Random):
        if len(items) != len(weights):
            raise ValueError("items and weights must have equal length")
        if not items:
            raise ValueError("need at least one item")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must not all be zero")
        self._items = list(items)
        self._rng = rng
        self._cumulative: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cumulative.append(acc)
        self._cumulative[-1] = 1.0

    def draw(self) -> T:
        """One weighted draw."""
        index = bisect.bisect_left(self._cumulative, self._rng.random())
        return self._items[index]
