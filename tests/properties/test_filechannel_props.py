"""Property tests for FileChannel spool resume and gap tolerance.

The contract under test: whatever subset of a spool survives (a crashed
consumer may have deleted arbitrary files, including out of order), a
resumed :class:`FileChannel` delivers exactly the surviving messages, in
number order, and ``pending()`` always equals the number of spool files
actually on disk — never the counter arithmetic that overcounts gaps.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulate import FileChannel


@st.composite
def spool_scenario(draw):
    """(number of sent messages, set of indices deleted behind our back)."""
    n_sent = draw(st.integers(min_value=0, max_value=12))
    deleted = draw(
        st.sets(st.integers(min_value=0, max_value=max(n_sent - 1, 0)),
                max_size=n_sent)
    )
    return n_sent, {d for d in deleted if d < n_sent}


@settings(max_examples=60, deadline=None)
@given(scenario=spool_scenario())
def test_resumed_spool_delivers_survivors_in_order(tmp_path_factory,
                                                   scenario):
    n_sent, deleted = scenario
    directory = tmp_path_factory.mktemp("spool")
    writer = FileChannel(directory)
    for i in range(n_sent):
        writer.send(f"msg-{i}".encode())
    for index in deleted:
        (directory / f"{index:09d}.msg").unlink()

    survivors = [i for i in range(n_sent) if i not in deleted]
    resumed = FileChannel(directory)
    assert resumed.pending() == len(survivors)
    received = [payload.decode() for payload in resumed.drain()]
    assert received == [f"msg-{i}" for i in survivors]
    assert resumed.pending() == 0
    assert resumed.receive() is None


@settings(max_examples=40, deadline=None)
@given(scenario=spool_scenario())
def test_gap_in_live_channel_does_not_stall(tmp_path_factory, scenario):
    """Deleting files under a live channel must skip, not stall."""
    n_sent, deleted = scenario
    directory = tmp_path_factory.mktemp("spool")
    channel = FileChannel(directory)
    for i in range(n_sent):
        channel.send(f"m{i}".encode())
    for index in deleted:
        (directory / f"{index:09d}.msg").unlink()
    survivors = [i for i in range(n_sent) if i not in deleted]
    assert [p.decode() for p in channel.drain()] == [
        f"m{i}" for i in survivors
    ]


@settings(max_examples=40, deadline=None)
@given(n_first=st.integers(0, 6), n_second=st.integers(0, 6))
def test_send_after_resume_continues_numbering(tmp_path_factory, n_first,
                                               n_second):
    directory = tmp_path_factory.mktemp("spool")
    first = FileChannel(directory)
    for i in range(n_first):
        first.send(f"a{i}".encode())
    second = FileChannel(directory)
    for i in range(n_second):
        second.send(f"b{i}".encode())
    expected = [f"a{i}" for i in range(n_first)] + [
        f"b{i}" for i in range(n_second)
    ]
    assert [p.decode() for p in second.drain()] == expected
