"""JSON serializer used by the synthetic data generators.

Producing our own writer keeps the substrate self-contained and lets the
generators control details the experiments rely on: stable key order (so a
record's raw length is deterministic for the cost model) and ASCII-safe
escaping (so client-side byte-oriented matching sees exactly what the writer
produced).
"""

from __future__ import annotations

from typing import Any, Dict, List

_ESCAPE_MAP = {
    '"': '\\"',
    "\\": "\\\\",
    "\b": "\\b",
    "\f": "\\f",
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}


def escape_string(value: str) -> str:
    """Escape *value* for embedding inside JSON double quotes.

    Lone surrogate code points (invalid in UTF-8 text) are emitted as
    ``\\uXXXX`` escapes so the output always UTF-8-encodes; note the
    parser decodes such escapes to U+FFFD, as they do not denote a
    character.
    """
    pieces: List[str] = []
    for ch in value:
        mapped = _ESCAPE_MAP.get(ch)
        code = ord(ch)
        if mapped is not None:
            pieces.append(mapped)
        elif code < 0x20 or 0xD800 <= code <= 0xDFFF:
            pieces.append(f"\\u{code:04x}")
        else:
            pieces.append(ch)
    return "".join(pieces)


def dumps(value: Any, sort_keys: bool = False) -> str:
    """Serialize *value* as compact JSON (no insignificant whitespace).

    Compact output matters: the paper's cost model is linear in record
    length, so the writer must not inject padding that would skew ``len(t)``.
    """
    pieces: List[str] = []
    _write(value, pieces, sort_keys)
    return "".join(pieces)


def dump_record(record: Dict[str, Any]) -> str:
    """Serialize one data record (a flat-ish JSON object) to a single line."""
    if not isinstance(record, dict):
        raise TypeError(f"records must be dicts, got {type(record).__name__}")
    return dumps(record)


def _write(value: Any, out: List[str], sort_keys: bool) -> None:
    if value is None:
        out.append("null")
    elif value is True:
        out.append("true")
    elif value is False:
        out.append("false")
    elif isinstance(value, str):
        out.append('"')
        out.append(escape_string(value))
        out.append('"')
    elif isinstance(value, int):
        out.append(str(value))
    elif isinstance(value, float):
        _write_float(value, out)
    elif isinstance(value, dict):
        _write_object(value, out, sort_keys)
    elif isinstance(value, (list, tuple)):
        _write_array(value, out, sort_keys)
    else:
        raise TypeError(f"cannot serialize {type(value).__name__} to JSON")


def _write_float(value: float, out: List[str]) -> None:
    if value != value or value in (float("inf"), float("-inf")):
        raise ValueError("NaN and infinities are not valid JSON")
    if value == int(value) and abs(value) < 1e16:
        # Keep x.0 so the value round-trips as a float.
        out.append(f"{int(value)}.0")
    else:
        out.append(repr(value))


def _write_object(value: Dict[str, Any], out: List[str],
                  sort_keys: bool) -> None:
    out.append("{")
    keys = sorted(value) if sort_keys else list(value)
    for i, key in enumerate(keys):
        if not isinstance(key, str):
            raise TypeError("JSON object keys must be strings")
        if i:
            out.append(",")
        out.append('"')
        out.append(escape_string(key))
        out.append('":')
        _write(value[key], out, sort_keys)
    out.append("}")


def _write_array(value, out: List[str], sort_keys: bool) -> None:
    out.append("[")
    for i, item in enumerate(value):
        if i:
            out.append(",")
        _write(item, out, sort_keys)
    out.append("]")
