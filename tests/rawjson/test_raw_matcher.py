"""Unit tests for the no-parse raw matchers."""

import pytest

from repro.rawjson import (
    contains,
    dump_record,
    key_present,
    key_value_match,
)
from repro.rawjson.raw_matcher import match_count_estimate


class TestContains:
    def test_found_and_not_found(self):
        raw = dump_record({"text": "very delicious indeed"})
        assert contains(raw, "delicious")
        assert not contains(raw, "horrid")

    def test_exact_match_pattern_includes_quotes(self):
        raw = dump_record({"name": "Bob", "note": "Bobby"})
        assert contains(raw, '"Bob"')
        raw2 = dump_record({"name": "Bobby"})
        assert not contains(raw2, '"Bob"')


class TestKeyPresence:
    def test_present_key_found(self):
        raw = dump_record({"email": "a@b.c"})
        assert key_present(raw, '"email"')

    def test_absent_key_not_found(self):
        raw = dump_record({"mail": "a@b.c"})
        assert not key_present(raw, '"email"')

    def test_key_as_substring_of_other_key_not_matched(self):
        raw = dump_record({"age_group": "18-25"})
        assert not key_present(raw, '"age"')

    def test_false_positive_on_string_value_is_allowed(self):
        # The paper's contract: false positives allowed, never negatives.
        raw = dump_record({"field": 'has "email" inside'})
        # The quotes inside the value are escaped, so no match here —
        # but a bare value equal to the key does produce one:
        assert not key_present(raw, '"email"')
        raw2 = dump_record({"field": "email"})
        assert key_present(raw2, '"email"')


class TestKeyValueMatch:
    def test_basic_match(self):
        raw = dump_record({"age": 10, "zip": "999"})
        assert key_value_match(raw, '"age":', "10")
        assert not key_value_match(raw, '"age":', "11")

    def test_value_beyond_delimiter_not_matched(self):
        raw = dump_record({"age": 9, "next": 10})
        assert not key_value_match(raw, '"age":', "10")

    def test_last_pair_uses_closing_brace(self):
        raw = dump_record({"a": 1, "age": 10})
        assert key_value_match(raw, '"age":', "10")

    def test_multiple_key_occurrences_are_all_tried(self):
        # The key text appears first inside a string value; the real pair
        # comes later.  A single-window implementation would miss it.
        raw = dump_record({"note": 'about "age": nothing', "age": 10})
        assert key_value_match(raw, '"age":', "10")

    def test_false_positive_substring_number(self):
        # "10" inside "100" is a tolerated false positive (§IV-B).
        raw = dump_record({"age": 100})
        assert key_value_match(raw, '"age":', "10")

    def test_boolean_values(self):
        raw = dump_record({"isActive": True, "newsletter": False})
        assert key_value_match(raw, '"isActive":', "true")
        assert not key_value_match(raw, '"isActive":', "false")

    def test_missing_key(self):
        raw = dump_record({"other": 10})
        assert not key_value_match(raw, '"age":', "10")


class TestMatchCount:
    def test_counts_non_overlapping(self):
        assert match_count_estimate("abcabcab", "abc") == 2

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            match_count_estimate("abc", "")

    def test_zero_when_absent(self):
        assert match_count_estimate("abc", "zz") == 0
