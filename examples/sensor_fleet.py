"""A heterogeneous sensor fleet with per-client budget allocation.

The paper's introduction promises to "address the trade-off between client
cost and server savings by setting different budgets for different
clients".  This example runs three customer-data producers of very
different capabilities — a beefy gateway, a mid-range box, and a weak
battery-powered sensor with a hard slack cap — allocates an aggregate
budget across them with water-filling, plans per-client pushdowns, and
ships everything over file-backed channels (the paper's deployment) into
one server.

Run:  python examples/sensor_fleet.py
"""

import tempfile
from pathlib import Path

from repro import (
    Budget,
    CiaoOptimizer,
    CiaoServer,
    ClientProfile,
    CostModel,
    DEFAULT_COEFFICIENTS,
    SimulatedClient,
    allocate_budgets,
)
from repro.data import make_generator
from repro.simulate import FileChannel
from repro.workload import estimate_selectivities, table3_workload

RECORDS_PER_CLIENT = 4000
AGGREGATE_BUDGET = Budget(20.0)  # µs/record, calibrated-machine units

FLEET = [
    ClientProfile("gateway", speed_factor=2.0),
    ClientProfile("midbox", speed_factor=1.0),
    ClientProfile("sensor", speed_factor=0.4, slack_us_per_record=4.0),
]


def main() -> None:
    generator = make_generator("ycsb", seed=99)
    workload = table3_workload("ycsb", "A", seed=99, n_queries=25)
    sample = generator.sample(2000)
    selectivities = estimate_selectivities(
        workload.candidate_pool, sample
    )
    cost_model = CostModel(
        DEFAULT_COEFFICIENTS, generator.average_record_length()
    )
    optimizer = CiaoOptimizer(workload, selectivities, cost_model)

    budgets = allocate_budgets(FLEET, AGGREGATE_BUDGET)
    print(f"Aggregate budget {AGGREGATE_BUDGET} across {len(FLEET)} clients:")
    for profile in FLEET:
        print(
            f"  {profile.client_id:<8} speed={profile.speed_factor:<4} "
            f"slack={profile.slack_us_per_record:<6} "
            f"→ budget {budgets[profile.client_id]}"
        )

    with tempfile.TemporaryDirectory() as workdir:
        workdir = Path(workdir)
        # The server plans once at the largest per-client budget; weaker
        # clients execute budget-restricted *prefixes* of that plan so
        # predicate ids stay globally consistent.  Chunks from clients
        # that did not evaluate every pushed predicate load eagerly — a
        # record they did not test might match an untested predicate.
        global_plan = optimizer.plan(
            max(budgets.values(), key=lambda b: b.us)
        )
        server = CiaoServer(
            workdir / "server", plan=global_plan, workload=workload
        )
        total_modeled = 0.0
        for profile in FLEET:
            plan = global_plan.restrict(budgets[profile.client_id])
            client = SimulatedClient(
                profile.client_id,
                plan=plan,
                chunk_size=1000,
                speed_factor=profile.speed_factor,
            )
            channel = FileChannel(workdir / f"spool-{profile.client_id}")
            client.ship(
                generator.raw_lines(RECORDS_PER_CLIENT), channel
            )
            server.ingest_channel(channel)
            total_modeled += client.stats.modeled_us
            print(
                f"  {profile.client_id:<8} pushed {len(plan):>3} predicates, "
                f"spent {client.stats.modeled_us_per_record():6.2f} µs/rec "
                f"(device time), budget ok: {client.budget_respected()}"
            )
        summary = server.finalize_loading()
        print(
            f"\nServer loaded {summary.loaded}/{summary.received} records "
            f"(ratio {summary.loading_ratio:.2f})"
        )

        covered = sum(
            1 for q in workload
            if server.query(q.sql("t")).plan_info.used_skipping
        )
        print(f"{covered}/{len(workload)} queries answered with skipping")


if __name__ == "__main__":
    main()
